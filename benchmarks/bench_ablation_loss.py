"""Ablation: packet loss (fault injection).

The paper's cluster had a reliable Myrinet fabric; this ablation asks how
the application-bypass advantage holds up when the fabric drops packets and
GM's reliable-delivery protocol (go-back-N + retransmit timers) has to
paper over the holes.  Expectation: absolute utilization rises with loss on
both builds (retransmit delays extend waits), but the ab-vs-nab factor
survives — skew tolerance is orthogonal to loss recovery.
"""

from repro.bench.report import Table
from repro.config import NetParams
from repro.orchestrate.points import ConfigSpec, SweepPoint
from repro.orchestrate.runner import run_points

from conftest import JOBS, SEED, iters, run_once, save_bench_json, \
    save_table


def test_ablation_packet_loss(benchmark):
    size = 16
    loss_rates = (0.0, 0.01, 0.05, 0.10)
    points = [
        SweepPoint(experiment="ablation_loss", kind="cpu_util",
                   config=ConfigSpec(
                       "paper", size, SEED,
                       net=NetParams(drop_prob=drop,
                                     retransmit_timeout_us=100.0)),
                   build=build, elements=4, max_skew_us=1000.0,
                   iterations=iters(20, 2))
        for drop in loss_rates
        for build in ("nab", "ab")
    ]

    def run():
        return run_points(points, jobs=JOBS)

    results = run_once(benchmark, run)
    save_bench_json("ablation_loss", results)
    nab_utils = [r.metrics["avg_util_us"] for r in results[0::2]]
    ab_utils = [r.metrics["avg_util_us"] for r in results[1::2]]
    table = Table(f"Ablation: fabric packet loss ({size} nodes, 4 elements, "
                  "skew 1000us)", "drop_prob", list(loss_rates),
                  value_fmt="{:.2f}")
    table.add_series("nab util", nab_utils)
    table.add_series("ab util", ab_utils)
    table.add_series("factor", [n / a for n, a in zip(nab_utils, ab_utils)])
    save_table("ablation_loss", table.render())
    print()
    print(table.render())

    factors = [n / a for n, a in zip(nab_utils, ab_utils)]
    # the ab advantage survives even 10% loss
    assert all(f > 2.0 for f in factors)
    # loss costs both builds something
    assert nab_utils[-1] > nab_utils[0]
