"""Ablation: packet loss (fault injection).

The paper's cluster had a reliable Myrinet fabric; this ablation asks how
the application-bypass advantage holds up when the fabric drops packets and
GM's reliable-delivery protocol (go-back-N + retransmit timers) has to
paper over the holes.  Expectation: absolute utilization rises with loss on
both builds (retransmit delays extend waits), but the ab-vs-nab factor
survives — skew tolerance is orthogonal to loss recovery.
"""

from dataclasses import replace

from repro.bench.cpu_util import cpu_util_benchmark
from repro.bench.report import Table
from repro.config import NetParams, paper_cluster
from repro.mpich.rank import MpiBuild

from conftest import ITERATIONS, SEED, run_once, save_table


def test_ablation_packet_loss(benchmark):
    size = 16
    iters = max(20, ITERATIONS // 2)
    loss_rates = (0.0, 0.01, 0.05, 0.10)

    def run():
        rows = []
        for drop in loss_rates:
            cfg = replace(paper_cluster(size, seed=SEED),
                          net=NetParams(drop_prob=drop,
                                        retransmit_timeout_us=100.0))
            nab = cpu_util_benchmark(cfg, MpiBuild.DEFAULT, elements=4,
                                     max_skew_us=1000.0, iterations=iters)
            ab = cpu_util_benchmark(cfg, MpiBuild.AB, elements=4,
                                    max_skew_us=1000.0, iterations=iters)
            dropped = (nab.signals, ab.signals)
            rows.append((drop, nab.avg_util_us, ab.avg_util_us))
        return rows

    rows = run_once(benchmark, run)
    table = Table(f"Ablation: fabric packet loss ({size} nodes, 4 elements, "
                  "skew 1000us)", "drop_prob", [r[0] for r in rows],
                  value_fmt="{:.2f}")
    table.add_series("nab util", [r[1] for r in rows])
    table.add_series("ab util", [r[2] for r in rows])
    table.add_series("factor", [r[1] / r[2] for r in rows])
    save_table("ablation_loss", table.render())
    print()
    print(table.render())

    factors = [r[1] / r[2] for r in rows]
    # the ab advantage survives even 10% loss
    assert all(f > 2.0 for f in factors)
    # loss costs both builds something
    assert rows[-1][1] > rows[0][1]
