"""Ablation benchmarks for the paper's discussed-but-configurable design
choices (DESIGN.md §5): exit-delay policy, per-signal cost, queue strategy
and the eager-limit fallback."""

from repro.experiments import ablations

from conftest import JOBS, SEED, iters, run_once, save_bench_json, \
    save_table


def test_ablation_exit_delay(benchmark):
    points = []

    def run():
        return ablations.ablate_exit_delay(iterations=iters(60), seed=SEED,
                                           jobs=JOBS, collect=points)

    table = run_once(benchmark, run)
    save_table("ablation_exit_delay", table.render())
    save_bench_json("ablation_exit_delay", points)
    print()
    print(table.render())
    signals = table._find("signals@noskew").values
    # every lingering policy avoids signals relative to 'none' (index 0)
    assert all(s <= signals[0] for s in signals[1:])


def test_ablation_signal_cost(benchmark):
    points = []

    def run():
        return ablations.ablate_signal_cost(iterations=iters(60), seed=SEED,
                                            jobs=JOBS, collect=points)

    table = run_once(benchmark, run)
    save_table("ablation_signal_cost", table.render())
    save_bench_json("ablation_signal_cost", points)
    print()
    print(table.render())
    factors = table._find("factor").values
    utils = table._find("ab util").values
    # costlier signals -> higher ab utilization -> smaller factor
    assert utils == sorted(utils)
    assert factors == sorted(factors, reverse=True)
    # even at 20us per signal the ab build still wins under heavy skew
    assert factors[-1] > 2.0


def test_ablation_queue_strategy(benchmark):
    points = []

    def run():
        return ablations.ablate_queue_strategy(iterations=iters(60),
                                               seed=SEED, jobs=JOBS,
                                               collect=points)

    table = run_once(benchmark, run)
    save_table("ablation_queue_strategy", table.render())
    save_bench_json("ablation_queue_strategy", points)
    print()
    print(table.render())
    skewed = table._find("util@skew1000").values
    # the rejected reuse-MPICH-queues design costs more CPU (extra copies)
    assert skewed[1] > skewed[0]


def test_ablation_eager_limit(benchmark):
    points = []

    def run():
        return ablations.ablate_eager_limit(iterations=iters(20, 2),
                                            seed=SEED, jobs=JOBS,
                                            collect=points)

    table = run_once(benchmark, run)
    save_table("ablation_eager_limit", table.render())
    save_bench_json("ablation_eager_limit", points)
    print()
    print(table.render())
    factors = table._find("factor vs nab").values
    limited = table._find("ab util (limit 512B)").values
    free = table._find("ab util (limit 16K)").values
    # below the 512B limit the two builds behave alike...
    assert abs(limited[0] - free[0]) < 0.25 * free[0]
    # ...beyond it the limited build collapses to nab-like utilization
    assert limited[-1] > 2.0 * free[-1]
    assert factors[-1] < 1.5
    assert factors[0] > 2.5
