"""Application-based evaluation benchmark (the paper's Sec. VII future
work): run the three application kernels under both builds and report how
much collective blocking application bypass removes."""

from repro.bench.report import Table
from repro.config import paper_cluster
from repro.apps import compare_builds
from repro.mpich.rank import MpiBuild

from conftest import SEED, run_once, save_table


def test_application_kernels(benchmark):
    size = 16
    cases = [
        ("jacobi", dict(iterations=15, imbalance=1.0)),
        ("cg", dict(iterations=10)),
        ("particles", dict(iterations=15)),
        ("particles", dict(iterations=15, rebalance_every=5)),
    ]

    def run():
        rows = []
        for kernel, kwargs in cases:
            comp = compare_builds(kernel, paper_cluster(size, seed=SEED),
                                  **kwargs)
            rows.append((kernel + ("+bcast" if kwargs.get("rebalance_every")
                                   else ""), comp))
        return rows

    rows = run_once(benchmark, run)
    table = Table(f"Application kernels on {size} ranks: non-root us "
                  f"blocked in collectives", "case", list(range(len(rows))))
    table.add_series("nab", [c.nonroot_mean_collective_us(MpiBuild.DEFAULT)
                             for _, c in rows])
    table.add_series("ab", [c.nonroot_mean_collective_us(MpiBuild.AB)
                            for _, c in rows])
    table.add_series("improvement", [c.blocking_improvement
                                     for _, c in rows])
    labels = ", ".join(f"{i}={name}" for i, (name, _) in enumerate(rows))
    text = table.render() + f"\ncases: {labels}"
    save_table("apps", text)
    print()
    print(text)

    by_name = {name: comp for name, comp in rows}
    # reduction-punctuated kernels benefit substantially...
    assert by_name["jacobi"].blocking_improvement > 2.0
    assert by_name["particles"].blocking_improvement > 1.5
    # ...synchronizing collectives cap the gain (Sec. II's split-phase point)
    assert by_name["particles+bcast"].blocking_improvement < \
        by_name["particles"].blocking_improvement
    assert by_name["cg"].blocking_improvement < 2.0
