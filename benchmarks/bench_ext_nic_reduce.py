"""Extension benchmark: NIC-based reduction vs. host-side application
bypass vs. default MPICH — the paper's future-work direction (Sec. VII)
and ref. [11]'s question, "NIC-Based Reduction in Myrinet Clusters: Is It
Beneficial?".

Expected trade-off:

* host CPU under skew: nicred < ab << nab (internal hosts pay one hand-off);
* latency: nicred is competitive for small messages but pays the slow
  LANai ALU dearly as the element count grows — the crossover that made
  ref. [11] pose its title question.
"""

from repro.bench.report import Table
from repro.orchestrate.points import ConfigSpec, SweepPoint
from repro.orchestrate.runner import run_points

from conftest import JOBS, SEED, iters, run_once, save_bench_json, \
    save_table


def test_ext_nic_reduce(benchmark):
    size = 16
    element_sizes = (4, 32, 128, 512)
    spec = ConfigSpec("paper", size, SEED)
    points = [
        SweepPoint(experiment="ext_nic_reduce", kind=kind, config=spec,
                   build=build, elements=elements, max_skew_us=1000.0,
                   iterations=iters(20, 2))
        for elements in element_sizes
        for build, kind in (("nab", "cpu_util"), ("ab", "cpu_util"),
                            ("ab", "nicred_cpu_util"))
    ] + [
        SweepPoint(experiment="ext_nic_reduce", kind="nicred_latency",
                   config=spec, build="ab", elements=elements,
                   iterations=iters(20, 2))
        for elements in (4, 512)
    ]

    def run():
        return run_points(points, jobs=JOBS)

    results = run_once(benchmark, run)
    save_bench_json("ext_nic_reduce", results)
    cpu = results[:-2]
    rows = {e: (cpu[i * 3].metrics["avg_util_us"],
                cpu[i * 3 + 1].metrics["avg_util_us"],
                cpu[i * 3 + 2].metrics["avg_util_us"])
            for i, e in enumerate(element_sizes)}
    lat = {4: results[-2].metrics["avg_latency_us"],
           512: results[-1].metrics["avg_latency_us"]}
    table = Table(f"Extension: host CPU utilization under 1000us skew "
                  f"({size} nodes) — nab vs host-ab vs NIC-based",
                  "elements", sorted(rows))
    table.add_series("nab", [rows[e][0] for e in sorted(rows)])
    table.add_series("host-ab", [rows[e][1] for e in sorted(rows)])
    table.add_series("nic-based", [rows[e][2] for e in sorted(rows)])
    text = table.render() + (
        f"\n\nnicred latency: {lat[4]:.1f}us @4 elements, "
        f"{lat[512]:.1f}us @512 elements (slow LANai ALU)")
    save_table("ext_nic_reduce", text)
    print()
    print(text)

    for elements, (nab, ab, nic) in rows.items():
        assert nic < nab            # NIC-based always beats default on CPU
        if elements <= 128:
            assert nic < ab + 3.0   # and is at least competitive with ab
    # ref [11]'s caveat: latency pays for the slow NIC ALU at large sizes
    assert lat[512] > lat[4] + 30.0
