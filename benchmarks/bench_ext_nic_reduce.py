"""Extension benchmark: NIC-based reduction vs. host-side application
bypass vs. default MPICH — the paper's future-work direction (Sec. VII)
and ref. [11]'s question, "NIC-Based Reduction in Myrinet Clusters: Is It
Beneficial?".

Expected trade-off:

* host CPU under skew: nicred < ab << nab (internal hosts pay one hand-off);
* latency: nicred is competitive for small messages but pays the slow
  LANai ALU dearly as the element count grows — the crossover that made
  ref. [11] pose its title question.
"""

from repro.bench.cpu_util import cpu_util_benchmark
from repro.bench.nicred import nicred_cpu_util, nicred_latency
from repro.bench.report import Table
from repro.config import paper_cluster
from repro.mpich.rank import MpiBuild

from conftest import ITERATIONS, SEED, run_once, save_table


def test_ext_nic_reduce(benchmark):
    size = 16
    iters = max(20, ITERATIONS // 2)

    def run():
        rows = {}
        for elements in (4, 32, 128, 512):
            cfg = paper_cluster(size, seed=SEED)
            nab = cpu_util_benchmark(cfg, MpiBuild.DEFAULT,
                                     elements=elements, max_skew_us=1000.0,
                                     iterations=iters).avg_util_us
            ab = cpu_util_benchmark(cfg, MpiBuild.AB, elements=elements,
                                    max_skew_us=1000.0,
                                    iterations=iters).avg_util_us
            nic = nicred_cpu_util(cfg, elements=elements, max_skew_us=1000.0,
                                  iterations=iters)
            rows[elements] = (nab, ab, nic)
        lat = {}
        for elements in (4, 512):
            cfg = paper_cluster(size, seed=SEED)
            lat[elements] = nicred_latency(cfg, elements=elements,
                                           iterations=iters)
        return rows, lat

    rows, lat = run_once(benchmark, run)
    table = Table(f"Extension: host CPU utilization under 1000us skew "
                  f"({size} nodes) — nab vs host-ab vs NIC-based",
                  "elements", sorted(rows))
    table.add_series("nab", [rows[e][0] for e in sorted(rows)])
    table.add_series("host-ab", [rows[e][1] for e in sorted(rows)])
    table.add_series("nic-based", [rows[e][2] for e in sorted(rows)])
    text = table.render() + (
        f"\n\nnicred latency: {lat[4]:.1f}us @4 elements, "
        f"{lat[512]:.1f}us @512 elements (slow LANai ALU)")
    save_table("ext_nic_reduce", text)
    print()
    print(text)

    for elements, (nab, ab, nic) in rows.items():
        assert nic < nab            # NIC-based always beats default on CPU
        if elements <= 128:
            assert nic < ab + 3.0   # and is at least competitive with ab
    # ref [11]'s caveat: latency pays for the slow NIC ALU at large sizes
    assert lat[512] > lat[4] + 30.0
