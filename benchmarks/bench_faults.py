"""fault-injection benchmark: the repro.faults subsystem under the
orchestrator's determinism contract.

Runs the faults smoke grid (one scenario per injector plus a fault-free
baseline) twice — serially and through the process pool — and asserts
bit-identical metrics and counters, correct surviving-rank results for
every scenario, a violation-free invariant report (INV-FAULT included),
and a clean self-compare of the emitted BENCH_faults_smoke.json.
"""

import pytest

from repro.orchestrate.benchjson import load_bench_json
from repro.orchestrate.compare import compare_payloads
from repro.orchestrate.points import faults_smoke_points
from repro.orchestrate.runner import run_points

from conftest import JOBS, SEED, iters, run_once, save_bench_json

pytestmark = pytest.mark.smoke


def test_faults_parallel_merge_matches_serial(benchmark):
    jobs = max(2, JOBS)
    points = faults_smoke_points(seed=SEED, iterations=iters(6, 7))
    serial = run_points(points, jobs=1)

    def run():
        return run_points(points, jobs=jobs)

    parallel = run_once(benchmark, run)
    # bit-identical across --jobs, fault schedules and recovery included
    assert [r.point.key() for r in parallel] == \
        [r.point.key() for r in serial]
    assert [r.metrics for r in parallel] == [r.metrics for r in serial]
    assert [r.counters for r in parallel] == [r.counters for r in serial]
    # every scenario finished with the surviving-rank answer
    assert all(r.metrics["survivor_ok"] == 1.0 for r in parallel)
    # the whole grid ran under the invariant monitor (INV-FAULT included)
    assert all((r.invariant_report or {}).get("violation_count", 0) == 0
               for r in parallel)
    # the grid as a whole injected faults; the time-scheduled injectors
    # (pause, crash) fire deterministically even at smoke iteration
    # counts, unlike the probabilistic burst-loss trigger
    armed = [r for r in parallel if r.point.config.faults is not None]
    assert armed and sum(r.counters["faults_injected"] for r in armed) > 0
    for r in armed:
        f = r.point.config.faults
        if f.pause_rank >= 0:
            assert r.counters["ranks_paused"] == 1
        if f.crash_rank >= 0:
            assert r.counters["ranks_crashed"] == 1
            assert r.metrics["completed_ranks"] == r.point.config.size - 1
            if r.metrics["last_result"] != r.metrics["first_result"]:
                # at least one iteration ran entirely after the crash, so
                # the victim's child must have been healed out of the tree
                assert r.counters["subtrees_healed"] >= 1

    path = save_bench_json("faults_smoke", parallel, jobs=jobs)
    payload = load_bench_json(path)
    verdict = compare_payloads(payload, payload)
    assert verdict["ok"]
    assert verdict["shared_points"] == len(points)
