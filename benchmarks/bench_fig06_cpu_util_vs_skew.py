"""Fig. 6 — average CPU utilization (and factor of improvement) vs.
maximum process skew, 32 nodes, 4/32/128-element messages.

Paper headline: ab wins everywhere; factor up to 5.1 at 4 elements and
1000 us skew; factor greatest for small messages.
"""

from repro.experiments import fig6

from conftest import JOBS, SEED, iters, run_once, save_bench_json, save_table


def test_fig6_cpu_util_vs_skew(benchmark):
    def run():
        return fig6.run(iterations=iters(40), seed=SEED, jobs=JOBS,
                        skews=(0.0, 250.0, 500.0, 750.0, 1000.0))

    out = run_once(benchmark, run)
    table = out.tables[0]
    save_table("fig06", out.render())
    save_bench_json("fig06", out.points)
    print()
    print(out.render())

    for elements in (4, 32, 128):
        nab = table._find(f"nab-{elements}").values
        ab = table._find(f"ab-{elements}").values
        factors = table._find(f"factor-{elements}").values
        # ab wins at every skew point
        assert all(a <= n for a, n in zip(ab, nab))
        # factor grows from the no-skew point to the max-skew point
        assert factors[-1] > factors[0]
    f4 = table._find("factor-4").values
    f128 = table._find("factor-128").values
    # the paper's 5.1 peak at the smallest size; we accept 4..6.5
    assert 4.0 < f4[-1] < 6.5, f"peak factor {f4[-1]}"
    assert f4[-1] > f128[-1]
