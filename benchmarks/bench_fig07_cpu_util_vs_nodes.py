"""Fig. 7 — CPU utilization (and factor) vs. node count at maximal skew.

Paper headline: the factor of improvement increases with system size,
reaching 5.1 at 32 nodes / 4 elements.
"""

from repro.experiments import fig7

from conftest import JOBS, SEED, iters, run_once, save_bench_json, save_table


def test_fig7_cpu_util_vs_nodes(benchmark):
    def run():
        return fig7.run(iterations=iters(40), seed=SEED, jobs=JOBS)

    out = run_once(benchmark, run)
    table = out.tables[0]
    save_table("fig07", out.render())
    save_bench_json("fig07", out.points)
    print()
    print(out.render())

    sizes = table.x_values
    for elements in (4, 32, 128):
        factors = table._find(f"factor-{elements}").values
        # scalability claim: factor grows from 2 nodes to 32 nodes
        assert factors[-1] > factors[0]
        # and ab wins clearly at full scale
        assert factors[-1] > 2.5
    f4 = table._find("factor-4").values
    assert 4.0 < f4[-1] < 6.5
    # the paper's monotone-growth trend (allow small local wiggles)
    for lo, hi in zip(f4, f4[1:]):
        assert hi > lo - 0.4
