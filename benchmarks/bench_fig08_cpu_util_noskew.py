"""Fig. 8 — CPU utilization (and factor) vs. node count WITHOUT skew.

Paper headline: the worst case for application bypass.  It loses at small
node counts (factor < 1), crosses over as naturally occurring skew grows
with system size, and reaches ~1.5 at 32 nodes / 128 elements; larger
messages cross over at smaller node counts.
"""

from repro.experiments import fig8
from repro.experiments.fig8 import crossover_size

from conftest import JOBS, SEED, iters, run_once, save_bench_json, save_table


def test_fig8_cpu_util_no_skew(benchmark):
    def run():
        return fig8.run(iterations=iters(60), seed=SEED, jobs=JOBS)

    out = run_once(benchmark, run)
    table = out.tables[0]
    save_table("fig08", out.render())
    save_bench_json("fig08", out.points)
    print()
    print(out.render())

    sizes = table.x_values
    f4 = table._find("factor-4").values
    f128 = table._find("factor-128").values
    # overhead dominates at small scale (paper: ~0.7-0.9)
    assert f4[1] < 1.0, f"expected ab to lose at 4 nodes, factor={f4[1]}"
    # ab wins at full scale; best for the largest messages (paper: 1.5)
    assert f128[-1] > 1.15
    assert f128[-1] > f4[-1]
    assert 1.0 < f128[-1] < 2.0
    # crossover happens earlier for larger messages
    c4 = crossover_size(sizes, f4)
    c128 = crossover_size(sizes, f128)
    assert c128 is not None
    assert c4 is None or c128 <= c4
