"""Fig. 9 — reduction latency vs. node count (no skew, 1 double-word):
(a) the heterogeneous 32-node cluster, (b) the homogeneous 16-node one.

Paper headline: nearly identical latency at small node counts; beyond four
nodes the ab build pays signal overhead for naturally late messages.
"""

from repro.experiments import fig9

from conftest import JOBS, SEED, iters, run_once, save_bench_json, save_table


def test_fig9_latency_vs_nodes(benchmark):
    def run():
        return fig9.run(iterations=iters(60), seed=SEED, jobs=JOBS)

    out = run_once(benchmark, run)
    save_table("fig09", out.render())
    save_bench_json("fig09", out.points)
    print()
    print(out.render())

    hetero, homo = out.tables
    for table in (hetero, homo):
        nab = table._find("nab").values
        ab = table._find("ab").values
        # both curves grow with node count
        assert nab[-1] > nab[0]
        assert ab[-1] > ab[0]
        # nearly identical at 2 nodes...
        assert abs(ab[0] - nab[0]) < 6.0
        # ...ab visibly above nab at the largest size
        assert ab[-1] > nab[-1] + 3.0
    # latency magnitudes era-plausible (paper 9a tops out near 110-120us)
    assert 50.0 < hetero._find("nab").values[-1] < 150.0
