"""Fig. 10 — reduction latency vs. message size, 32 nodes, no skew.

Paper headline: latency grows with message size for both builds; the ab
latency penalty stays positive and roughly constant across sizes.

The sweep is additionally routed through fig10's segment-size axis: a
second grid extends the message sizes past the paper's range and checks
where segmented pipelining (repro.pipeline) starts paying off.
"""

import numpy as np
import pytest

from repro.experiments import fig10

from conftest import JOBS, SEED, iters, run_once, save_bench_json, save_table


def test_fig10_latency_vs_message_size(benchmark):
    def run():
        return fig10.run(iterations=iters(50), seed=SEED, jobs=JOBS,
                         element_sizes=(1, 16, 32, 64, 96, 128))

    out = run_once(benchmark, run)
    table = out.tables[0]
    save_table("fig10", out.render())
    save_bench_json("fig10", out.points)
    print()
    print(out.render())

    nab = np.asarray(table._find("nab").values)
    ab = np.asarray(table._find("ab").values)
    gaps = ab - nab
    # monotone-ish growth with message size for both builds
    assert nab[-1] > nab[0] * 1.5
    assert ab[-1] > ab[0] * 1.3
    # ab pays a positive penalty at every size...
    assert (gaps > 0.0).all()
    # ...that stays bounded (paper: "fairly constant"); we accept a band
    assert gaps.max() < 30.0
    assert gaps.min() > 2.0


@pytest.mark.smoke
def test_fig10_segment_size_axis(benchmark):
    """Large messages through the segment axis: small messages are
    untouched by an armed pipeline (single-chunk plans decline, so the
    latency is bit-identical), large ones get faster."""
    def run():
        return fig10.run(iterations=iters(20), seed=SEED, jobs=JOBS,
                         element_sizes=(64, 512, 1024),
                         segment_sizes=(0, 2048))

    out = run_once(benchmark, run)
    save_table("fig10_segments", out.render())
    save_bench_json("fig10_segments", out.points)
    whole, piped = out.tables
    for build in ("nab", "ab"):
        base = np.asarray(whole._find(build).values)
        seg = np.asarray(piped._find(build).values)
        # 64 elements = 512B: one 2048B chunk, segmentation declines
        assert seg[0] == base[0]
        # 1024 elements = 8KiB: four segments pipeline through the tree
        assert seg[-1] < base[-1]
