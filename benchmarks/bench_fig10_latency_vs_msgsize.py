"""Fig. 10 — reduction latency vs. message size, 32 nodes, no skew.

Paper headline: latency grows with message size for both builds; the ab
latency penalty stays positive and roughly constant across sizes.
"""

import numpy as np

from repro.experiments import fig10

from conftest import JOBS, SEED, iters, run_once, save_bench_json, save_table


def test_fig10_latency_vs_message_size(benchmark):
    def run():
        return fig10.run(iterations=iters(50), seed=SEED, jobs=JOBS,
                         element_sizes=(1, 16, 32, 64, 96, 128))

    out = run_once(benchmark, run)
    table = out.tables[0]
    save_table("fig10", out.render())
    save_bench_json("fig10", out.points)
    print()
    print(out.render())

    nab = np.asarray(table._find("nab").values)
    ab = np.asarray(table._find("ab").values)
    gaps = ab - nab
    # monotone-ish growth with message size for both builds
    assert nab[-1] > nab[0] * 1.5
    assert ab[-1] > ab[0] * 1.3
    # ab pays a positive penalty at every size...
    assert (gaps > 0.0).all()
    # ...that stays bounded (paper: "fairly constant"); we accept a band
    assert gaps.max() < 30.0
    assert gaps.min() > 2.0
