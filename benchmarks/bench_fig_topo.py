"""fig_topo benchmark: the topology/tree-shape registries under the
orchestrator's determinism contract.

Runs a reduced fig_topo grid (every topology, two contrasting tree
shapes) twice — serially and through the process pool — and asserts
bit-identical metrics, a violation-free invariant report (INV-FIFO
included: the multi-hop topologies must preserve per-pair FIFO), and a
clean self-compare of the emitted BENCH_fig_topo.json.
"""

import pytest

from repro.experiments.fig_topo import build_points
from repro.orchestrate.benchjson import load_bench_json
from repro.orchestrate.compare import compare_payloads
from repro.orchestrate.runner import run_points

from conftest import JOBS, SEED, iters, run_once, save_bench_json

pytestmark = pytest.mark.smoke


def test_fig_topo_parallel_merge_matches_serial(benchmark):
    jobs = max(2, JOBS)
    # size 16 spans two fat-tree edge switches (8 hosts each), so
    # cross-edge traffic really takes the 3-hop spine path
    points = build_points(size=16, elements=4,
                          shapes=(("binomial", 2), ("chain", 2)),
                          skews=(1000.0,),
                          iterations=iters(8, 5), seed=SEED)
    serial = run_points(points, jobs=1)

    def run():
        return run_points(points, jobs=jobs)

    parallel = run_once(benchmark, run)
    # bit-identical across --jobs, for every topology and tree shape
    assert [r.point.key() for r in parallel] == \
        [r.point.key() for r in serial]
    assert [r.metrics for r in parallel] == [r.metrics for r in serial]
    assert [r.counters for r in parallel] == [r.counters for r in serial]
    # the whole grid ran under the invariant monitor (INV-FIFO included)
    assert all((r.invariant_report or {}).get("violation_count", 0) == 0
               for r in parallel)
    # the multi-hop topologies actually took multi-hop routes
    by_topo = {r.point.config.net.topology: r.counters for r in parallel}
    assert by_topo["fattree"]["net_hops"] > by_topo["crossbar"]["net_hops"]
    assert by_topo["torus"]["net_hops"] > by_topo["crossbar"]["net_hops"]

    path = save_bench_json("fig_topo", parallel, jobs=jobs)
    payload = load_bench_json(path)
    verdict = compare_payloads(payload, payload)
    assert verdict["ok"]
    assert verdict["shared_points"] == len(points)
