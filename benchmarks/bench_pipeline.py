"""segmented-pipeline benchmark: repro.pipeline under the orchestrator's
determinism contract.

Runs the pipeline smoke grid (whole-message baseline vs fixed and greedy
schedules on a large message, plus the crash+heal-mid-pipeline scenario)
twice — serially and through the process pool — and asserts bit-identical
metrics and counters, the pipelined-beats-whole-message latency headline,
a violation-free invariant report (INV-SEGMENT included), and a clean
self-compare of the emitted BENCH_pipeline_smoke.json.
"""

import pytest

from repro.orchestrate.benchjson import load_bench_json
from repro.orchestrate.compare import compare_payloads
from repro.orchestrate.points import pipeline_smoke_points
from repro.orchestrate.runner import run_points

from conftest import JOBS, SEED, iters, run_once, save_bench_json

pytestmark = pytest.mark.smoke


def test_pipeline_parallel_merge_matches_serial(benchmark):
    jobs = max(2, JOBS)
    points = pipeline_smoke_points(seed=SEED, iterations=iters(6, 7))
    serial = run_points(points, jobs=1)

    def run():
        return run_points(points, jobs=jobs)

    parallel = run_once(benchmark, run)
    # bit-identical across --jobs, segment windows and healing included
    assert [r.point.key() for r in parallel] == \
        [r.point.key() for r in serial]
    assert [r.metrics for r in parallel] == [r.metrics for r in serial]
    assert [r.counters for r in parallel] == [r.counters for r in serial]
    # the whole grid ran under the invariant monitor (INV-SEGMENT included)
    assert all((r.invariant_report or {}).get("violation_count", 0) == 0
               for r in parallel)

    # The latency headline: on the large message, the pipelined AB build
    # beats whole-message AB (cut-through folding overlaps the tree).
    latency = [r for r in parallel if r.point.kind == "latency"]
    by_key = {(r.point.config.pipeline is not None,
               (r.point.config.pipeline.schedule
                if r.point.config.pipeline else "-"),
               r.point.build): r.metrics["avg_latency_us"]
              for r in latency}
    assert by_key[(True, "fixed", "ab")] < by_key[(False, "-", "ab")]
    assert by_key[(True, "fixed", "nab")] < by_key[(False, "-", "nab")]
    # Segmented points actually segmented; the baseline stayed untouched.
    for r in latency:
        segs = int(r.counters.get("segments_sent", 0))
        if r.point.config.pipeline is not None and r.point.build == "ab":
            assert segs > 0
        if r.point.config.pipeline is None:
            assert "segments_sent" not in r.counters

    # The crash scenario healed mid-pipeline and kept the honest sums:
    # full-cluster result for the in-flight iteration, survivor sum after.
    fault = [r for r in parallel if r.point.kind == "fault_reduce"]
    assert len(fault) == 1
    f = fault[0]
    size = f.point.config.size
    assert f.metrics["survivor_ok"] == 1.0
    assert f.metrics["first_result"] == size * (size + 1) / 2
    assert f.metrics["last_result"] == size * (size + 1) / 2 - 25.0
    assert f.counters["subtrees_healed"] >= 1
    assert f.counters["segments_sent"] > 0

    path = save_bench_json("pipeline_smoke", parallel, jobs=jobs)
    payload = load_bench_json(path)
    verdict = compare_payloads(payload, payload)
    assert verdict["ok"]
    assert verdict["shared_points"] == len(points)
