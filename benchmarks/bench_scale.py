"""Scalability-extrapolation benchmark: the paper's central prediction —
the factor of improvement keeps growing with system size — checked out to
256 nodes (8x the paper's testbed)."""

from repro.experiments import scale

from conftest import JOBS, SEED, iters, run_once, save_bench_json, save_table


def test_scale_extrapolation(benchmark):
    def run():
        return scale.run(iterations=iters(15, 2), seed=SEED, jobs=JOBS)

    out = run_once(benchmark, run)
    save_table("scale", out.render())
    save_bench_json("scale", out.points)
    print()
    print(out.render())

    table = out.tables[0]
    factors = table._find("factor").values
    sizes = table.x_values
    # monotone growth from 16 through 256 nodes
    for (s1, f1), (s2, f2) in zip(zip(sizes, factors),
                                  zip(sizes[1:], factors[1:])):
        assert f2 > f1, f"factor fell from {f1:.2f}@{s1} to {f2:.2f}@{s2}"
    # the paper's 5.1 at 32 nodes roughly doubles by 256
    assert factors[sizes.index(32)] > 4.0
    assert factors[-1] > 1.6 * factors[sizes.index(32)]
