"""Scalability-extrapolation benchmark: the paper's central prediction —
the factor of improvement keeps growing with system size — checked out to
256 nodes (8x the paper's testbed).  The smoke-marked sweep below drives
the same DES-throughput grid as CI's scale-smoke job (``orchestrate
smoke-scale``) at preset-scaled sizes."""

import pytest

from repro.experiments import scale
from repro.orchestrate.benchjson import load_bench_json
from repro.orchestrate.points import scale_smoke_points
from repro.orchestrate.runner import run_points

from conftest import (JOBS, SEED, SMOKE, iters, run_once, save_bench_json,
                      save_table)


def test_scale_extrapolation(benchmark):
    def run():
        return scale.run(iterations=iters(15, 2), seed=SEED, jobs=JOBS)

    out = run_once(benchmark, run)
    save_table("scale", out.render())
    save_bench_json("scale", out.points)
    print()
    print(out.render())

    table = out.tables[0]
    factors = table._find("factor").values
    sizes = table.x_values
    # monotone growth from 16 through 256 nodes
    for (s1, f1), (s2, f2) in zip(zip(sizes, factors),
                                  zip(sizes[1:], factors[1:])):
        assert f2 > f1, f"factor fell from {f1:.2f}@{s1} to {f2:.2f}@{s2}"
    # the paper's 5.1 at 32 nodes roughly doubles by 256
    assert factors[sizes.index(32)] > 4.0
    assert factors[-1] > 1.6 * factors[sizes.index(32)]


@pytest.mark.smoke
def test_scale_sweep_reports_events_per_sec(benchmark):
    """The CI scale grid end to end: fat-tree + torus points through the
    process pool, every emitted record carrying an events/sec figure.
    Smoke preset shrinks the sizes; the real 1024-4096 sweep belongs to
    the dedicated scale-smoke CI job and its timeout."""
    sizes = (64, 128) if SMOKE else (1024, 2048, 4096)
    points = scale_smoke_points(seed=SEED, sizes=sizes)

    def run():
        return run_points(points, jobs=max(2, JOBS))

    results = run_once(benchmark, run)
    assert len(results) == len(points)
    path = save_bench_json("scale", results, jobs=max(2, JOBS))
    payload = load_bench_json(path)
    assert payload["events_per_sec"] > 0
    for record in payload["points"]:
        assert record["counters"]["events"] > 0
        assert record["events_per_sec"] > 0
