"""CI smoke benchmark: the orchestrator exercised end to end in seconds.

Runs the tiny fig7-shaped smoke grid twice — serially and through the
process pool — and asserts the deterministic-merge contract (bit-identical
metrics), a violation-free invariant report, and a clean self-compare of
the emitted BENCH_smoke.json.  This is what CI's bench job runs with
``-m smoke``; the full-figure benchmarks stay out of the PR loop.
"""

import pytest

from repro.orchestrate.benchjson import load_bench_json
from repro.orchestrate.compare import compare_payloads
from repro.orchestrate.points import smoke_points
from repro.orchestrate.runner import run_points

from conftest import JOBS, SEED, iters, run_once, save_bench_json

pytestmark = pytest.mark.smoke


def test_smoke_parallel_merge_matches_serial(benchmark):
    jobs = max(2, JOBS)
    points = smoke_points(seed=SEED, iterations=iters(8, 5))
    serial = run_points(points, jobs=1)

    def run():
        return run_points(points, jobs=jobs)

    parallel = run_once(benchmark, run)
    # the tentpole contract: merge order and metrics are independent of
    # --jobs, bit for bit
    assert [r.point.key() for r in parallel] == \
        [r.point.key() for r in serial]
    assert [r.metrics for r in parallel] == [r.metrics for r in serial]
    # the smoke grid runs under the protocol-invariant monitor
    assert all((r.invariant_report or {}).get("violation_count", 0) == 0
               for r in parallel)

    path = save_bench_json("smoke", parallel, jobs=jobs)
    payload = load_bench_json(path)
    verdict = compare_payloads(payload, payload)
    assert verdict["ok"]
    assert verdict["shared_points"] == len(points)
