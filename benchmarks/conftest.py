"""Shared helpers for the figure benchmarks.

Each ``bench_fig*.py`` regenerates one figure of the paper's evaluation
section at a reduced-but-representative iteration count (virtual time is
noise-free, so far fewer iterations are needed than the paper's 10,000).
Rendered tables are written to ``benchmarks/results/`` and the headline
shape assertions are checked inside the benchmark itself.
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Iteration counts for the benchmark runs (override with env vars).
ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERS", "40"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))


def save_table(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
