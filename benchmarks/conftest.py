"""Shared helpers for the figure benchmarks.

Each ``bench_fig*.py`` regenerates one figure of the paper's evaluation
section at a reduced-but-representative iteration count (virtual time is
noise-free, so far fewer iterations are needed than the paper's 10,000).
Rendered tables are written to ``benchmarks/results/`` and the headline
shape assertions are checked inside the benchmark itself.

Every knob the benchmarks share lives here — iteration scaling, seed,
worker count, and the BENCH_*.json writer — so individual bench modules
never hand-roll their own ``max(...)`` arithmetic (that drifted between
``bench_scale.py`` and the figure benches once already).

Environment:

``REPRO_BENCH_ITERS``
    Base iteration count (default 40; 8 under the smoke preset).
``REPRO_BENCH_SEED``
    Simulation seed (default 1).
``REPRO_BENCH_JOBS``
    Worker processes for orchestrated sweeps (default 1).
``REPRO_BENCH_PRESET``
    ``smoke`` shrinks every iteration count to a seconds-long sanity
    pass.  Meant for the CI bench job's ``-m smoke`` selection — the
    full-figure shape assertions are tuned for representative counts and
    are not expected to hold at smoke scale.
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

PRESET = os.environ.get("REPRO_BENCH_PRESET", "")
SMOKE = PRESET == "smoke"

#: Iteration counts for the benchmark runs (override with env vars).
ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERS", "8" if SMOKE else "40"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))
#: Worker processes for sweeps routed through repro.orchestrate.
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def iters(minimum: int, divisor: int = 1) -> int:
    """Scaled iteration count: ``ITERATIONS // divisor`` floored at
    ``minimum`` — the one place benchmark iteration arithmetic lives.
    Under the smoke preset the floor is waived so everything stays tiny.
    """
    if SMOKE:
        return max(2, min(minimum, ITERATIONS // divisor or 1))
    return max(minimum, ITERATIONS // divisor)


def save_table(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def save_bench_json(name: str, results, *, jobs: int | None = None):
    """Write ``benchmarks/results/BENCH_<name>.json`` for the compare
    gate; returns the path.  No-op (returns None) when the sweep
    collected no orchestrated points."""
    if not results:
        return None
    from repro.orchestrate.benchjson import write_bench_json
    return write_bench_json(name, results, directory=RESULTS_DIR,
                            jobs=JOBS if jobs is None else jobs)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
