#!/usr/bin/env python
"""Communication/computation overlap with the split-phase extensions.

Demonstrates the paper's future-work direction (Sec. II: even the root
"would enable optimization ... a split-phase implementation"):

1. **Split-phase reduce** (``SplitPhaseReduce``) — the 2003-era precursor
   of MPI-3 ``MPI_Ireduce``: even the *root* starts the reduction, computes
   while NIC signals fold in children, and collects the result at ``wait``.
2. **Application-bypass broadcast** (``AbBroadcast``, the companion CCGrid
   2003 work): internal nodes forward broadcast data down the tree the
   moment it arrives, before the application even asks for it.

Run:  python examples/compute_overlap.py
"""

import numpy as np

from repro import MpiBuild, SUM, paper_cluster, run_program
from repro.core import AbBroadcast, SplitPhaseReduce

ELEMENTS = 32
COMPUTE_US = 500.0


def program(mpi):
    split = SplitPhaseReduce(mpi.ab_engine)
    bcaster = AbBroadcast(mpi.ab_engine)
    bcaster.register_comm(mpi.comm_world)

    # --- phase 1: split-phase reduce overlapped with root's own work ----
    data = np.full(ELEMENTS, float(mpi.rank + 1), dtype=np.float64)
    t0 = mpi.now
    handle = yield from split.start(data, SUM, 0, mpi.comm_world)
    start_us = mpi.now - t0
    yield from mpi.compute(COMPUTE_US)          # overlapped computation
    t1 = mpi.now
    result = yield from split.wait(handle)
    wait_us = mpi.now - t1

    # --- phase 2: skewed ab-broadcast of the answer ----------------------
    yield from mpi.compute(float(mpi.rank) * 20.0)   # stagger the ranks
    if mpi.rank == 0:
        answer = yield from bcaster.bcast(result, 0, mpi.comm_world)
    else:
        answer = yield from bcaster.bcast(None, 0, mpi.comm_world)

    yield from mpi.barrier()
    return start_us, wait_us, float(answer[0])


def main() -> None:
    size = 16
    expected = float(sum(range(1, size + 1)))
    out = run_program(paper_cluster(size, seed=9), program, build=MpiBuild.AB)
    for rank, (start_us, wait_us, value) in enumerate(out.results):
        assert value == expected, (rank, value, expected)
    starts = np.array([r[0] for r in out.results])
    waits = np.array([r[1] for r in out.results])
    root_wait = out.results[0][1]
    print(f"{size} ranks, {ELEMENTS}-element split-phase reduce overlapped "
          f"with {COMPUTE_US:.0f} us of computation")
    print(f"reduce start() cost: mean {starts.mean():.1f} us "
          f"(max {starts.max():.1f} us) — nobody blocks")
    print(f"reduce wait() cost at the root: {root_wait:.1f} us "
          f"(the {COMPUTE_US:.0f} us compute hid the whole tree)")
    print(f"reduce wait() cost elsewhere: max {waits[1:].max():.1f} us")
    print(f"broadcast answer verified on all ranks: {expected:.0f}")
    eng = out.contexts[4].ab_engine     # rank 4 is internal (children 5, 6)
    bc = eng.extensions["bcast"]
    print(f"rank 4 forwarded {bc.stats.forwards} bcast packet(s) to its "
          f"subtree the moment the data arrived")


if __name__ == "__main__":
    main()
