#!/usr/bin/env python
"""Writing a custom schedule rewrite pass (repro.schedule).

Collective schedules are *data* (DESIGN.md Sec. 15): a ``Schedule`` is a
frozen, JSON-round-trippable program of per-rank send/recv/fold/wait
steps, and a rewrite pass is just a function ``Schedule -> Schedule``
registered by name.  Once registered, every driver in the repo — the
scheduled benchmark, ``orchestrate smoke-schedule``, the autotuner — can
apply your pass by name, and the validator checks the result the same
way it checks the built-in lowerings.

This example registers a 3-line pass that re-lowers a reduction onto a
chain (pipeline) tree, shows the rewrite on the IR alone, proves the
result still validates and round-trips through JSON, then executes both
variants through the interpreter to compare latency end to end.

Run:  python examples/custom_pass.py
"""

from repro.bench.scheduled import build_schedule, scheduled_benchmark
from repro.config import PipelineParams, quiet_cluster
from repro.mpich.rank import MpiBuild
from repro.schedule import Schedule, get_pass, register_pass

ELEMENTS = 1024          # 8 KiB payload -> 4 segments at 2048 B
SIZE = 8


@register_pass("to_chain")
def to_chain(schedule: Schedule) -> Schedule:
    """Re-lower onto a chain tree: with segmented schedules this turns a
    tree reduction into a rank-to-rank pipeline (Lowery & Langou)."""
    return get_pass("reshape_tree")(schedule, shape="chain")


def main():
    config = quiet_cluster(SIZE, seed=11).with_pipeline(
        PipelineParams(segment_size_bytes=2048, max_inflight_segments=3))

    # ---- the rewrite, on the IR alone (no simulation needed) -----------
    before = build_schedule(config, lowering="reduce.ab", elements=ELEMENTS)
    after = get_pass("to_chain")(before)
    after.validate()
    print("custom pass 'to_chain' registered and applied:")
    print(f"  before: shape={before.meta_dict()['shape']:10} "
          f"steps={before.step_count}")
    print(f"  after:  shape={after.meta_dict()['shape']:10} "
          f"steps={after.step_count}")
    assert Schedule.from_json(after.to_json()) == after
    print("  rewritten schedule validates and round-trips losslessly")

    # ---- end to end: any driver can run the pass by name ---------------
    base = scheduled_benchmark(config, MpiBuild.AB, lowering="reduce.ab",
                               elements=ELEMENTS, iterations=10)
    chain = scheduled_benchmark(config, MpiBuild.AB, lowering="reduce.ab",
                                passes=("to_chain",), elements=ELEMENTS,
                                iterations=10)
    print(f"binomial reduce.ab : {base.avg_latency_us:8.2f} us "
          f"(nseg={base.nseg})")
    print(f"to_chain reduce.ab : {chain.avg_latency_us:8.2f} us "
          f"(nseg={chain.nseg})")
    ratio = base.avg_latency_us / chain.avg_latency_us
    word = "speedup" if ratio >= 1.0 else "slowdown"
    print(f"chain pipeline {word} on {SIZE} ranks: {ratio:.2f}x")


if __name__ == "__main__":
    main()
