#!/usr/bin/env python
"""Fault injection: application-bypass reduction on a lossy fabric.

Myrinet is nearly lossless, but GM still runs a reliable-delivery protocol
in the NIC control program.  This example drops 10% of all packets and
shows (a) every reduction still computes the right answer, (b) GM's
go-back-N retransmissions absorb the losses, and (c) the application-bypass
advantage under skew survives intact.

Run:  python examples/fault_injection.py
"""

from dataclasses import replace

import numpy as np

from repro import MpiBuild, NetParams, SUM, paper_cluster
from repro.bench import cpu_util_benchmark
from repro.runtime.program import run_program

DROP = 0.10
ROUNDS = 8


def program(mpi):
    results = []
    for i in range(ROUNDS):
        if mpi.rank == (i % mpi.size):      # rotate the straggler
            yield from mpi.compute(200.0)
        r = yield from mpi.reduce(np.full(4, float(mpi.rank + 1 + i)),
                                  op=SUM, root=0)
        if r is not None:
            results.append(float(r[0]))
        yield from mpi.barrier()
    return results


def main() -> None:
    config = replace(paper_cluster(16, seed=21),
                     net=NetParams(drop_prob=DROP,
                                   retransmit_timeout_us=100.0))
    out = run_program(config, program, build=MpiBuild.AB)
    expected = [sum(range(1 + i, 17 + i)) for i in range(ROUNDS)]
    assert out.results[0] == [float(v) for v in expected], out.results[0]

    dropped = out.cluster.fabric.packets_dropped
    retx = sum(n.nic.reliable.stats.retransmissions
               for n in out.cluster.nodes)
    acks = sum(n.nic.reliable.stats.acks_sent for n in out.cluster.nodes)
    print(f"{ROUNDS} reductions on a {DROP:.0%}-lossy fabric: "
          f"all results correct")
    print(f"fabric dropped {dropped} packets; GM retransmitted {retx}, "
          f"sent {acks} ACKs")

    print("\napplication-bypass factor under 1000us skew, with and "
          "without loss:")
    for drop in (0.0, DROP):
        cfg = replace(paper_cluster(16, seed=21),
                      net=NetParams(drop_prob=drop,
                                    retransmit_timeout_us=100.0))
        nab = cpu_util_benchmark(cfg, MpiBuild.DEFAULT, elements=4,
                                 max_skew_us=1000.0, iterations=25)
        ab = cpu_util_benchmark(cfg, MpiBuild.AB, elements=4,
                                max_skew_us=1000.0, iterations=25)
        print(f"  drop={drop:.0%}: nab={nab.avg_util_us:6.1f}us "
              f"ab={ab.avg_util_us:5.1f}us "
              f"factor={nab.avg_util_us / ab.avg_util_us:.2f}")


if __name__ == "__main__":
    main()
