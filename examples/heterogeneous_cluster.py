#!/usr/bin/env python
"""Tour of the simulated hardware: the paper's heterogeneous 32-node
Myrinet cluster (Sec. VI).

Prints the interlaced machine roster, the binomial reduction tree, measured
point-to-point latencies between machine classes, and how the reduction
latency scales across the two cluster flavours the paper evaluates.

Run:  python examples/heterogeneous_cluster.py
"""

import numpy as np

from repro import MpiBuild, homogeneous_cluster, paper_cluster
from repro.bench import latency_benchmark, measure_one_way
from repro.mpich.collectives import tree


def show_roster() -> None:
    config = paper_cluster(32)
    print("machine roster (paper: two 16-node groups, interlaced):")
    counts: dict[str, int] = {}
    for spec in config.machines:
        counts[spec.name] = counts.get(spec.name, 0) + 1
    for name, count in counts.items():
        print(f"  {count:2d} x {name}")
    print(f"  first 8 slots: "
          f"{[config.machines[i].name.split('/')[0] for i in range(8)]}")


def show_tree(size: int = 16) -> None:
    print(f"\nbinomial reduction tree, {size} ranks, root 0 "
          f"(paper Fig. 1 is the 8-rank version):")
    by_depth: dict[int, list[int]] = {}
    for rel in range(size):
        by_depth.setdefault(tree.depth(rel), []).append(rel)
    for depth in sorted(by_depth):
        nodes = by_depth[depth]
        label = {0: "root", 1: "children of root"}.get(
            depth, f"depth {depth}")
        print(f"  depth {depth} ({label}): {nodes}")
    last = tree.deepest_relative_rank(size)
    print(f"  'last node' (latency benchmark peer): rank {last}")


def show_pt2pt() -> None:
    print("\none-way small-message latency (GM eager path):")
    pairs = [(0, 2, "700MHz <-> 700MHz"),
             (1, 3, "1GHz  <-> 1GHz"),
             (0, 1, "700MHz <-> 1GHz")]
    for a, b, label in pairs:
        one_way = measure_one_way(paper_cluster(8, seed=3), a, b)
        print(f"  {label}: {one_way:.2f} us")


def show_scaling() -> None:
    print("\nreduction latency scaling (no skew, 1 double):")
    print(f"  {'nodes':>5}  {'heterogeneous':>14}  {'homogeneous':>12}")
    for n in (2, 4, 8, 16):
        het = latency_benchmark(paper_cluster(n, seed=5), MpiBuild.DEFAULT,
                                elements=1, iterations=60)
        hom = latency_benchmark(homogeneous_cluster(n, seed=5),
                                MpiBuild.DEFAULT, elements=1, iterations=60)
        print(f"  {n:>5}  {het.avg_latency_us:>11.1f} us"
              f"  {hom.avg_latency_us:>9.1f} us")
    print("  (the paper found the two nearly identical up to 16 nodes)")


def main() -> None:
    show_roster()
    show_tree()
    show_pt2pt()
    show_scaling()


if __name__ == "__main__":
    main()
