#!/usr/bin/env python
"""Multi-tenant service: four jobs sharing one oversubscribed fat-tree.

Declares a 16-host cluster (4 hosts per edge switch, 4:1 oversubscribed
uplinks) and submits four independent 4-rank collective jobs through the
``repro.tenancy`` scheduler.  With ``spread`` placement every job
straddles all four pods, so the jobs' reductions contend for the same
uplinks; each job is then re-run alone on an identical idle cluster to
price that contention (slowdown) and to check who pays it (min-max
fairness).  Swap ``placement`` to ``topology_aware`` and the scheduler
keeps each job inside one pod — the contention disappears.

Run:  python examples/multi_tenant.py
"""

from repro.tenancy import ClusterSpec, JobSpec, run_tenancy


def batch(placement: str) -> list:
    """Four staggered 4-rank jobs, alternating reduce/allreduce."""
    return [
        JobSpec(name=f"tenant{i}", nranks=4,
                collective=("reduce", "allreduce")[i % 2],
                elements=1024, build="ab", iterations=6, warmup=1,
                max_skew_us=100.0, arrival_us=25.0 * i,
                placement=placement)
        for i in range(4)
    ]


def main() -> None:
    cluster = ClusterSpec(hosts=16, factory="quiet", seed=7,
                          topology="fattree",
                          fattree_hosts_per_switch=4,
                          fattree_oversubscription=4.0)
    for placement in ("spread", "topology_aware"):
        result = run_tenancy(cluster, batch(placement))
        metrics = result.metrics()
        print(f"\n=== placement: {placement} ===")
        print(f"{'job':<10} {'slots':<18} {'makespan':>10} "
              f"{'slowdown':>9}")
        for job in result.jobs:
            print(f"{job.name:<10} {str(list(job.slots)):<18} "
                  f"{job.makespan_us:>8.1f}us {job.slowdown:>8.3f}x")
        print(f"min-max fairness: {metrics['fairness_minmax']:.3f}")
        assert all(j.checks > 0 for j in result.jobs)
    print("\nspread pays an uplink contention tax; topology_aware "
          "keeps each job inside one pod and the tax vanishes.")


if __name__ == "__main__":
    main()
