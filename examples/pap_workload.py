#!/usr/bin/env python
"""PAP workloads: replaying a bursty arrival trace through SRA vs ab.

Generates a bursty 32-rank arrival pattern (one correlated straggler
group arriving ~2 ms late), round-trips it through the JSON form of
:class:`repro.workload.ArrivalTrace` — the way a recorded trace would
ship between machines — and replays it bit-exactly with
``pattern="trace_replay"`` under two allreduce algorithms: the paper's
application-bypass (``ab``) and Proficz's sorted-arrival tree (``sra``),
which reads the trace's arrival oracle and places the stragglers next to
the root.  With one dominant straggler group almost the entire reduction
overlaps the stragglers' delay, so SRA finishes earlier than ab.

Run:  python examples/pap_workload.py
"""

from repro.bench.pap import pap_benchmark
from repro.config import WorkloadParams, quiet_cluster
from repro.sim.random import RngStreams
from repro.workload import ArrivalTrace, generate_trace

SIZE = 32
ITERATIONS = 4


def record_bursty_trace() -> ArrivalTrace:
    """The 'recorded' trace: one bursty pattern, fixed seed."""
    bursty = WorkloadParams(pattern="bursty", scale_us=2000.0,
                            jitter_us=40.0, straggler_frac=0.2)
    return generate_trace(bursty, SIZE, ITERATIONS + 1, RngStreams(2003))


def main() -> None:
    recorded = record_bursty_trace()
    wire = recorded.to_json()
    replayed = ArrivalTrace.from_json(wire)
    assert replayed == recorded and replayed.to_json() == wire
    print(f"recorded a bursty {recorded.nranks}-rank trace "
          f"({recorded.iterations} iterations, {len(wire)} JSON bytes); "
          f"round trip is lossless and byte-stable")
    print(f"iteration 0 arrival spread: {recorded.spread(0):.0f}us, "
          f"last to arrive: rank {recorded.order(0)[-1]}")

    config = quiet_cluster(SIZE, seed=31).with_workload(
        WorkloadParams(pattern="trace_replay", trace=replayed.delays))
    print(f"\nreplaying through allreduce on {SIZE} ranks:")
    makespans = {}
    for algo in ("ab", "sra"):
        r = pap_benchmark(config, algo=algo, elements=256,
                          iterations=ITERATIONS, warmup=1)
        makespans[algo] = r.avg_makespan_us
        print(f"  {algo:<4} avg makespan {r.avg_makespan_us:>8.1f}us  "
              f"(kappa={r.arrival_stats['arrival_kappa']:.2f})")
    gain = makespans["ab"] / makespans["sra"]
    print(f"\nsorted-arrival tree vs application-bypass: {gain:.2f}x — "
          f"with one dominant straggler group, placing late arrivals "
          f"next to the root hides the reduction under their delay.")


if __name__ == "__main__":
    main()
