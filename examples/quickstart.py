#!/usr/bin/env python
"""Quickstart: run one reduction on a simulated 8-node Myrinet cluster,
with the default MPICH implementation and with application bypass.

Rank 3 is 400 us late (process skew).  In the default build its tree
ancestors sit inside MPI_Reduce spinning the progress engine until rank 3
shows up; with application bypass the same call returns in a few
microseconds and the late contribution is folded in by a NIC signal while
the application computes.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import MpiBuild, SUM, paper_cluster, run_program


def program(mpi):
    """One rank's main: everyone contributes rank+1 over four doubles."""
    if mpi.rank == 3:
        yield from mpi.compute(400.0)  # 400 us of unrelated work first
    data = np.full(4, float(mpi.rank + 1), dtype=np.float64)
    t_enter = mpi.now
    result = yield from mpi.reduce(data, op=SUM, root=0)
    call_us = mpi.now - t_enter
    # A real application would do useful work here; with application
    # bypass, the late child's contribution arrives *during* this compute.
    yield from mpi.compute(600.0)
    value = None if result is None else float(result[0])
    return call_us, value


def main() -> None:
    expected = float(sum(range(1, 9)))
    for build in (MpiBuild.DEFAULT, MpiBuild.AB):
        out = run_program(paper_cluster(8, seed=42), program, build=build)
        call_times = [r[0] for r in out.results]
        assert out.results[0][1] == expected, out.results
        print(f"\n=== build: {build.value} ===")
        print(f"root result: {out.results[0][1]:.0f} (expected "
              f"{expected:.0f}); NIC signals: {out.cluster.total_signals()}")
        print(f"{'rank':>4}  {'role':<22} {'MPI_Reduce call':>16}")
        roles = {0: "root (cannot bypass)", 2: "internal, parent of 3",
                 3: "the late rank", 4: "internal", 6: "internal"}
        for rank, call_us in enumerate(call_times):
            role = roles.get(rank, "leaf")
            print(f"{rank:>4}  {role:<22} {call_us:>13.1f} us")
        stuck = [r for r, c in enumerate(call_times) if c > 100.0 and r != 3]
        print(f"ranks stuck >100us inside MPI_Reduce: {stuck or 'none'}")


if __name__ == "__main__":
    main()
