#!/usr/bin/env python
"""Skew tolerance in an iterative solver — the paper's motivating workload.

A Jacobi-style iteration over an unevenly partitioned domain: each rank
smooths its block (compute time proportional to block size, so ranks are
structurally skewed), then the solver needs a global residual norm —
an ``MPI_Reduce`` of one double to rank 0 every iteration.

In the default build, every reduction re-synchronizes the whole machine:
fast ranks burn their advantage spinning inside MPI_Reduce.  With
application bypass the reduction rides along with the computation and only
the root pays the synchronization.

Run:  python examples/skew_tolerance.py
"""

import numpy as np

from repro import MpiBuild, SUM, paper_cluster, run_program

ITERATIONS = 30
BASE_COMPUTE_US = 80.0


def make_program(block_weights):
    def program(mpi):
        rng = np.random.default_rng(1000 + mpi.rank)
        block = rng.random(256) * (mpi.rank + 1)
        my_compute = BASE_COMPUTE_US * block_weights[mpi.rank]
        reduce_cpu = 0.0
        for _ in range(ITERATIONS):
            # local smoothing step (cost ~ block size -> structural skew)
            block = 0.5 * (block + np.roll(block, 1))
            yield from mpi.compute(my_compute)
            local_residual = np.array([np.abs(block).sum()])
            t0 = mpi.now
            result = yield from mpi.reduce(local_residual, op=SUM, root=0)
            reduce_cpu += mpi.now - t0
            if mpi.rank == 0:
                assert result is not None and result[0] > 0.0
        # drain any bypassed work before finishing
        yield from mpi.compute(300.0)
        yield from mpi.barrier()
        return reduce_cpu

    return program


def main() -> None:
    size = 16
    # block sizes vary 1x..2x across ranks: structural (not random) skew
    weights = [1.0 + (rank % 4) / 3.0 for rank in range(size)]
    print(f"{size}-rank Jacobi solver, {ITERATIONS} iterations, "
          f"per-iteration compute {min(weights) * BASE_COMPUTE_US:.0f}-"
          f"{max(weights) * BASE_COMPUTE_US:.0f} us (structural skew)\n")
    totals = {}
    for build in (MpiBuild.DEFAULT, MpiBuild.AB):
        out = run_program(paper_cluster(size, seed=7), make_program(weights),
                          build=build)
        in_reduce = np.array(out.results)
        nonroot = in_reduce[1:]
        totals[build] = nonroot.mean()
        print(f"build={build.value:<8} wall={out.finished_at:9.1f} us   "
              f"time inside MPI_Reduce per non-root rank: "
              f"mean {nonroot.mean():7.1f} us, worst {nonroot.max():7.1f} us")
    factor = totals[MpiBuild.DEFAULT] / totals[MpiBuild.AB]
    print(f"\napplication-bypass cuts non-root reduction blocking by "
          f"{factor:.1f}x")


if __name__ == "__main__":
    main()
