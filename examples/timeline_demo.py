#!/usr/bin/env python
"""Render the paper's Fig. 2 time lines from a real (simulated) run.

Four ranks perform one reduction; rank 3 starts late.  Under the default
build, node 2 must wait idly for node 3 (Fig. 2a); with application bypass,
node 2's processing splits into a synchronous part and an asynchronous
completion triggered by the late message (Fig. 2b).  The ASCII timeline
shows descriptor enqueue (E), NIC signal (!) and completion (C) markers.

Run:  python examples/timeline_demo.py
"""

import numpy as np

from repro import MpiBuild, SUM, quiet_cluster, run_program
from repro.report import descriptor_spans, render_timeline
from repro.sim.trace import Tracer

SKEW_US = 150.0


def program(mpi):
    if mpi.rank == 3:
        yield from mpi.compute(SKEW_US)          # node 3 is late (Fig. 2)
    result = yield from mpi.reduce(np.ones(4), op=SUM, root=0)
    yield from mpi.compute(250.0)                # other processing
    yield from mpi.barrier()
    return None if result is None else float(result[0])


def main() -> None:
    for build in (MpiBuild.DEFAULT, MpiBuild.AB):
        tracer = Tracer(enabled=True)
        out = run_program(quiet_cluster(4, seed=0), program, build=build,
                          tracer=tracer)
        assert out.results[0] == 4.0
        print(f"\n=== {build.value} build "
              f"(rank 3 starts {SKEW_US:.0f} us late) ===")
        print(render_timeline(tracer, nodes=range(4),
                              t_end=min(out.finished_at, 450.0), width=90))
        if build is MpiBuild.AB:
            for span in descriptor_spans(tracer):
                print(f"  rank {span['node']}: reduction instance "
                      f"{span['instance']} completed {span['mode']} after "
                      f"{span['span_us']:.1f} us")


if __name__ == "__main__":
    main()
