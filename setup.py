"""Setuptools shim for environments whose pip/setuptools predate full
PEP-517/660 editable-install support (falls back to `setup.py develop`)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Application-bypass reduction for large-scale clusters "
                 "(CLUSTER 2003) - full simulation-based reproduction"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
