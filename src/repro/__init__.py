"""repro — Application-Bypass Reduction for Large-Scale Clusters.

Simulation-based reproduction of Wagner, Buntinas, Brightwell & Panda
(IEEE CLUSTER 2003): an MPICH-over-GM stack in which ``MPI_Reduce`` can make
progress without the application blocking, evaluated under process skew.

Quickstart::

    import numpy as np
    from repro import paper_cluster, run_program, MpiBuild, SUM

    def program(mpi):
        data = np.full(4, float(mpi.rank + 1))
        result = yield from mpi.reduce(data, op=SUM, root=0)
        return None if result is None else result.sum()

    out = run_program(paper_cluster(8), program, build=MpiBuild.AB)
    print(out.results[0])   # root's reduced value

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from .config import (AbParams, ClusterConfig, FaultParams, MachineSpec,
                     NetParams, NicParams, NoiseParams, NO_NOISE, MpiParams,
                     homogeneous_cluster, interlaced_roster, paper_cluster,
                     quiet_cluster)
from .errors import (AbProtocolError, ConfigError, DeadlockError, GmError,
                     MpiError, ProcessFailed, ReproError, SimulationError)
from .mpich import (MAX, MIN, PROD, SUM, Communicator, MpiBuild, Op,
                    user_op, world_communicator)
from .runtime import MpiContext, ProgramResult, build_cluster, run_program

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "ClusterConfig", "MachineSpec", "NicParams", "NetParams", "MpiParams",
    "AbParams", "NoiseParams", "NO_NOISE", "FaultParams",
    "paper_cluster", "homogeneous_cluster", "quiet_cluster",
    "interlaced_roster",
    # runtime
    "run_program", "build_cluster", "MpiContext", "ProgramResult",
    # MPI surface
    "MpiBuild", "Communicator", "world_communicator",
    "Op", "SUM", "PROD", "MIN", "MAX", "user_op",
    # errors
    "ReproError", "SimulationError", "DeadlockError", "ProcessFailed",
    "ConfigError", "MpiError", "GmError", "AbProtocolError",
]
