"""``python -m repro``: version banner and a map of the entry points."""

from __future__ import annotations

import sys

from . import __version__


def main() -> int:
    print(f"repro {__version__} — Application-Bypass Reduction for "
          "Large-Scale Clusters (CLUSTER 2003), simulation reproduction")
    print()
    print("entry points:")
    print("  python -m repro.experiments <fig6|fig7|fig8|fig9|fig10|"
          "ablations|extensions|scale|all>")
    print("  pytest tests/                       # unit/integration/property")
    print("  pytest benchmarks/ --benchmark-only # regenerate every figure")
    print("  python examples/quickstart.py       # (and 5 more examples)")
    print()
    print("docs: README.md, DESIGN.md (system inventory), "
          "EXPERIMENTS.md (paper-vs-measured)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
