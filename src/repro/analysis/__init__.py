"""Static analysis and runtime protocol-invariant checking.

Three layers keep the codebase safe to refactor aggressively:

* :mod:`repro.analysis.simlint` — an AST linter (stdlib ``ast`` only) for
  the hazards specific to a generator-driven deterministic simulator:
  dropped ``yield from``, wall-clock/ambient randomness, float equality on
  timestamps, unconsumed CPU ledgers, mutable defaults and late-binding
  loop captures;
* :mod:`repro.analysis.invariants` — a pluggable
  :class:`~repro.analysis.invariants.InvariantMonitor` that hooks the
  simulator, the GM NICs and the AB engines and checks the paper's Sec. IV
  descriptor/signal protocol and Sec. V copy accounting at runtime;
* :mod:`repro.analysis.cli` — ``python -m repro.analysis`` with text/JSON
  output and a checked-in baseline, wired into the tier-1 test suite.
"""

from .baseline import Baseline, BaselineError
from .findings import Finding, Violation, normalize_path
from .invariants import (ASSERT, COLLECT, InvariantMonitor,
                         make_default_monitor, set_default_monitor_factory)
from .simlint import RULES, Linter, lint_paths

__all__ = [
    "ASSERT", "COLLECT",
    "Baseline", "BaselineError",
    "Finding", "Violation", "normalize_path",
    "InvariantMonitor", "make_default_monitor",
    "set_default_monitor_factory",
    "RULES", "Linter", "lint_paths",
]
