"""Baseline file handling for simlint.

A baseline records the fingerprints of accepted (grandfathered) findings so
CI can gate on *new* debt only.  Entries are keyed by fingerprint with an
occurrence count, so two identical offending lines in one file need two
baseline slots — fixing one of them shrinks the budget.

The on-disk format is sorted JSON for stable diffs::

    {
      "version": 1,
      "entries": [
        {"fingerprint": "...", "rule": "SIM002", "path": "repro/...",
         "line": 42, "count": 1, "note": "optional justification"}
      ]
    }
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Optional

from .findings import Finding

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """Malformed or unreadable baseline file."""


class Baseline:
    """Budget of accepted findings, keyed by fingerprint."""

    def __init__(self, counts: Optional[dict[str, int]] = None,
                 meta: Optional[dict[str, dict]] = None):
        self.counts: Counter = Counter(counts or {})
        #: fingerprint -> representative entry (rule/path/note), for saves.
        self.meta: dict[str, dict] = dict(meta or {})

    # ------------------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: Iterable[Finding],
                      note: str = "") -> "Baseline":
        baseline = cls()
        for finding in findings:
            fp = finding.fingerprint
            baseline.counts[fp] += 1
            baseline.meta.setdefault(fp, {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "note": note,
            })
        return baseline

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        try:
            raw = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
            raise BaselineError(
                f"baseline {path} has unsupported version "
                f"{raw.get('version') if isinstance(raw, dict) else raw!r}")
        counts: dict[str, int] = {}
        meta: dict[str, dict] = {}
        for entry in raw.get("entries", []):
            fp = entry.get("fingerprint")
            if not fp:
                raise BaselineError(f"baseline {path}: entry missing "
                                    f"fingerprint: {entry}")
            counts[fp] = counts.get(fp, 0) + int(entry.get("count", 1))
            meta.setdefault(fp, {k: entry[k] for k in
                                 ("rule", "path", "line", "note")
                                 if k in entry})
        return cls(counts, meta)

    def save(self, path: Path | str) -> None:
        entries = []
        for fp in sorted(self.counts):
            entry = {"fingerprint": fp, "count": self.counts[fp]}
            entry.update(self.meta.get(fp, {}))
            entries.append(entry)
        payload = {"version": BASELINE_VERSION, "entries": entries}
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                              + "\n", encoding="utf-8")

    # ------------------------------------------------------------------
    def filter(self, findings: Iterable[Finding]
               ) -> tuple[list[Finding], int, int]:
        """Split findings into (new, baselined_count, stale_entry_count).

        Each baseline slot absorbs one occurrence of its fingerprint;
        occurrences beyond the budget are new findings.  Stale entries are
        budget that matched nothing (candidates for baseline cleanup).
        """
        budget = Counter(self.counts)
        new: list[Finding] = []
        baselined = 0
        for finding in findings:
            fp = finding.fingerprint
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                baselined += 1
            else:
                new.append(finding)
        stale = sum(budget.values())
        return new, baselined, stale

    def __len__(self) -> int:
        return sum(self.counts.values())
