"""Command-line front end: ``python -m repro.analysis [options] paths...``

Exit codes: 0 — clean (possibly after baseline filtering); 1 — new
findings; 2 — usage error (bad flags, missing paths, unreadable baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .baseline import Baseline, BaselineError
from .rules import REGISTRY, SEVERITIES, RuleOverride
from .simlint import RULES, Linter, SIM_SCOPED_PACKAGES

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint: sim-aware static analysis for the repro "
                    "codebase")
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--baseline", metavar="FILE",
                        help="baseline JSON of accepted findings")
    parser.add_argument("--write-baseline", action="store_true",
                        help="(re)write --baseline from current findings "
                             "and exit 0")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule IDs to run "
                             "(default: all)")
    parser.add_argument("--disable", metavar="RULE", action="append",
                        default=[],
                        help="disable one rule (repeatable)")
    parser.add_argument("--severity", metavar="RULE=LEVEL", action="append",
                        default=[],
                        help="override a rule's severity, e.g. "
                             "SIM012=error (repeatable; levels: "
                             + "/".join(SEVERITIES) + ")")
    parser.add_argument("--fail-on-warnings", action="store_true",
                        help="exit 1 on warning-severity findings too "
                             "(default: only errors gate)")
    parser.add_argument("--out", metavar="FILE",
                        help="also write the report (in the chosen "
                             "--format) to FILE, e.g. a CI artifact")
    parser.add_argument("--sim-scope", metavar="PKGS",
                        default=",".join(sorted(SIM_SCOPED_PACKAGES)),
                        help="repro sub-packages where determinism rules "
                             "apply")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse already printed the message
        return EXIT_USAGE if exc.code not in (0, None) else EXIT_CLEAN

    if args.list_rules:
        for rule_id in sorted(RULES):
            cls = REGISTRY.get(rule_id)
            sev = cls.spec.severity if cls is not None else "error"
            print(f"{rule_id}  [{sev}] {RULES[rule_id]}")
        return EXIT_CLEAN

    if not args.paths:
        print("error: no paths given (try: python -m repro.analysis src/)",
              file=sys.stderr)
        return EXIT_USAGE
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: path(s) do not exist: {', '.join(missing)}",
              file=sys.stderr)
        return EXIT_USAGE

    select = None
    if args.select:
        select = {r.strip() for r in args.select.split(",") if r.strip()}
        unknown = select - set(RULES)
        if unknown:
            print(f"error: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return EXIT_USAGE

    overrides: dict[str, RuleOverride] = {}
    for rule_id in args.disable:
        if rule_id not in RULES:
            print(f"error: unknown rule: {rule_id}", file=sys.stderr)
            return EXIT_USAGE
        overrides[rule_id] = RuleOverride(enabled=False)
    for spec in args.severity:
        rule_id, _, level = spec.partition("=")
        if rule_id not in RULES or level not in SEVERITIES:
            print(f"error: bad --severity {spec!r} (want RULE="
                  f"{'|'.join(SEVERITIES)})", file=sys.stderr)
            return EXIT_USAGE
        prev = overrides.get(rule_id, RuleOverride())
        overrides[rule_id] = RuleOverride(enabled=prev.enabled,
                                          severity=level)

    sim_scope = {p.strip() for p in args.sim_scope.split(",") if p.strip()}
    linter = Linter(select=select, sim_scope=sim_scope, overrides=overrides)
    findings = linter.lint_paths(args.paths)

    if args.write_baseline:
        if not args.baseline:
            print("error: --write-baseline requires --baseline FILE",
                  file=sys.stderr)
            return EXIT_USAGE
        Baseline.from_findings(findings).save(args.baseline)
        print(f"wrote baseline with {len(findings)} finding(s) to "
              f"{args.baseline}")
        return EXIT_CLEAN

    baselined = stale = 0
    if args.baseline and Path(args.baseline).exists():
        try:
            baseline = Baseline.load(args.baseline)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        findings, baselined, stale = baseline.filter(findings)

    errors = [f for f in findings if f.severity == "error"]
    warnings = [f for f in findings if f.severity != "error"]

    if args.format == "json":
        counts: dict[str, int] = {}
        for finding in findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        output = json.dumps({
            "version": 1,
            "findings": [f.to_dict() for f in findings],
            "counts": counts,
            "errors": len(errors),
            "warnings": len(warnings),
            "baselined": baselined,
            "stale_baseline_entries": stale,
        }, indent=2, sort_keys=True)
    else:
        lines = [f.render() for f in findings]
        summary = [f"{len(findings)} finding(s)"]
        if warnings:
            summary.append(f"{len(warnings)} warning(s)")
        if baselined:
            summary.append(f"{baselined} baselined")
        if stale:
            summary.append(f"{stale} stale baseline entr(ies) — "
                           f"consider --write-baseline")
        lines.append("simlint: " + ", ".join(summary))
        output = "\n".join(lines)
    print(output)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(output + "\n")

    gating = findings if args.fail_on_warnings else errors
    return EXIT_FINDINGS if gating else EXIT_CLEAN
