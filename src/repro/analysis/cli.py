"""Command-line front end: ``python -m repro.analysis [options] paths...``

Exit codes: 0 — clean (possibly after baseline filtering); 1 — new
findings; 2 — usage error (bad flags, missing paths, unreadable baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .baseline import Baseline, BaselineError
from .simlint import RULES, Linter, SIM_SCOPED_PACKAGES

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint: sim-aware static analysis for the repro "
                    "codebase")
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--baseline", metavar="FILE",
                        help="baseline JSON of accepted findings")
    parser.add_argument("--write-baseline", action="store_true",
                        help="(re)write --baseline from current findings "
                             "and exit 0")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule IDs to run "
                             "(default: all)")
    parser.add_argument("--sim-scope", metavar="PKGS",
                        default=",".join(sorted(SIM_SCOPED_PACKAGES)),
                        help="repro sub-packages where determinism rules "
                             "apply")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse already printed the message
        return EXIT_USAGE if exc.code not in (0, None) else EXIT_CLEAN

    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}  {RULES[rule_id]}")
        return EXIT_CLEAN

    if not args.paths:
        print("error: no paths given (try: python -m repro.analysis src/)",
              file=sys.stderr)
        return EXIT_USAGE
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: path(s) do not exist: {', '.join(missing)}",
              file=sys.stderr)
        return EXIT_USAGE

    select = None
    if args.select:
        select = {r.strip() for r in args.select.split(",") if r.strip()}
        unknown = select - set(RULES)
        if unknown:
            print(f"error: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return EXIT_USAGE

    sim_scope = {p.strip() for p in args.sim_scope.split(",") if p.strip()}
    linter = Linter(select=select, sim_scope=sim_scope)
    findings = linter.lint_paths(args.paths)

    if args.write_baseline:
        if not args.baseline:
            print("error: --write-baseline requires --baseline FILE",
                  file=sys.stderr)
            return EXIT_USAGE
        Baseline.from_findings(findings).save(args.baseline)
        print(f"wrote baseline with {len(findings)} finding(s) to "
              f"{args.baseline}")
        return EXIT_CLEAN

    baselined = stale = 0
    if args.baseline and Path(args.baseline).exists():
        try:
            baseline = Baseline.load(args.baseline)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        findings, baselined, stale = baseline.filter(findings)

    if args.format == "json":
        counts: dict[str, int] = {}
        for finding in findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        print(json.dumps({
            "version": 1,
            "findings": [f.to_dict() for f in findings],
            "counts": counts,
            "baselined": baselined,
            "stale_baseline_entries": stale,
        }, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())
        summary = [f"{len(findings)} finding(s)"]
        if baselined:
            summary.append(f"{baselined} baselined")
        if stale:
            summary.append(f"{stale} stale baseline entr(ies) — "
                           f"consider --write-baseline")
        print("simlint: " + ", ".join(summary))

    return EXIT_FINDINGS if findings else EXIT_CLEAN
