"""Shared result types for the static-analysis layer.

A :class:`Finding` is one linter diagnostic; a :class:`Violation` is one
runtime protocol-invariant breach recorded by
:class:`repro.analysis.invariants.InvariantMonitor`.  Both are plain data
so they serialize to JSON for reports and CI output.

Findings carry a *fingerprint* — a stable hash of ``(normalized path, rule,
stripped line text)`` — so the baseline survives unrelated edits that merely
shift line numbers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Any, Optional


def normalize_path(path: Any) -> str:
    """Location-independent path key: everything from the last ``repro``
    package component on, else the basename.

    This makes fingerprints identical whether the tree is linted as
    ``src/repro/...``, an installed copy, or a test scratch directory that
    mirrors the package layout.
    """
    parts = PurePath(path).as_posix().split("/")
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[idx:])
    return parts[-1]


@dataclass(frozen=True)
class Finding:
    """One linter diagnostic at a specific source location."""

    rule: str
    path: str              # normalized (see normalize_path)
    line: int
    col: int
    message: str
    line_text: str = ""
    #: "error" gates CI; "warning" reports without failing the run.
    #: Excluded from the fingerprint so severity reconfiguration never
    #: invalidates a baseline.
    severity: str = "error"

    @property
    def fingerprint(self) -> str:
        key = f"{self.path}|{self.rule}|{self.line_text.strip()}"
        return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        sev = "" if self.severity == "error" else f" {self.severity}"
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule}{sev} {self.message}")

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
            "fingerprint": self.fingerprint,
        }


@dataclass
class Violation:
    """One runtime protocol-invariant breach."""

    invariant: str
    node: Optional[int]
    time: float
    detail: str
    context: dict = field(default_factory=dict)

    def render(self) -> str:
        where = "cluster" if self.node is None else f"node {self.node}"
        return (f"[{self.invariant}] t={self.time:.3f}us {where}: "
                f"{self.detail}")

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "node": self.node,
            "time": self.time,
            "detail": self.detail,
            "context": dict(self.context),
        }
