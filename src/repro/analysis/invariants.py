"""Runtime protocol-invariant checking for the application-bypass engine.

The paper's Sec. IV protocol is a small state machine with invariants that
are easy to break during refactors and hard to catch from timing-level
tests alone.  :class:`InvariantMonitor` hooks the simulator, the GM NICs
and each rank's :class:`~repro.core.engine.AbEngine` and checks:

``INV-SIGNAL`` (Sec. IV, Figs. 3 & 5)
    NIC signals may only be *enabled* while work is outstanding (a reduce
    descriptor is queued or an extension holds a signal pin), and whenever
    the descriptor queue drains with no pins held the signals must end up
    disabled.  At the exit of every AB ``MPI_Reduce`` the paper's diamond
    holds exactly: signals enabled *iff* descriptors remain (or pins).

``INV-COPY`` (Sec. V-B/V-C)
    Per AB message class the host copy count is fixed: expected/late
    messages are combined straight from the packet buffer (0 copies),
    early (unexpected) messages pay exactly 1 copy into the AB unexpected
    queue; the rejected reuse-the-MPICH-queues ablation pays one more of
    each.  Checked per message and, at finalize, as a counter identity
    over the engine's statistics.

``INV-DRAIN`` (Sec. IV-C)
    At finalize every descriptor queue and AB unexpected queue is empty —
    no reduction was dropped half-combined.

``INV-CLOCK``
    Event times popped by the simulator never run backwards.

``INV-FIFO`` (Sec. IV-D)
    Per-(src, dst) deliveries leave the fabric in strictly increasing
    arrival order.  The AB protocol matches late messages to reduce
    descriptors by sender, which is only sound if the network never
    reorders a pair's packets — multi-hop topologies (repro.topo) keep
    routes deterministic per pair precisely to preserve this.

``INV-SEGMENT`` (repro.pipeline)
    Segmented pipelined collectives must conserve segments: every emitted
    segment (a leaf stream send or an internal forward, identified by
    ``(dst, context, instance, seg, src)``) is folded **exactly once** at
    its destination — by a descriptor, the root's synchronous loop, or the
    split-phase root state.  A duplicate fold is always a violation (a
    contribution counted twice); an emit that was never folded is a
    violation unless a crash accounts for it (the source or destination
    crashed, or the destination abandoned the source after its retry
    budget — both visible in the fault reports).

``INV-FAULT`` (repro.faults)
    When a fault schedule is armed, every injected fault is either
    *recovered* (the run drains normally) or *reported* (the recovery
    layer filed a fault report: subtree healed, send rerouted, child
    abandoned).  A live rank left with queued descriptors or unexpected
    entries at finalize — neither recovered nor reported — violates it.
    ``INV-DRAIN`` is relaxed *only* for crashed ranks: a fail-stopped
    process legitimately dies holding state.

Violations are collected into a structured report.  In ``assert`` mode the
first violation raises :class:`~repro.errors.InvariantViolation`
immediately (for CI); in ``collect`` mode the run continues and the report
is inspected afterwards (for diagnosis).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import InvariantViolation
from .findings import Violation

COLLECT = "collect"
ASSERT = "assert"

#: Process-wide default factory; installed by test harnesses so every
#: :class:`~repro.cluster.cluster.Cluster` built while it is set gets a
#: monitor without plumbing one through each call site.
_default_factory: Optional[Callable[[], "InvariantMonitor"]] = None


def set_default_monitor_factory(
        factory: Optional[Callable[[], "InvariantMonitor"]]) -> None:
    global _default_factory
    _default_factory = factory


def make_default_monitor() -> Optional["InvariantMonitor"]:
    return _default_factory() if _default_factory is not None else None


class InvariantMonitor:
    """Pluggable protocol-invariant checker (see module docstring)."""

    def __init__(self, mode: str = COLLECT):
        if mode not in (COLLECT, ASSERT):
            raise ValueError(f"unknown monitor mode {mode!r}")
        self.mode = mode
        self.violations: list[Violation] = []
        self.checks = 0
        self._engines: dict[int, object] = {}
        self._cluster = None
        self._finalized = False
        self._fifo_last: dict[tuple[int, int], float] = {}
        #: Recovery-layer fault reports (INV-FAULT's "reported" arm).
        self.fault_reports: list[dict] = []
        self._faults = None
        #: Segment conservation ledgers (INV-SEGMENT, repro.pipeline):
        #: (dst, context, instance, seg, src) -> count.  Both stay empty on
        #: unsegmented runs.
        self._segment_emits: dict[tuple, int] = {}
        self._segment_folds: dict[tuple, int] = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, cluster: Any) -> None:
        """Hook a fully built cluster (sim loop + every NIC)."""
        self._cluster = cluster
        cluster.sim.add_monitor(self)
        fabric = getattr(cluster, "fabric", None)
        if fabric is not None:
            fabric.monitor = self
        for node in cluster.nodes:
            node.nic.monitor = self
        self._faults = getattr(cluster, "faults", None)

    def register_engine(self, engine: Any) -> None:
        """Called by :class:`AbEngine.__init__` when a monitor is wired."""
        self._engines[engine.rank.rank] = engine

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, invariant: str, node: Optional[int], time: float,
               detail: str, **context: Any) -> None:
        # Multi-tenant runs (repro.tenancy) tag each node with its job;
        # copying the tag into the violation keys INV-* reports by
        # tenant.  Single-job clusters and idle hosts carry no tag.
        if node is not None and self._cluster is not None:
            nodes = getattr(self._cluster, "nodes", ())
            if 0 <= node < len(nodes):
                owner = getattr(nodes[node], "job_id", None)
                if owner is not None:
                    context.setdefault("job_id", owner)
                    name = getattr(nodes[node], "job_name", None)
                    if name is not None:
                        context.setdefault("job", name)
        violation = Violation(invariant=invariant, node=node, time=time,
                              detail=detail, context=context)
        self.violations.append(violation)
        if self.mode == ASSERT:
            raise InvariantViolation(violation.render(), self.report())

    def report(self) -> dict:
        """Structured summary (JSON-serializable)."""
        out = {
            "mode": self.mode,
            "checks": self.checks,
            "violation_count": len(self.violations),
            "violations": [v.to_dict() for v in self.violations],
            "fault_report_count": len(self.fault_reports),
            "fault_reports": list(self.fault_reports),
        }
        by_job: dict[str, int] = {}
        for v in self.violations:
            job = v.context.get("job_id")
            if job is not None:
                by_job[str(job)] = by_job.get(str(job), 0) + 1
        if by_job:
            # Only present on multi-tenant runs, so single-job reports
            # stay byte-identical to previous checkouts.
            out["violations_by_job"] = by_job
        return out

    @property
    def ok(self) -> bool:
        return not self.violations

    # ------------------------------------------------------------------
    # hook points
    # ------------------------------------------------------------------
    def on_event(self, event_time: float, now: float) -> None:
        """Simulator pops an event (called before the clock advances)."""
        self.checks += 1
        if event_time < now:
            self.record("INV-CLOCK", None, now,
                        f"event time {event_time} precedes current time "
                        f"{now} — the virtual clock ran backwards")

    def on_delivery(self, src: int, dst: int, arrival: float,
                    now: float) -> None:
        """Fabric committed a delivery time for a (src, dst) packet."""
        self.checks += 1
        key = (src, dst)
        prev = self._fifo_last.get(key)
        if prev is not None and arrival <= prev:
            self.record(
                "INV-FIFO", dst, now,
                f"delivery from node {src} at t={arrival} does not follow "
                f"the pair's previous delivery at t={prev} — per-(src,dst) "
                f"FIFO broken; AB late-message matching depends on it "
                f"(paper Sec. IV-D)",
                src=src, arrival=arrival, prev=prev)
            return
        self._fifo_last[key] = arrival

    def on_signal_toggle(self, node_id: int, enabled: bool,
                         now: float) -> None:
        """NIC signal generation actually flipped (not a re-enable)."""
        self.checks += 1
        if not enabled:
            return
        engine = self._engines.get(node_id)
        if engine is None:
            return  # raw-NIC use (tests) — nothing to cross-check against
        if engine.descriptors.empty and engine.signal_pins == 0:
            self.record(
                "INV-SIGNAL", node_id, now,
                "signals enabled with an empty descriptor queue and no "
                "signal pins — nothing outstanding can justify them "
                "(paper Fig. 3 exit diamond)",
                descriptors=len(engine.descriptors),
                pins=engine.signal_pins)

    def on_queue_drained(self, node_id: int, now: float) -> None:
        """Descriptor queue reached empty with no pins held."""
        self.checks += 1
        engine = self._engines.get(node_id)
        if engine is None:
            return
        if engine.nic.signals_enabled:
            self.record(
                "INV-SIGNAL", node_id, now,
                "descriptor queue drained (no pins) but NIC signals are "
                "still enabled (paper Fig. 5: 'descriptor queue empty? -> "
                "disable signals')")

    def on_reduce_exit(self, node_id: int, now: float) -> None:
        """Synchronous component of an AB MPI_Reduce returned."""
        self.checks += 1
        engine = self._engines.get(node_id)
        if engine is None:
            return
        outstanding = (not engine.descriptors.empty
                       or engine.signal_pins > 0)
        enabled = engine.nic.signals_enabled
        if outstanding != enabled:
            self.record(
                "INV-SIGNAL", node_id, now,
                f"MPI_Reduce exit: signals_enabled={enabled} but "
                f"outstanding work={outstanding} (descriptors="
                f"{len(engine.descriptors)}, pins={engine.signal_pins}) — "
                f"Fig. 3 requires them to match",
                descriptors=len(engine.descriptors),
                pins=engine.signal_pins)

    def on_fault_report(self, node_id: int, kind: str, now: float,
                        **context: Any) -> None:
        """Recovery layer reports a fault it handled or gave up on.

        Reports are *not* violations: INV-FAULT requires every injected
        fault to be recovered **or** reported, so filing one is how an
        unrecoverable situation (e.g. a contribution lost with its crashed
        parent) stays honest instead of silently wrong.
        """
        self.checks += 1
        self.fault_reports.append(
            {"node": node_id, "kind": kind, "time": now, **context})

    def on_segment_emit(self, node_id: int, dst: int, context_id: int,
                        instance: int, seg: int, now: float) -> None:
        """One segment-tagged AB send left ``node_id`` for ``dst``."""
        self.checks += 1
        key = (dst, context_id, instance, seg, node_id)
        self._segment_emits[key] = self._segment_emits.get(key, 0) + 1

    def on_segment_fold(self, node_id: int, src: int, context_id: int,
                        instance: int, seg: int, now: float) -> None:
        """``node_id`` folded ``src``'s contribution for one segment."""
        self.checks += 1
        key = (node_id, context_id, instance, seg, src)
        count = self._segment_folds.get(key, 0) + 1
        self._segment_folds[key] = count
        if count > 1:
            self.record(
                "INV-SEGMENT", node_id, now,
                f"segment {seg} of instance {instance} (context "
                f"{context_id}) from node {src} folded {count} times — a "
                f"contribution was combined more than once",
                src=src, instance=instance, seg=seg, count=count)

    def on_ab_message(self, node_id: int, msg_class: str, copies: int,
                      reuse_mpich_queues: bool, now: float) -> None:
        """One AB reduce packet was classified and combined/buffered."""
        self.checks += 1
        expected = {"expected": 0, "unexpected": 1}.get(msg_class)
        if expected is None:
            self.record("INV-COPY", node_id, now,
                        f"unknown AB message class {msg_class!r}")
            return
        if reuse_mpich_queues:
            expected += 1
        if copies != expected:
            self.record(
                "INV-COPY", node_id, now,
                f"{msg_class} AB message paid {copies} host copies, "
                f"protocol requires exactly {expected} "
                f"(paper Sec. V-B/V-C)",
                msg_class=msg_class, copies=copies, expected=expected)

    # ------------------------------------------------------------------
    # finalize
    # ------------------------------------------------------------------
    def finalize(self) -> dict:
        """End-of-run checks; returns the structured report."""
        self._finalized = True
        faulted = self._faults is not None
        for node_id, engine in sorted(self._engines.items()):
            now = engine.sim.now
            self.checks += 1
            if faulted and node_id in self._faults.crashed_ranks(now):
                # INV-DRAIN relaxed for crashed ranks only: a fail-stopped
                # process legitimately dies holding descriptors; its state
                # is frozen garbage, not protocol evidence.
                continue
            if not engine.descriptors.empty:
                self.record(
                    "INV-FAULT" if faulted else "INV-DRAIN", node_id, now,
                    f"{len(engine.descriptors)} reduce descriptor(s) still "
                    f"queued at finalize — a reduction never completed"
                    + (" (injected fault neither recovered nor reported)"
                       if faulted else ""),
                    descriptors=len(engine.descriptors))
            if not engine.unexpected.empty:
                self.record(
                    "INV-FAULT" if faulted else "INV-DRAIN", node_id, now,
                    f"{len(engine.unexpected)} AB unexpected entr(ies) "
                    f"never consumed at finalize"
                    + (" (injected fault neither recovered nor reported)"
                       if faulted else ""),
                    unexpected=len(engine.unexpected))
            if engine.nic.signals_enabled and engine.signal_pins == 0:
                self.record(
                    "INV-SIGNAL", node_id, now,
                    "NIC signals still enabled at finalize with no pins "
                    "held and an empty descriptor queue")
            self._check_copy_identity(node_id, engine, now)
        self._check_segment_conservation()
        return self.report()

    def _check_segment_conservation(self) -> None:
        """INV-SEGMENT: every emitted segment folded exactly once, or
        accounted for by a crash report (duplicate folds were flagged at
        fold time)."""
        if not self._segment_emits and not self._segment_folds:
            return
        now = 0.0
        if self._engines:
            now = max(e.sim.now for e in self._engines.values())
        crashed = (self._faults.crashed_ranks(now)
                   if self._faults is not None else set())
        abandoned = {(r["node"], r.get("child"))
                     for r in self.fault_reports
                     if r.get("kind") == "child_abandoned"}
        for key, emits in sorted(self._segment_emits.items()):
            dst, context_id, instance, seg, src = key
            folds = self._segment_folds.get(key, 0)
            self.checks += 1
            if folds >= emits:
                continue
            if src in crashed or dst in crashed or (dst, src) in abandoned:
                # Crash-accounted: the packet died with a crashed endpoint
                # or the destination honestly abandoned the sender.
                continue
            self.record(
                "INV-SEGMENT", dst, now,
                f"segment {seg} of instance {instance} (context "
                f"{context_id}) emitted by node {src} was never folded at "
                f"node {dst} and no crash accounts for it",
                src=src, instance=instance, seg=seg,
                emits=emits, folds=folds)
        for key, folds in sorted(self._segment_folds.items()):
            dst, context_id, instance, seg, src = key
            self.checks += 1
            if key not in self._segment_emits:
                self.record(
                    "INV-SEGMENT", dst, now,
                    f"node {dst} folded segment {seg} of instance "
                    f"{instance} (context {context_id}) from node {src} "
                    f"that was never emitted",
                    src=src, instance=instance, seg=seg, folds=folds)

    def _check_copy_identity(self, node_id: int, engine: Any,
                             now: float) -> None:
        """Sec. V-B/V-C copy accounting as a counter identity."""
        stats = engine.stats
        per_unexpected = 2 if engine.params.reuse_mpich_queues else 1
        per_expected = 1 if engine.params.reuse_mpich_queues else 0
        expected_copies = (stats.unexpected_one_copy * per_unexpected
                           + stats.expected_zero_copy * per_expected)
        if stats.ab_copies != expected_copies:
            self.record(
                "INV-COPY", node_id, now,
                f"copy accounting drifted: {stats.ab_copies} copies "
                f"recorded, identity predicts {expected_copies} "
                f"({stats.unexpected_one_copy} unexpected x "
                f"{per_unexpected} + {stats.expected_zero_copy} "
                f"expected x {per_expected})",
                ab_copies=stats.ab_copies, expected=expected_copies)
