"""Determinism race detector (dynamic layers of the sanitizer).

Two complementary checkers for *schedule races* — places where a
simulation's result silently depends on the arbitrary FIFO tiebreak among
same-timestamp events:

1. **Schedule-perturbation harness** (:func:`check_points` /
   ``python -m repro.analysis.races``): run a scenario once under the
   default FIFO schedule and N more times under seeded tiebreak-shuffle
   schedules (:mod:`repro.sim.events`), then diff metrics, simulator
   counters and invariant reports bit-for-bit.  Any divergence is a
   *confirmed* race: same inputs, same seeds, different answer — only the
   same-time event order changed.

2. **Happens-before checker** (:class:`HappensBeforeTracer`): an opt-in
   :class:`~repro.sim.access.AccessTracer` that records, per event, every
   read/write of shared engine state (descriptor tables, fold buffers, NIC
   RX queues, AB unexpected queues) plus the schedule DAG (which event
   scheduled which).  Two same-timestamp events with conflicting accesses
   and no scheduling ancestry between them are a *latent* race: this run
   happened to agree, but nothing orders them.  Latent conflicts are
   reported with both events' scheduling-ancestry chains so the race is
   debuggable without re-running.

The perturbation verdict gates CI (``race-smoke``); the happens-before
report is diagnostic — it explains a divergence, and surfaces races the
tried permutations did not happen to expose.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

from ..sim.access import (READ, WRITE, Location, get_access_tracer,
                          set_access_tracer)
from ..sim.events import tiebreak_key

EXIT_CLEAN = 0
EXIT_DIVERGED = 1
EXIT_USAGE = 2

# ---------------------------------------------------------------------------
# happens-before tracer
# ---------------------------------------------------------------------------


@dataclass
class Access:
    """One traced read/write of shared state."""

    kind: str                  # repro.sim.access.READ | WRITE
    location: Location
    order_sensitive: bool
    note: str


@dataclass
class EventRecord:
    """One simulation event, as the tracer saw it."""

    idx: int                   # tracer-assigned id, unique across queues
    seq: int                   # queue-local insertion counter
    time: float                # scheduled (then actual) fire time
    label: str                 # callback __qualname__
    parent: Optional[int]      # idx of the event that scheduled this one
    priority: int = 0          # same-instant class (repro.sim.events)
    executed: bool = False
    accesses: list[Access] = field(default_factory=list)


@dataclass
class Conflict:
    """Two same-timestamp, causally unordered events touching the same
    shared state, at least one writing."""

    time: float
    location: Location
    a: EventRecord
    b: EventRecord
    kinds: tuple[str, str]     # the conflicting access kinds (a, b)
    notes: tuple[str, str]

    def signature(self) -> tuple:
        """Dedup key: the *pattern*, not the instance."""
        return (self.location, self.a.label, self.b.label, self.kinds)

    def to_dict(self, tracer: "HappensBeforeTracer") -> dict:
        return {
            "time": self.time,
            "location": list(self.location),
            "events": [
                {"label": rec.label, "seq": rec.seq, "kind": kind,
                 "note": note, "stack": tracer.ancestry(rec)}
                for rec, kind, note in ((self.a, self.kinds[0], self.notes[0]),
                                        (self.b, self.kinds[1], self.notes[1]))
            ],
        }


class HappensBeforeTracer:
    """Concrete :class:`~repro.sim.access.AccessTracer` that reconstructs
    the schedule DAG and flags unordered conflicting accesses.

    Install with :func:`repro.sim.access.set_access_tracer` (or use
    :func:`trace_point`), run the simulation, then call
    :meth:`find_conflicts`.
    """

    #: Events considered per same-(time, location) group; a wider group is
    #: truncated (and noted) to keep pair checking linear in practice.
    MAX_GROUP = 16

    def __init__(self) -> None:
        self.records: list[EventRecord] = []
        #: Live (scheduled, not yet begun) events by python id.  Entries
        #: are popped at begin so a recycled id cannot resolve stale.
        self._by_id: dict[int, EventRecord] = {}
        self._current: Optional[EventRecord] = None
        self.truncated_groups = 0

    # -- AccessTracer interface -------------------------------------------
    def on_event_scheduled(self, event: Any) -> None:
        rec = EventRecord(
            idx=len(self.records), seq=event.seq, time=event.time,
            label=event.label(),
            parent=None if self._current is None else self._current.idx,
            priority=getattr(event, "priority", 0))
        self.records.append(rec)
        self._by_id[id(event)] = rec

    def on_event_begin(self, event: Any) -> None:
        rec = self._by_id.pop(id(event), None)
        if rec is None:
            # Scheduled before the tracer was installed.
            rec = EventRecord(idx=len(self.records), seq=event.seq,
                              time=event.time, label=event.label(),
                              parent=None)
            self.records.append(rec)
        rec.time = event.time
        rec.executed = True
        self._current = rec

    def on_access(self, kind: str, location: Location, *,
                  order_sensitive: bool = True, note: str = "") -> None:
        if self._current is not None:
            self._current.accesses.append(
                Access(kind, location, order_sensitive, note))

    # -- analysis ---------------------------------------------------------
    def ancestry(self, rec: EventRecord, *, depth: int = 8) -> list[str]:
        """The event's scheduling-ancestry chain, innermost first —
        the discrete-event analogue of a stack trace."""
        chain = []
        cur: Optional[EventRecord] = rec
        while cur is not None and len(chain) < depth:
            chain.append(f"t={cur.time:.3f} {cur.label} (seq {cur.seq})")
            cur = None if cur.parent is None else self.records[cur.parent]
        if cur is not None:
            chain.append("...")
        return chain

    def _ordered(self, a: EventRecord, b: EventRecord) -> bool:
        """True when the pair has a defined same-time order: different
        priority classes (deliveries < wake-ups < timers, a total order by
        construction) or one event is a scheduling ancestor of the other
        (if A scheduled B, A necessarily popped first)."""
        if a.priority != b.priority:
            return True
        for start, target in ((a, b.idx), (b, a.idx)):
            cur: Optional[EventRecord] = start
            while cur is not None:
                if cur.idx == target:
                    return True
                cur = None if cur.parent is None else self.records[cur.parent]
        return False

    def find_conflicts(self, *, max_conflicts: int = 50) -> list[Conflict]:
        """All distinct unordered same-time conflicts, deduped by access
        pattern ``(location, label_a, label_b, kinds)``."""
        # (time, location) -> [(record, access)]
        groups: dict[tuple, list[tuple[EventRecord, Access]]] = {}
        for rec in self.records:
            if not rec.executed:
                continue
            for acc in rec.accesses:
                groups.setdefault((rec.time, acc.location), []).append(
                    (rec, acc))

        conflicts: list[Conflict] = []
        seen: set[tuple] = set()
        for (time, location), entries in sorted(
                groups.items(), key=lambda kv: (kv[0][0], repr(kv[0][1]))):
            # One access per event per group is enough for pairing.
            per_event: dict[int, tuple[EventRecord, Access]] = {}
            for rec, acc in entries:
                prev = per_event.get(rec.idx)
                # Prefer a write (and among those, an order-sensitive one)
                # as the event's representative access.
                if (prev is None
                        or (acc.kind == WRITE) > (prev[1].kind == WRITE)
                        or (acc.kind == prev[1].kind
                            and acc.order_sensitive
                            and not prev[1].order_sensitive)):
                    per_event[rec.idx] = (rec, acc)
            if len(per_event) < 2:
                continue
            group = sorted(per_event.values(), key=lambda ra: ra[0].idx)
            if len(group) > self.MAX_GROUP:
                self.truncated_groups += 1
                group = group[:self.MAX_GROUP]
            for i, (ra, aa) in enumerate(group):
                for rb, ab in group[i + 1:]:
                    if aa.kind != WRITE and ab.kind != WRITE:
                        continue
                    if not (aa.order_sensitive or ab.order_sensitive):
                        continue
                    conflict = Conflict(time=time, location=location,
                                        a=ra, b=rb,
                                        kinds=(aa.kind, ab.kind),
                                        notes=(aa.note, ab.note))
                    if conflict.signature() in seen:
                        continue
                    if self._ordered(ra, rb):
                        continue
                    seen.add(conflict.signature())
                    conflicts.append(conflict)
                    if len(conflicts) >= max_conflicts:
                        return conflicts
        return conflicts


def trace_point(point: Any) -> "HappensBeforeTracer":
    """Re-run one sweep point under the happens-before tracer and return
    the populated tracer (serial, in-process)."""
    from ..orchestrate.points import execute_point
    tracer = HappensBeforeTracer()
    prev = get_access_tracer()
    set_access_tracer(tracer)
    try:
        execute_point(point)
    finally:
        set_access_tracer(prev)
    return tracer


# ---------------------------------------------------------------------------
# perturbation harness
# ---------------------------------------------------------------------------

def perturbation_seeds(seed: int, runs: int) -> list[int]:
    """The tiebreak seeds for one harness invocation: a pure, well-spread
    function of (base seed, run index), so reports are reproducible."""
    return [tiebreak_key(seed, i + 1) for i in range(runs)]


def _capture(result: Any) -> dict:
    """The comparable face of one PointResult: everything that must be
    bit-identical across schedules (host wall time excluded)."""
    cap: dict[str, Any] = {"metrics": dict(result.metrics),
                           "counters": dict(result.counters)}
    if result.invariant_report is not None:
        cap["invariants"] = {
            "checks": result.invariant_report["checks"],
            "violation_count": result.invariant_report["violation_count"],
            "violations": result.invariant_report["violations"],
        }
    return cap


def diff_captures(base: Any, other: Any, path: str = "") -> list[dict]:
    """Recursive exact diff of two captures; each divergence names its
    path and both values."""
    if isinstance(base, dict) and isinstance(other, dict):
        out = []
        for key in sorted(set(base) | set(other), key=repr):
            sub = f"{path}.{key}" if path else str(key)
            if key not in base:
                out.append({"path": sub, "baseline": None,
                            "perturbed": other[key]})
            elif key not in other:
                out.append({"path": sub, "baseline": base[key],
                            "perturbed": None})
            else:
                out.extend(diff_captures(base[key], other[key], sub))
        return out
    if isinstance(base, (list, tuple)) and isinstance(other, (list, tuple)):
        out = []
        if len(base) != len(other):
            out.append({"path": f"{path}.len", "baseline": len(base),
                        "perturbed": len(other)})
        for i, (a, b) in enumerate(zip(base, other)):
            out.extend(diff_captures(a, b, f"{path}[{i}]"))
        return out
    equal = (base == other) or (base != base and other != other)  # NaN==NaN
    if equal and type(base) is type(other):
        return []
    return [{"path": path, "baseline": base, "perturbed": other}]


@dataclass
class PointVerdict:
    """Perturbation result for one sweep point."""

    label: str
    key: dict
    clean: bool
    #: Per diverging perturbed run: tiebreak seed + exact diffs.
    divergences: list[dict]
    #: Latent (or confirming) happens-before conflicts, when HB ran.
    conflicts: list[dict] = field(default_factory=list)
    hb_truncated_groups: int = 0

    def to_dict(self) -> dict:
        return {"label": self.label, "key": self.key, "clean": self.clean,
                "divergences": self.divergences,
                "conflicts": self.conflicts,
                "hb_truncated_groups": self.hb_truncated_groups}


def check_points(points: list, *, runs: int = 8, seed: int = 1,
                 jobs: int = 1, hb: str = "on-divergence",
                 max_diffs_per_run: int = 20,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> list[PointVerdict]:
    """Run every point under FIFO + ``runs`` shuffled schedules and
    return one verdict per point.

    ``hb``: ``"never"`` | ``"on-divergence"`` (default: explain diverging
    points with the happens-before checker) | ``"always"`` (also surface
    latent conflicts on clean points).
    """
    from ..orchestrate.runner import run_points
    seeds = perturbation_seeds(seed, runs)
    batch = []
    for point in points:
        batch.append(replace(point, tiebreak_seed=None))
        batch.extend(replace(point, tiebreak_seed=s) for s in seeds)
    results = run_points(batch, jobs=jobs, progress=progress)

    verdicts = []
    stride = 1 + runs
    for i, point in enumerate(points):
        group = results[i * stride:(i + 1) * stride]
        baseline = _capture(group[0])
        divergences = []
        for tb_seed, res in zip(seeds, group[1:]):
            diffs = diff_captures(baseline, _capture(res))
            if diffs:
                divergences.append({
                    "tiebreak_seed": tb_seed,
                    "diffs": diffs[:max_diffs_per_run],
                    "diff_count": len(diffs),
                })
        verdict = PointVerdict(label=point.label(), key=point.key(),
                               clean=not divergences,
                               divergences=divergences)
        if hb == "always" or (hb == "on-divergence" and divergences):
            tracer = trace_point(replace(point, tiebreak_seed=None))
            conflicts = tracer.find_conflicts()
            verdict.conflicts = [c.to_dict(tracer) for c in conflicts]
            verdict.hb_truncated_groups = tracer.truncated_groups
        verdicts.append(verdict)
        if progress is not None:
            state = "clean" if verdict.clean else (
                f"DIVERGED in {len(divergences)}/{runs} schedules")
            progress(f"[races] {point.label()}: {state}")
    return verdicts


# ---------------------------------------------------------------------------
# scenario registry + CLI
# ---------------------------------------------------------------------------

def _scenario_factories() -> dict[str, Callable[..., list]]:
    from ..orchestrate.points import (faults_smoke_points,
                                      pap_smoke_points,
                                      pipeline_smoke_points,
                                      schedule_smoke_points, smoke_points,
                                      tenancy_smoke_points,
                                      topo_smoke_points)
    return {
        "fig7": smoke_points,
        "topo": topo_smoke_points,
        "faults": faults_smoke_points,
        "pipeline": pipeline_smoke_points,
        "tenancy": tenancy_smoke_points,
        "schedule": schedule_smoke_points,
        "pap": pap_smoke_points,
    }


def scenario_points(name: str, *, seed: int = 1,
                    iterations: Optional[int] = None) -> list:
    """The sweep points behind a named scenario (the CI smoke grids)."""
    factories = _scenario_factories()
    try:
        make = factories[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"known: {sorted(factories)}") from None
    kwargs: dict[str, Any] = {"seed": seed}
    if iterations is not None:
        kwargs["iterations"] = iterations
    return make(**kwargs)


def build_report(scenario: str, verdicts: list[PointVerdict], *,
                 runs: int, seed: int) -> dict:
    dirty = [v for v in verdicts if not v.clean]
    return {
        "schema": 1,
        "tool": "repro.analysis.races",
        "scenario": scenario,
        "runs_per_point": runs,
        "seed": seed,
        "points": len(verdicts),
        "diverged_points": len(dirty),
        "clean": not dirty,
        "verdicts": [v.to_dict() for v in verdicts],
    }


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.races",
        description="Schedule-perturbation determinism sanitizer: re-run a "
                    "scenario under shuffled same-time event orders and "
                    "fail on any bit-level divergence.")
    parser.add_argument("--scenario", action="append", default=None,
                        help="scenario to check (repeatable); default: all "
                             f"of {sorted(_scenario_factories())}")
    parser.add_argument("--runs", type=int, default=8,
                        help="perturbed schedules per point (default 8)")
    parser.add_argument("--seed", type=int, default=1,
                        help="base seed for the schedule permutations")
    parser.add_argument("--iterations", type=int, default=None,
                        help="override per-point benchmark iterations")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default serial)")
    parser.add_argument("--hb", choices=("never", "on-divergence", "always"),
                        default="on-divergence",
                        help="when to run the happens-before checker")
    parser.add_argument("--out", default=None,
                        help="write the JSON race report to this file")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-point progress lines")
    args = parser.parse_args(argv)
    if args.runs < 1:
        parser.error("--runs must be >= 1")

    scenarios = args.scenario or sorted(_scenario_factories())
    progress = None if args.quiet else (
        lambda msg: print(msg, file=sys.stderr))
    reports = []
    any_dirty = False
    for name in scenarios:
        try:
            points = scenario_points(name, seed=args.seed,
                                     iterations=args.iterations)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        verdicts = check_points(points, runs=args.runs, seed=args.seed,
                                jobs=args.jobs, hb=args.hb,
                                progress=progress)
        report = build_report(name, verdicts, runs=args.runs,
                              seed=args.seed)
        reports.append(report)
        any_dirty = any_dirty or not report["clean"]

    out_doc = reports[0] if len(reports) == 1 else {
        "schema": 1, "tool": "repro.analysis.races",
        "clean": not any_dirty, "scenarios": reports}
    text = json.dumps(out_doc, indent=2, sort_keys=True, default=str)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    print(text)
    for report in reports:
        for verdict in report["verdicts"]:
            if verdict["clean"]:
                continue
            print(f"SCHEDULE RACE: {verdict['label']} diverged in "
                  f"{len(verdict['divergences'])}/{report['runs_per_point']} "
                  f"perturbed schedules", file=sys.stderr)
            for conflict in verdict["conflicts"][:3]:
                loc = conflict["location"]
                print(f"  unordered same-time conflict on {loc} "
                      f"at t={conflict['time']:.3f}:", file=sys.stderr)
                for ev in conflict["events"]:
                    print(f"    [{ev['kind']}] {ev['note'] or ev['label']}",
                          file=sys.stderr)
                    for frame in ev["stack"]:
                        print(f"      {frame}", file=sys.stderr)
    return EXIT_DIVERGED if any_dirty else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
