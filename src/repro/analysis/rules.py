"""The pluggable simlint rule registry.

Each lint rule is a small class registered under a stable ID with a
:class:`RuleSpec` (summary, default severity, whether it only applies in
simulation-scoped packages).  The driver (:mod:`repro.analysis.simlint`)
does **one** shared AST walk per file and dispatches each node to the
rules subscribed to its type, so adding a rule never adds a pass.

Per-run configuration is a :class:`LintConfig`: rules can be disabled,
their severity overridden (``error`` gates CI, ``warning`` reports only),
and the sim-scope package set swapped — from the CLI
(``--disable/--severity/--select/--sim-scope``) or programmatically.

Rules see a ``ctx`` object (``LintContext`` in the driver) exposing the
shared per-file analyses: import alias resolution (``ctx.dotted``), the
cross-file generator-name set (``ctx.gen_call_name``), set-typed value
inference (``ctx.is_unordered_iter``), callback-name inference
(``ctx.callback_functions``), the enclosing loop/function stacks, and
``ctx.emit(rule_id, node, message)``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Any, ClassVar, Iterable, Optional, Sequence

ERROR = "error"
WARNING = "warning"
SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True)
class RuleSpec:
    """Identity and default policy of one rule."""

    id: str
    summary: str
    severity: str = ERROR
    #: Rule only fires in files under the configured sim-scope packages.
    sim_scope_only: bool = False
    #: Disabled rules still register (visible in --list-rules) but never
    #: run unless explicitly enabled.
    default_enabled: bool = True


@dataclass(frozen=True)
class RuleOverride:
    """Per-rule configuration overrides (None = keep the spec default)."""

    enabled: Optional[bool] = None
    severity: Optional[str] = None


class LintConfig:
    """Resolved per-run rule configuration."""

    def __init__(self, *, select: Optional[Iterable[str]] = None,
                 overrides: Optional[dict[str, RuleOverride]] = None):
        self.select = frozenset(select) if select is not None else None
        self.overrides = dict(overrides or {})

    def enabled(self, spec: RuleSpec) -> bool:
        if self.select is not None:
            return spec.id in self.select
        override = self.overrides.get(spec.id)
        if override is not None and override.enabled is not None:
            return override.enabled
        return spec.default_enabled

    def severity(self, spec: RuleSpec) -> str:
        override = self.overrides.get(spec.id)
        if override is not None and override.severity is not None:
            return override.severity
        return spec.severity


class Rule:
    """Base class: subclass, set ``spec`` and ``node_types``, implement
    :meth:`check`.  One instance is created per linted file, so instances
    may keep per-file state (seeded in :meth:`begin_file`)."""

    spec: ClassVar[RuleSpec]
    #: AST node classes this rule wants dispatched to :meth:`check`.
    node_types: ClassVar[tuple[type, ...]] = ()

    def begin_file(self, ctx: Any, tree: ast.AST) -> None:
        """Optional per-file pre-pass (runs before the shared walk)."""

    def check(self, ctx: Any, node: ast.AST) -> None:
        raise NotImplementedError


#: All registered rules by ID (import order == registration order; the
#: driver instantiates every enabled one per file).
REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    if cls.spec.id in REGISTRY:
        raise ValueError(f"duplicate rule id {cls.spec.id}")
    REGISTRY[cls.spec.id] = cls
    return cls


def rule_table() -> dict[str, str]:
    """``{rule_id: summary}`` for every registered rule plus SIM000 (the
    driver-emitted parse failure, which has no Rule class)."""
    table = {"SIM000": "syntax error (file does not parse)"}
    table.update({rid: cls.spec.summary for rid, cls in REGISTRY.items()})
    return table


# ---------------------------------------------------------------------------
# shared tables and helpers
# ---------------------------------------------------------------------------

#: SIM008: stdlib modules whose *import* already signals nondeterminism in
#: simulation-scoped code (calls through them are caught by SIM002; the
#: import-level rule catches aliasing tricks and dead imports alike).
SIM008_MODULES = frozenset({"random", "time"})

#: SIM007: network primitives whose construction belongs to the pluggable
#: topology layer, and the packages allowed to build them directly.
SIM007_CLASSES = frozenset({"CrossbarSwitch", "Link"})
SIM007_ALLOWED_PREFIXES = ("repro/network/", "repro/topo/")

#: SIM013: the shared-fabric primitives a *job* must never build for
#: itself — under multi-tenancy every job receives host slots on the one
#: cluster the scheduler owns (see DESIGN.md §14), so constructing a
#: fabric/topology/cluster in job-level code forks the simulated world.
#: Allowed: the tenancy/orchestration service layers that own the shared
#: cluster, the legacy single-job entry point (``repro.runtime``), the
#: layers that implement the primitives themselves, and tests.
SIM013_CLASSES = frozenset({
    "Fabric", "Cluster", "Topology", "CrossbarTopology",
    "FatTreeTopology", "TorusTopology", "make_topology"})
#: (Paths are normalized to start at the last ``repro`` component; test
#: files reduce to their basename — hence the ``test_``/``conftest``
#: entries.)
SIM013_ALLOWED_PREFIXES = (
    "repro/tenancy/", "repro/orchestrate/", "repro/runtime/",
    "repro/cluster/", "repro/network/", "repro/topo/",
    "test_", "conftest")

#: SIM009: segmented-pipeline primitives whose construction belongs to
#: the segment planner / AB engine, and the packages allowed to build
#: them directly.
SIM009_CLASSES = frozenset({"Segment", "Segmenter", "ReduceDescriptor"})
SIM009_ALLOWED_PREFIXES = ("repro/pipeline/", "repro/core/")

#: SIM014: the primitives that spell out a collective's send/recv
#: ordering by hand — posting NIC descriptors (``start_send``) or
#: framing AB protocol headers (``AbHeader``).  Since repro.schedule,
#: collective orderings are data: lower to a Schedule (or call the
#: engine/MPI APIs) instead of hand-constructing the wire order, so the
#: validator can prove the ordering deadlock-free and the interpreter
#: stays the single execution path.  Allowed: the layers that implement
#: collectives (schedule/core/mpich/pipeline) and tests.
SIM014_CALLS = frozenset({"start_send"})
SIM014_CLASSES = frozenset({"AbHeader"})
SIM014_ALLOWED_PREFIXES = (
    "repro/schedule/", "repro/core/", "repro/mpich/", "repro/pipeline/",
    "test_", "conftest")

#: SIM015: ad-hoc pre-collective delay injection.  Freezing a host CPU
#: (``cpu.freeze``) to fake a late arrival bypasses the workload layer —
#: the delay never lands in the arrival trace, so the PAP oracle,
#: imbalance metrics (spread/kappa) and the disarmed-neutrality guarantee
#: all silently lie.  Arrival patterns belong in ``WorkloadParams`` /
#: ``repro.workload``.  Allowed: the workload layer itself, the fault
#: injectors (rank pause/crash are faults, not arrivals), the sim layer
#: that implements the primitive, and tests.
SIM015_CALLS = frozenset({"freeze"})
SIM015_ALLOWED_PREFIXES = (
    "repro/workload/", "repro/faults/", "repro/sim/",
    "test_", "conftest")

#: Fully-qualified callables that read the host wall clock or ambient
#: process state.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "time.process_time_ns", "time.clock",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
})

#: Any call resolving under these prefixes is ambient randomness.
NONDET_PREFIXES = ("random.", "numpy.random.", "secrets.")

#: Receiver-hint fallback for generator-method names that are ambiguous
#: across the codebase: (last attribute of the receiver, method name).
RECEIVER_GEN_CALLS = frozenset({
    ("mpi", "send"), ("mpi", "wait"), ("mpi", "test"),
    ("rank", "send"), ("rank", "wait"),
    ("progress", "wait"), ("progress", "wait_all"),
    ("split", "wait"),
})

#: Attribute/variable names that denote simulation timestamps (SIM003).
TIME_NAME = re.compile(r"^(now|deadline)$|(_at|_time)$")

#: Methods that schedule a simulation event (SIM011/SIM012's notion of a
#: callback registration point): ``Simulator.schedule/at`` and
#: ``EventQueue.push``.
SCHEDULE_METHODS = frozenset({"schedule", "at", "push"})

#: Attribute names that are integer bookkeeping, not result state — no
#: SIM012 float-accumulation concern.
COUNTER_NAME = re.compile(
    r"(count|counter|seq|len$|idx|index|events|ops|inserted|consumed|"
    r"enqueued|dequeued|charges|retries|attempts|signals|pending|spawned|"
    r"processed|cancelled|bytes|packets|tokens|stalls|_n$)")


def is_generator_def(fn: ast.AST) -> bool:
    """True if ``fn`` (FunctionDef) contains a yield at its own scope."""
    todo = list(getattr(fn, "body", []))
    while todo:
        node = todo.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        todo.extend(ast.iter_child_nodes(node))
    return False


def callee_name(func: ast.AST) -> Optional[str]:
    """The terminal name of a call target (``Name`` or last ``Attribute``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def is_set_expr(node: ast.AST) -> bool:
    """Syntactically set-typed: set literal/comprehension or a bare
    ``set(...)``/``frozenset(...)`` call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = callee_name(node.func)
        return name in ("set", "frozenset") and not isinstance(
            node.func, ast.Attribute)
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        # set algebra propagates set-ness from either operand
        return is_set_expr(node.left) or is_set_expr(node.right)
    return False


# ---------------------------------------------------------------------------
# the rules
# ---------------------------------------------------------------------------

@register
class DroppedSimGen(Rule):
    """A generator-process call whose generator object is discarded (or
    yielded raw) silently skips the simulated operation."""

    spec = RuleSpec(
        "SIM001",
        "generator-process call without `yield from` (dropped SimGen)")
    node_types = (ast.Expr, ast.Yield)

    def check(self, ctx: Any, node: ast.AST) -> None:
        value = node.value
        if not isinstance(value, ast.Call):
            return
        name = ctx.gen_call_name(value)
        if name is None:
            return
        if isinstance(node, ast.Expr):
            ctx.emit("SIM001", node,
                     f"result of generator process `{name}(...)` is "
                     f"discarded — drive it with `yield from`")
        else:
            ctx.emit("SIM001", node,
                     f"`yield {name}(...)` hands the driver a raw "
                     f"generator — use `yield from`")


@register
class WallClock(Rule):
    spec = RuleSpec(
        "SIM002",
        "wall-clock/ambient randomness in simulation-critical code",
        sim_scope_only=True)
    node_types = (ast.Call,)

    def check(self, ctx: Any, node: ast.Call) -> None:
        dotted = ctx.dotted(node.func)
        if dotted is None:
            return
        if dotted in WALL_CLOCK_CALLS:
            ctx.emit("SIM002", node,
                     f"`{dotted}()` reads the host clock — simulation "
                     f"code must use `Simulator.now`")
        elif dotted.startswith(NONDET_PREFIXES):
            ctx.emit("SIM002", node,
                     f"`{dotted}()` is ambient randomness — use a named "
                     f"`RngStreams` stream")


@register
class TimestampEquality(Rule):
    spec = RuleSpec(
        "SIM003", "float equality comparison on simulation timestamps")
    node_types = (ast.Compare,)

    @staticmethod
    def _is_time_expr(node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute):
            return bool(TIME_NAME.search(node.attr))
        if isinstance(node, ast.Name):
            return bool(TIME_NAME.search(node.id))
        return False

    def check(self, ctx: Any, node: ast.Compare) -> None:
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                sides = (left, right)
                if any(self._is_time_expr(s) for s in sides) and not any(
                        isinstance(s, ast.Constant) and s.value is None
                        for s in sides):
                    ctx.emit("SIM003", node,
                             "float equality on a simulation timestamp — "
                             "compare with an ordering or a tolerance")
            left = right


@register
class UnconsumedLedger(Rule):
    spec = RuleSpec("SIM004", "Ledger charged but never consumed")
    node_types = (ast.FunctionDef,)

    def check(self, ctx: Any, fn: ast.FunctionDef) -> None:
        if not is_generator_def(fn):
            return
        assigns: dict[str, ast.AST] = {}
        charge_receivers: set[int] = set()
        charged: set[str] = set()
        nodes = [n for n in ast.walk(fn)]
        for node in nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = node.value
                if (isinstance(target, ast.Name)
                        and isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id == "Ledger"):
                    assigns[target.id] = node
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "charge"
                    and isinstance(node.func.value, ast.Name)):
                charged.add(node.func.value.id)
                charge_receivers.add(id(node.func.value))
        if not assigns:
            return
        consumed: set[str] = set()
        for node in nodes:
            if (isinstance(node, ast.Name) and node.id in assigns
                    and isinstance(node.ctx, ast.Load)
                    and id(node) not in charge_receivers):
                consumed.add(node.id)
        for name, site in assigns.items():
            if name in charged and name not in consumed:
                ctx.emit("SIM004", site,
                         f"Ledger `{name}` accumulates charges that are "
                         f"never consumed — the simulated CPU time is "
                         f"lost (yield `Busy.from_ledger({name})`)")


@register
class MutableDefault(Rule):
    spec = RuleSpec("SIM005", "mutable default argument")
    node_types = (ast.FunctionDef,)

    def check(self, ctx: Any, node: ast.FunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if (isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set")
                    and not default.args and not default.keywords):
                mutable = True
            if mutable:
                ctx.emit("SIM005", default,
                         f"mutable default argument in `{node.name}` is "
                         f"shared across calls — default to None")


@register
class LoopVariableCapture(Rule):
    spec = RuleSpec(
        "SIM006", "late-binding loop-variable capture in callback")
    node_types = (ast.FunctionDef, ast.Lambda)

    def check(self, ctx: Any, node: ast.AST) -> None:
        if not ctx.loop_targets:
            return
        args = node.args
        body = node.body if isinstance(node, ast.FunctionDef) else [node.body]
        params = {a.arg for a in (args.posonlyargs + args.args
                                  + args.kwonlyargs)}
        if args.vararg:
            params.add(args.vararg.arg)
        if args.kwarg:
            params.add(args.kwarg.arg)
        active = set().union(*ctx.loop_targets)
        free: set[str] = set()
        todo = list(body)
        while todo:
            child = todo.pop()
            # Default expressions of nested lambdas evaluate eagerly, so
            # they bind the loop variable correctly — skip them.
            if isinstance(child, ast.Lambda):
                todo.extend(d for d in child.args.defaults)
                continue
            if isinstance(child, ast.Name) and isinstance(child.ctx,
                                                          ast.Load):
                free.add(child.id)
            todo.extend(ast.iter_child_nodes(child))
        captured = sorted((free & active) - params)
        if captured:
            ctx.emit("SIM006", node,
                     f"callback captures loop variable(s) "
                     f"{', '.join(captured)} by reference — late binding "
                     f"will see the final value; bind via a default "
                     f"argument (`lambda _v={captured[0]}: ...`)")


@register
class DirectNetworkCtor(Rule):
    spec = RuleSpec(
        "SIM007",
        "direct switch/link construction outside topo/network factories")
    node_types = (ast.Call,)

    def check(self, ctx: Any, node: ast.Call) -> None:
        if ctx.path.startswith(SIM007_ALLOWED_PREFIXES):
            return
        name = callee_name(node.func)
        if name not in SIM007_CLASSES:
            return
        # Only flag the repro network primitives: a same-named class from
        # an unrelated module resolves to a dotted path without any
        # network/topo component.
        dotted = ctx.dotted(node.func) or name
        if dotted != name and not any(
                part in ("network", "topo", "switch", "link")
                for part in dotted.split(".")):
            return
        ctx.emit("SIM007", node,
                 f"direct `{name}(...)` construction bypasses the "
                 f"pluggable topology layer — configure "
                 f"`NetParams.topology` / use `repro.topo.make_topology`")


@register
class NondetImport(Rule):
    spec = RuleSpec(
        "SIM008",
        "direct random/time stdlib import in simulation-scoped code",
        sim_scope_only=True)
    node_types = (ast.Import, ast.ImportFrom)

    def check(self, ctx: Any, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in SIM008_MODULES:
                    ctx.emit("SIM008", node,
                             f"`import {alias.name}` in simulation-scoped "
                             f"code — use `RngStreams` named streams / "
                             f"`Simulator.now` so runs stay deterministic")
        elif (node.module and node.level == 0
                and node.module.split(".")[0] in SIM008_MODULES):
            ctx.emit("SIM008", node,
                     f"`from {node.module} import ...` in "
                     f"simulation-scoped code — use `RngStreams` "
                     f"named streams / `Simulator.now` so runs stay "
                     f"deterministic")


@register
class DirectSegmentCtor(Rule):
    spec = RuleSpec(
        "SIM009",
        "segment/descriptor construction or hard-coded segment size "
        "outside pipeline/core")
    node_types = (ast.Call,)

    def check(self, ctx: Any, node: ast.Call) -> None:
        if ctx.path.startswith(SIM009_ALLOWED_PREFIXES):
            return
        name = callee_name(node.func)
        if name is None:
            return
        if name in SIM009_CLASSES:
            # Only flag the repro pipeline/engine primitives: a same-named
            # class from an unrelated module resolves to a dotted path
            # without any pipeline/core component.
            dotted = ctx.dotted(node.func) or name
            if dotted != name and not any(
                    part in ("pipeline", "segmenter", "descriptor", "core")
                    for part in dotted.split(".")):
                return
            ctx.emit("SIM009", node,
                     f"direct `{name}(...)` construction outside "
                     f"repro.pipeline/repro.core — every rank must derive "
                     f"the identical segment plan from `PipelineParams` "
                     f"(use `plan_segments` / the engine API)")
            return
        # Literal nonzero segment sizes are only the config front door's
        # business: PipelineParams(segment_size_bytes=...) is the one
        # sanctioned spelling.
        if name == "PipelineParams":
            return
        for kw in node.keywords:
            if (kw.arg == "segment_size_bytes"
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, int)
                    and kw.value.value != 0):
                ctx.emit("SIM009", kw.value,
                         f"hard-coded `segment_size_bytes={kw.value.value}`"
                         f" outside a `PipelineParams(...)` call — segment "
                         f"sizing flows through the config block so every "
                         f"rank plans identically")


@register
class JobLevelFabricCtor(Rule):
    """Jobs must receive the shared fabric from the scheduler — a
    ``Fabric``/``Cluster``/``Topology`` built inside job-level code is a
    private world whose contention, routes, and invariants the tenancy
    layer can't see."""

    spec = RuleSpec(
        "SIM013",
        "fabric/cluster/topology construction in job-level code "
        "(jobs receive the shared fabric from the scheduler)")
    node_types = (ast.Call,)

    def check(self, ctx: Any, node: ast.Call) -> None:
        if ctx.path.startswith(SIM013_ALLOWED_PREFIXES):
            return
        name = callee_name(node.func)
        if name not in SIM013_CLASSES:
            return
        # Only flag the repro fabric primitives: a same-named class from
        # an unrelated module resolves to a dotted path without any
        # cluster/network/topo component.
        dotted = ctx.dotted(node.func) or name
        if dotted != name and not any(
                part in ("cluster", "network", "topo", "fabric", "runtime")
                for part in dotted.split(".")):
            return
        ctx.emit("SIM013", node,
                 f"direct `{name}(...)` construction in job-level code — "
                 f"jobs must receive host slots on the shared fabric from "
                 f"the tenancy scheduler (declare a `ClusterSpec` and "
                 f"submit `JobSpec`s, or use `repro.runtime.run_program`)")


@register
class HandRolledCollectiveOrder(Rule):
    """A send/recv ordering spelled out by hand — NIC descriptor posts or
    AB header framing outside the collective layers — bypasses the
    schedule IR's validator (matched sends, deadlock-freedom) and forks
    the execution path the interpreter keeps bit-identical."""

    spec = RuleSpec(
        "SIM014",
        "hand-constructed collective send/recv ordering outside "
        "repro.schedule/repro.core (lower to a Schedule instead)")
    node_types = (ast.Call,)

    def check(self, ctx: Any, node: ast.Call) -> None:
        if ctx.path.startswith(SIM014_ALLOWED_PREFIXES):
            return
        name = callee_name(node.func)
        if name in SIM014_CALLS and isinstance(node.func, ast.Attribute):
            ctx.emit("SIM014", node,
                     f"direct `{name}(...)` descriptor post outside the "
                     f"collective layers — lower the ordering to a "
                     f"`repro.schedule` Schedule (validated, "
                     f"interpreter-executed) or go through the engine/MPI "
                     f"APIs")
            return
        if name in SIM014_CLASSES:
            # Only flag the repro protocol header: a same-named class from
            # an unrelated module resolves to a dotted path without any
            # mpich/message component.
            dotted = ctx.dotted(node.func) or name
            if dotted != name and not any(
                    part in ("mpich", "message")
                    for part in dotted.split(".")):
                return
            ctx.emit("SIM014", node,
                     f"hand-framed `{name}(...)` outside the collective "
                     f"layers — AB wire framing belongs to the engine; "
                     f"express the collective as a `repro.schedule` "
                     f"Schedule and let the interpreter execute it")


@register
class AdHocArrivalDelay(Rule):
    """A pre-collective delay injected by hand — freezing a host CPU
    outside the workload/fault layers — invents an arrival pattern the
    workload trace never records, so the PAP arrival oracle, the
    spread/kappa metrics in BENCH json, and the disarmed-neutrality
    regression all drift from what actually ran."""

    spec = RuleSpec(
        "SIM015",
        "ad-hoc pre-collective delay injection outside repro.workload "
        "(arm WorkloadParams / use an arrival pattern instead)")
    node_types = (ast.Call,)

    def check(self, ctx: Any, node: ast.Call) -> None:
        if ctx.path.startswith(SIM015_ALLOWED_PREFIXES):
            return
        if not isinstance(node.func, ast.Attribute):
            return
        name = callee_name(node.func)
        if name not in SIM015_CALLS:
            return
        ctx.emit("SIM015", node,
                 f"direct `{name}(...)` delay injection outside the "
                 f"workload layer — model late arrivals with an armed "
                 f"`WorkloadParams` arrival pattern (repro.workload) so "
                 f"the delay lands in the trace the PAP oracle and "
                 f"imbalance metrics read")


# ---------------------------------------------------------------------------
# the determinism dataflow rules (SIM010–SIM012)
# ---------------------------------------------------------------------------

@register
class UnorderedIteration(Rule):
    """Iterating a set (or set-typed name) in simulation-scoped code
    makes the visit order an accident of hash seeding and insertion
    history — rank-keyed state must be walked in a defined order."""

    spec = RuleSpec(
        "SIM010",
        "iteration over an unordered set of simulation state "
        "(wrap in sorted())",
        sim_scope_only=True)
    #: For-loops always; comprehensions only when the sink is *ordered*
    #: (a list) — iterating a set into another set/dict-key space cannot
    #: leak the accidental order.
    node_types = (ast.For, ast.ListComp)

    def check(self, ctx: Any, node: ast.AST) -> None:
        iters = ([node.iter] if isinstance(node, ast.For)
                 else [gen.iter for gen in node.generators])
        for it in iters:
            reason = ctx.unordered_reason(it)
            if reason is None:
                continue
            ctx.emit("SIM010", it,
                     f"iteration over {reason} — set order is unspecified, "
                     f"so downstream effects depend on hash/insertion "
                     f"accidents; iterate `sorted(...)` (or a list) instead")


@register
class UnorderedScheduling(Rule):
    """Scheduling simulation events from inside a loop over an unordered
    container bakes the container's accidental order into same-time event
    seq numbers — exactly the tiebreak dependence the perturbation
    harness exists to catch."""

    spec = RuleSpec(
        "SIM011",
        "event scheduled from a loop over an unordered container "
        "(same-time order leaks from set iteration)",
        sim_scope_only=True)
    node_types = (ast.Call,)

    def check(self, ctx: Any, node: ast.Call) -> None:
        if not ctx.unordered_loop_stack:
            return
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in SCHEDULE_METHODS:
            return
        reason = ctx.unordered_loop_stack[-1]
        ctx.emit("SIM011", node,
                 f"`{node.func.attr}(...)` inside a loop over {reason} — "
                 f"the same-time event order inherits the set's accidental "
                 f"iteration order; iterate `sorted(...)` so every run "
                 f"schedules identically")


@register
class SharedFloatAccumulation(Rule):
    """``obj.attr += value`` in an event callback reassociates float
    arithmetic across whatever order same-time callbacks happen to fire
    in; unless the values are exact, results differ under a reshuffled
    schedule.  Heuristic (callback = ``on_*``/``_on_*`` or a function
    passed to ``schedule``/``at``/``push``), so it reports as a warning
    by default."""

    spec = RuleSpec(
        "SIM012",
        "float accumulation into shared state from an event callback "
        "(order-sensitive under same-time reordering)",
        severity=WARNING, sim_scope_only=True)
    node_types = (ast.AugAssign,)

    _ACC_OPS = (ast.Add, ast.Mult, ast.Sub)

    def check(self, ctx: Any, node: ast.AugAssign) -> None:
        if not isinstance(node.target, ast.Attribute):
            return
        if not isinstance(node.op, self._ACC_OPS):
            return
        fn = ctx.current_function()
        if fn is None or fn.name not in ctx.callback_functions:
            return
        attr = node.target.attr
        if COUNTER_NAME.search(attr) or TIME_NAME.search(attr):
            # Integer bookkeeping and clock advancement are not result
            # folds — SIM012 is about accumulating *contributions*.
            return
        value = node.value
        if isinstance(value, ast.Constant) and isinstance(value.value, int):
            return
        if isinstance(value, ast.Constant) and value.value is True:
            return
        ctx.emit("SIM012", node,
                 f"`{attr} {type(node.op).__name__.lower()}=` accumulates "
                 f"into shared state from callback `{fn.name}` — same-time "
                 f"callbacks fire in tiebreak order, so float accumulation "
                 f"here is schedule-sensitive; fold via a deterministic "
                 f"reduction (sorted inputs / exact dtype) instead")
