"""simlint — an AST linter for the hazards this codebase actually has.

The simulation's correctness rests on conventions ``pytest`` cannot see:

* every generator-process operation must be driven with ``yield from`` —
  a dropped ``yield from mpi.barrier()`` silently creates a generator
  object, discards it, and the rank simply *skips* the barrier;
* all time and randomness must flow through the virtual clock
  (``Simulator.now``) and the named streams of
  :class:`~repro.sim.random.RngStreams` — one stray ``time.time()`` makes
  runs non-reproducible;
* CPU costs tallied on a :class:`~repro.sim.cpu.Ledger` must eventually be
  yielded as ``Busy`` time or handed to a consumer, or the simulated work
  becomes free;
* nothing may depend on the *order* of same-time events or of unordered
  containers — that is a schedule race, the dynamic side of which is
  checked by :mod:`repro.analysis.races`.

Rules (stable IDs; suppress per line with ``# simlint: ignore[SIM001]``):

========  ==============================================================
SIM000    file does not parse (syntax error)
SIM001    generator-process call result discarded / yielded without
          ``from`` (dropped SimGen)
SIM002    wall-clock time or ambient randomness in simulation-critical
          code (use ``Simulator.now`` / ``RngStreams``)
SIM003    float equality comparison on simulation timestamps
SIM004    ``Ledger`` charged but never consumed (missing
          ``yield Busy.from_ledger(...)`` or hand-off)
SIM005    mutable default argument
SIM006    late-binding capture of a loop variable in a callback
SIM007    direct ``CrossbarSwitch``/``Link`` construction outside the
          ``repro.topo``/``repro.network`` factories
SIM008    direct ``random``/``time`` stdlib import in simulation-scoped
          code
SIM009    segment/descriptor object construction or hard-coded segment
          sizes outside ``repro.pipeline``/``repro.core``
SIM010    iteration over an unordered set of simulation state — visit
          order is a hash/insertion accident; iterate ``sorted(...)``
SIM011    event scheduled from inside a loop over an unordered container
          — same-time event order leaks from set iteration
SIM012    float accumulation into shared state from an event callback
          (warning) — order-sensitive under same-time reordering
========  ==============================================================

Architecture: each rule is a class registered in
:mod:`repro.analysis.rules` with a :class:`~repro.analysis.rules.RuleSpec`
(summary, default severity, sim-scope-only flag).  This module owns the
*driver*: file discovery, the cross-file generator-name pass, the shared
per-file AST walk that dispatches nodes to subscribed rules, suppression
pragmas, and dedup/sort of findings.  Per-run policy (enable/disable,
severity overrides, rule selection) is a
:class:`~repro.analysis.rules.LintConfig`.

Detection of dropped SimGens is *two-pass*: pass 1 collects every function
or method defined in the linted file set and records whether it is a
generator; a name is treated as generator-process API only when **all**
definitions of that name are generators (ambiguous names such as ``wait`` —
a generator on ``ProgressEngine`` but a plain method on ``Notifier`` — fall
back to the receiver-hint table in :mod:`repro.analysis.rules`).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Optional

from .findings import Finding, normalize_path
from .rules import (REGISTRY, RECEIVER_GEN_CALLS, LintConfig, Rule,
                    RuleOverride, callee_name, is_generator_def, is_set_expr,
                    rule_table)

#: Rule-ID -> summary table (backwards-compatible face of the registry).
RULES: dict[str, str] = rule_table()

#: repro sub-packages in which the determinism rules (SIM002/008/010/011/
#: 012) apply.  Everything that executes *inside* the simulated world is
#: here; report/bench/experiments drivers run outside it and may
#: legitimately look at the host clock.
SIM_SCOPED_PACKAGES = frozenset({
    "sim", "mpich", "gm", "network", "core", "cluster", "apps", "runtime",
    "topo", "faults",
})

#: Type annotations that mark a name as set-typed for SIM010/SIM011.
_SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet",
                              "AbstractSet", "MutableSet"})

_IGNORE_PRAGMA = re.compile(
    r"#\s*simlint:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?")


def collect_generator_names(trees: Iterable[ast.AST]) -> frozenset[str]:
    """Names for which *every* definition in the file set is a generator."""
    kinds: dict[str, set[bool]] = {}
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef):
                kinds.setdefault(node.name, set()).add(
                    is_generator_def(node))
    return frozenset(name for name, seen in kinds.items()
                     if seen == {True})


class LintContext:
    """Everything a rule may ask about the file under analysis: location,
    shared dataflow facts, traversal state, and the ``emit`` sink."""

    def __init__(self, norm_path: str, source: str, tree: ast.AST,
                 gen_names: frozenset[str], sim_scoped: bool,
                 config: LintConfig):
        self.path = norm_path
        self.lines = source.splitlines()
        self.gen_names = gen_names
        self.sim_scoped = sim_scoped
        self.config = config
        self.findings: list[Finding] = []
        # traversal state, maintained by _Walker
        self.imports: dict[str, str] = {}       # alias -> module path
        self.from_imports: dict[str, str] = {}  # name -> fully dotted
        self.loop_targets: list[set[str]] = []
        #: For each enclosing loop over an unordered container, the
        #: human-readable reason string (innermost last).
        self.unordered_loop_stack: list[str] = []
        self.function_stack: list[ast.FunctionDef] = []
        # per-file dataflow pre-passes (shared by SIM010/011/012)
        self._set_names: set[str] = set()
        self._set_attrs: set[str] = set()
        self.callback_functions: set[str] = set()
        self._prescan(tree)

    # -- pre-pass ------------------------------------------------------
    def _prescan(self, tree: ast.AST) -> None:
        """Collect set-typed names and callback-registered functions."""
        from .rules import SCHEDULE_METHODS
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                if is_set_expr(node.value):
                    for target in node.targets:
                        self._mark_set_target(target)
            elif isinstance(node, ast.AnnAssign):
                if ((node.value is not None and is_set_expr(node.value))
                        or self._is_set_annotation(node.annotation)):
                    self._mark_set_target(node.target)
            elif isinstance(node, ast.FunctionDef):
                if node.name.startswith(("on_", "_on_")):
                    self.callback_functions.add(node.name)
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in SCHEDULE_METHODS):
                for arg in node.args:
                    if isinstance(arg, ast.Attribute):
                        self.callback_functions.add(arg.attr)
                    elif isinstance(arg, ast.Name):
                        self.callback_functions.add(arg.id)

    def _mark_set_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self._set_names.add(target.id)
        elif (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            self._set_attrs.add(target.attr)

    @staticmethod
    def _is_set_annotation(ann: Optional[ast.AST]) -> bool:
        if isinstance(ann, ast.Subscript):
            ann = ann.value
        if isinstance(ann, ast.Name):
            return ann.id in _SET_ANNOTATIONS
        if isinstance(ann, ast.Attribute):
            return ann.attr in _SET_ANNOTATIONS
        return False

    # -- shared helpers ------------------------------------------------
    def emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        spec = REGISTRY[rule_id].spec
        if not self.config.enabled(spec):
            return
        if spec.sim_scope_only and not self.sim_scoped:
            return
        line = getattr(node, "lineno", 1)
        text = self.lines[line - 1] if 0 < line <= len(self.lines) else ""
        self.findings.append(Finding(
            rule=rule_id, path=self.path, line=line,
            col=getattr(node, "col_offset", 0) + 1,
            message=message, line_text=text,
            severity=self.config.severity(spec)))

    def dotted(self, node: ast.AST) -> Optional[str]:
        """Resolve a call target to a dotted module path via imports."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        if base in self.imports:
            parts.append(self.imports[base])
        elif base in self.from_imports:
            parts.append(self.from_imports[base])
        else:
            parts.append(base)
        return ".".join(reversed(parts))

    def gen_call_name(self, call: ast.Call) -> Optional[str]:
        """Human-readable name if ``call`` targets a generator process."""
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self.gen_names:
                return func.id
            return None
        if isinstance(func, ast.Attribute):
            if func.attr in self.gen_names:
                return func.attr
            receiver = func.value
            hint = None
            if isinstance(receiver, ast.Name):
                hint = receiver.id
            elif isinstance(receiver, ast.Attribute):
                hint = receiver.attr
            if hint is not None and (hint, func.attr) in RECEIVER_GEN_CALLS:
                return f"{hint}.{func.attr}"
        return None

    def current_function(self) -> Optional[ast.FunctionDef]:
        return self.function_stack[-1] if self.function_stack else None

    def unordered_reason(self, it: ast.AST) -> Optional[str]:
        """Why iterating ``it`` has unspecified order, or None if it is
        fine (ordered, or defensively wrapped in ``sorted``)."""
        if isinstance(it, ast.Call):
            name = callee_name(it.func)
            if name in ("sorted", "list", "tuple", "enumerate", "reversed",
                        "range", "zip"):
                return None
        if is_set_expr(it):
            return "a set expression"
        if isinstance(it, ast.Name) and it.id in self._set_names:
            return f"set `{it.id}`"
        if (isinstance(it, ast.Attribute)
                and isinstance(it.value, ast.Name)
                and it.value.id == "self"
                and it.attr in self._set_attrs):
            return f"set `self.{it.attr}`"
        return None


class _Walker(ast.NodeVisitor):
    """The single shared AST walk: maintains traversal context and
    dispatches every node to the rules subscribed to its type."""

    def __init__(self, ctx: LintContext, rules: list[Rule]):
        self.ctx = ctx
        self._dispatch: dict[type, list[Rule]] = {}
        for rule in rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)

    def _check(self, node: ast.AST) -> None:
        for rule in self._dispatch.get(type(node), ()):
            rule.check(self.ctx, node)

    def visit(self, node: ast.AST) -> None:
        ctx = self.ctx
        if isinstance(node, ast.Import):
            for alias in node.names:
                ctx.imports[alias.asname or alias.name.split(".")[0]] = \
                    alias.name
            self._check(node)
            self.generic_visit(node)
        elif isinstance(node, ast.ImportFrom):
            if node.module:
                for alias in node.names:
                    ctx.from_imports[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"
            self._check(node)
            self.generic_visit(node)
        elif isinstance(node, ast.For):
            self._check(node)
            targets = {n.id for n in ast.walk(node.target)
                       if isinstance(n, ast.Name)}
            reason = ctx.unordered_reason(node.iter)
            ctx.loop_targets.append(targets)
            if reason is not None:
                ctx.unordered_loop_stack.append(reason)
            self.generic_visit(node)
            if reason is not None:
                ctx.unordered_loop_stack.pop()
            ctx.loop_targets.pop()
        elif isinstance(node, ast.FunctionDef):
            # Checked in the *enclosing* loop context (SIM006), then the
            # body gets a fresh one.
            self._check(node)
            ctx.function_stack.append(node)
            saved_loops, ctx.loop_targets = ctx.loop_targets, []
            saved_unordered, ctx.unordered_loop_stack = \
                ctx.unordered_loop_stack, []
            self.generic_visit(node)
            ctx.unordered_loop_stack = saved_unordered
            ctx.loop_targets = saved_loops
            ctx.function_stack.pop()
        else:
            self._check(node)
            self.generic_visit(node)


# ----------------------------------------------------------------------
# suppression pragmas
# ----------------------------------------------------------------------
def _suppressed_rules(line_text: str) -> Optional[frozenset[str]]:
    """Rules ignored on this line; empty frozenset means *all* rules."""
    match = _IGNORE_PRAGMA.search(line_text)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return frozenset()
    return frozenset(r.strip() for r in rules.split(",") if r.strip())


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
class Linter:
    """Two-pass linter over a set of files/directories."""

    def __init__(self, select: Optional[Iterable[str]] = None,
                 sim_scope: Optional[Iterable[str]] = None,
                 overrides: Optional[dict[str, RuleOverride]] = None):
        self.config = LintConfig(select=select, overrides=overrides)
        self.sim_scope = (frozenset(sim_scope) if sim_scope is not None
                          else SIM_SCOPED_PACKAGES)

    # ------------------------------------------------------------------
    @staticmethod
    def discover(paths: Iterable[Path | str]) -> list[Path]:
        files: list[Path] = []
        for path in paths:
            path = Path(path)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            else:
                files.append(path)
        # De-duplicate while keeping deterministic order.
        seen: set[Path] = set()
        unique = []
        for f in files:
            resolved = f.resolve()
            if resolved not in seen:
                seen.add(resolved)
                unique.append(f)
        return unique

    def _sim_scoped(self, norm_path: str) -> bool:
        parts = norm_path.split("/")
        return (len(parts) >= 3 and parts[0] == "repro"
                and parts[1] in self.sim_scope)

    def _active_rules(self, sim_scoped: bool) -> list[Rule]:
        rules = []
        for cls in REGISTRY.values():
            if not self.config.enabled(cls.spec):
                continue
            if cls.spec.sim_scope_only and not sim_scoped:
                continue
            rules.append(cls())
        return rules

    # ------------------------------------------------------------------
    def lint_paths(self, paths: Iterable[Path | str]) -> list[Finding]:
        files = self.discover(paths)
        sources: dict[Path, str] = {}
        trees: dict[Path, ast.AST] = {}
        findings: list[Finding] = []
        for file in files:
            try:
                source = file.read_text(encoding="utf-8")
            except OSError as exc:
                findings.append(Finding(
                    "SIM000", normalize_path(file), 1, 1,
                    f"cannot read file: {exc}"))
                continue
            sources[file] = source
            try:
                trees[file] = ast.parse(source, filename=str(file))
            except SyntaxError as exc:
                findings.append(Finding(
                    "SIM000", normalize_path(file), exc.lineno or 1,
                    (exc.offset or 0) + 1, f"syntax error: {exc.msg}"))

        gen_names = collect_generator_names(trees.values())

        for file, tree in trees.items():
            norm = normalize_path(file)
            sim_scoped = self._sim_scoped(norm)
            ctx = LintContext(norm, sources[file], tree, gen_names,
                              sim_scoped, self.config)
            rules = self._active_rules(sim_scoped)
            for rule in rules:
                rule.begin_file(ctx, tree)
            _Walker(ctx, rules).visit(tree)
            for finding in ctx.findings:
                ignored = _suppressed_rules(finding.line_text)
                if ignored is not None and (not ignored
                                            or finding.rule in ignored):
                    continue
                findings.append(finding)
        unique = {(f.path, f.line, f.col, f.rule, f.message): f
                  for f in findings}
        return sorted(unique.values(),
                      key=lambda f: (f.path, f.line, f.col, f.rule))


def lint_paths(paths: Iterable[Path | str], *,
               select: Optional[Iterable[str]] = None) -> list[Finding]:
    """Convenience wrapper: lint with default configuration."""
    return Linter(select=select).lint_paths(paths)
