"""simlint — an AST linter for the hazards this codebase actually has.

The simulation's correctness rests on conventions ``pytest`` cannot see:

* every generator-process operation must be driven with ``yield from`` —
  a dropped ``yield from mpi.barrier()`` silently creates a generator
  object, discards it, and the rank simply *skips* the barrier;
* all time and randomness must flow through the virtual clock
  (``Simulator.now``) and the named streams of
  :class:`~repro.sim.random.RngStreams` — one stray ``time.time()`` makes
  runs non-reproducible;
* CPU costs tallied on a :class:`~repro.sim.cpu.Ledger` must eventually be
  yielded as ``Busy`` time or handed to a consumer, or the simulated work
  becomes free.

Rules (stable IDs; suppress per line with ``# simlint: ignore[SIM001]``):

========  ==============================================================
SIM000    file does not parse (syntax error)
SIM001    generator-process call result discarded / yielded without
          ``from`` (dropped SimGen)
SIM002    wall-clock time or ambient randomness in simulation-critical
          code (use ``Simulator.now`` / ``RngStreams``)
SIM003    float equality comparison on simulation timestamps
SIM004    ``Ledger`` charged but never consumed (missing
          ``yield Busy.from_ledger(...)`` or hand-off)
SIM005    mutable default argument
SIM006    late-binding capture of a loop variable in a callback
SIM007    direct ``CrossbarSwitch``/``Link`` construction outside the
          ``repro.topo``/``repro.network`` factories (use
          ``NetParams.topology`` + ``repro.topo.make_topology``)
SIM008    direct ``random``/``time`` stdlib import in simulation-scoped
          code — fault schedules and recovery timers must stay
          deterministic and resumable, so randomness goes through
          ``RngStreams`` named streams and time through the sim clock
SIM009    segment/descriptor object construction or hard-coded segment
          sizes outside ``repro.pipeline``/``repro.core`` — the
          per-segment descriptor protocol only stays globally consistent
          when every rank derives the identical plan from
          ``PipelineParams``, so ad-hoc ``Segment``/``Segmenter``/
          ``ReduceDescriptor`` construction (and literal
          ``segment_size_bytes=`` outside a ``PipelineParams(...)``
          call) breaks the no-negotiation invariant
========  ==============================================================

Detection of dropped SimGens is *two-pass*: pass 1 collects every function
or method defined in the linted file set and records whether it is a
generator; a name is treated as generator-process API only when **all**
definitions of that name are generators (ambiguous names such as ``wait`` —
a generator on ``ProgressEngine`` but a plain method on ``Notifier`` — fall
back to the receiver-hint table below).  This keeps the rule in sync with
the codebase automatically as APIs grow.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .findings import Finding, normalize_path

RULES: dict[str, str] = {
    "SIM000": "syntax error (file does not parse)",
    "SIM001": "generator-process call without `yield from` (dropped SimGen)",
    "SIM002": "wall-clock/ambient randomness in simulation-critical code",
    "SIM003": "float equality comparison on simulation timestamps",
    "SIM004": "Ledger charged but never consumed",
    "SIM005": "mutable default argument",
    "SIM006": "late-binding loop-variable capture in callback",
    "SIM007": "direct switch/link construction outside topo/network factories",
    "SIM008": "direct random/time stdlib import in simulation-scoped code",
    "SIM009": "segment/descriptor construction or hard-coded segment size "
              "outside pipeline/core",
}

#: repro sub-packages in which SIM002 (determinism) applies.  Everything
#: that executes *inside* the simulated world is here; report/bench/
#: experiments drivers run outside it and may legitimately look at the
#: host clock.
SIM_SCOPED_PACKAGES = frozenset({
    "sim", "mpich", "gm", "network", "core", "cluster", "apps", "runtime",
    "topo", "faults",
})

#: SIM008: stdlib modules whose *import* already signals nondeterminism in
#: simulation-scoped code (calls through them are caught by SIM002; the
#: import-level rule catches aliasing tricks and dead imports alike).
_SIM008_MODULES = frozenset({"random", "time"})

#: SIM007: network primitives whose construction belongs to the pluggable
#: topology layer, and the packages allowed to build them directly.
_SIM007_CLASSES = frozenset({"CrossbarSwitch", "Link"})
_SIM007_ALLOWED_PREFIXES = ("repro/network/", "repro/topo/")

#: SIM009: segmented-pipeline primitives whose construction belongs to
#: the segment planner / AB engine, and the packages allowed to build
#: them directly.  ``segment_size_bytes=`` with a literal nonzero value
#: is likewise confined — outside these packages it may only appear as a
#: ``PipelineParams(...)`` keyword (the config front door).
_SIM009_CLASSES = frozenset({"Segment", "Segmenter", "ReduceDescriptor"})
_SIM009_ALLOWED_PREFIXES = ("repro/pipeline/", "repro/core/")

#: Fully-qualified callables that read the host wall clock or ambient
#: process state.
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "time.process_time_ns", "time.clock",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
})

#: Any call resolving under these prefixes is ambient randomness.
_NONDET_PREFIXES = ("random.", "numpy.random.", "secrets.")

#: Receiver-hint fallback for generator-method names that are ambiguous
#: across the codebase: (last attribute of the receiver, method name).
_RECEIVER_GEN_CALLS = frozenset({
    ("mpi", "send"), ("mpi", "wait"), ("mpi", "test"),
    ("rank", "send"), ("rank", "wait"),
    ("progress", "wait"), ("progress", "wait_all"),
    ("split", "wait"),
})

#: Attribute/variable names that denote simulation timestamps (SIM003).
_TIME_NAME = re.compile(r"^(now|deadline)$|(_at|_time)$")

_IGNORE_PRAGMA = re.compile(
    r"#\s*simlint:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?")


def _is_generator_def(fn: ast.AST) -> bool:
    """True if ``fn`` (FunctionDef) contains a yield at its own scope."""
    todo = list(getattr(fn, "body", []))
    while todo:
        node = todo.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        todo.extend(ast.iter_child_nodes(node))
    return False


def collect_generator_names(trees: Iterable[ast.AST]) -> frozenset[str]:
    """Names for which *every* definition in the file set is a generator."""
    kinds: dict[str, set[bool]] = {}
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef):
                kinds.setdefault(node.name, set()).add(
                    _is_generator_def(node))
    return frozenset(name for name, seen in kinds.items()
                     if seen == {True})


class _FileLinter(ast.NodeVisitor):
    """Second-pass per-file rule engine."""

    def __init__(self, norm_path: str, source: str, gen_names: frozenset[str],
                 sim_scoped: bool, select: Optional[frozenset[str]]):
        self.path = norm_path
        self.lines = source.splitlines()
        self.gen_names = gen_names
        self.sim_scoped = sim_scoped
        self.select = select
        self.findings: list[Finding] = []
        self._imports: dict[str, str] = {}       # alias -> module path
        self._from_imports: dict[str, str] = {}  # name -> fully dotted
        self._loop_targets: list[set[str]] = []

    # -- helpers -------------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if self.select is not None and rule not in self.select:
            return
        line = getattr(node, "lineno", 1)
        text = self.lines[line - 1] if 0 < line <= len(self.lines) else ""
        self.findings.append(Finding(
            rule=rule, path=self.path, line=line,
            col=getattr(node, "col_offset", 0) + 1,
            message=message, line_text=text))

    def _dotted(self, node: ast.AST) -> Optional[str]:
        """Resolve a call target to a dotted module path via imports."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        if base in self._imports:
            parts.append(self._imports[base])
        elif base in self._from_imports:
            parts.append(self._from_imports[base])
        else:
            parts.append(base)
        return ".".join(reversed(parts))

    def _gen_call_name(self, call: ast.Call) -> Optional[str]:
        """Human-readable name if ``call`` targets a generator process."""
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self.gen_names:
                return func.id
            return None
        if isinstance(func, ast.Attribute):
            if func.attr in self.gen_names:
                return func.attr
            receiver = func.value
            hint = None
            if isinstance(receiver, ast.Name):
                hint = receiver.id
            elif isinstance(receiver, ast.Attribute):
                hint = receiver.attr
            if hint is not None and (hint, func.attr) in _RECEIVER_GEN_CALLS:
                return f"{hint}.{func.attr}"
        return None

    @staticmethod
    def _is_time_expr(node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute):
            return bool(_TIME_NAME.search(node.attr))
        if isinstance(node, ast.Name):
            return bool(_TIME_NAME.search(node.id))
        return False

    # -- imports (alias tracking + SIM008) -----------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._imports[alias.asname or alias.name.split(".")[0]] = \
                alias.name
            if (self.sim_scoped
                    and alias.name.split(".")[0] in _SIM008_MODULES):
                self._emit("SIM008", node,
                           f"`import {alias.name}` in simulation-scoped "
                           f"code — use `RngStreams` named streams / "
                           f"`Simulator.now` so runs stay deterministic")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            for alias in node.names:
                self._from_imports[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
            if (self.sim_scoped and node.level == 0
                    and node.module.split(".")[0] in _SIM008_MODULES):
                self._emit("SIM008", node,
                           f"`from {node.module} import ...` in "
                           f"simulation-scoped code — use `RngStreams` "
                           f"named streams / `Simulator.now` so runs stay "
                           f"deterministic")
        self.generic_visit(node)

    # -- SIM001: dropped SimGen ---------------------------------------
    def visit_Expr(self, node: ast.Expr) -> None:
        if isinstance(node.value, ast.Call):
            name = self._gen_call_name(node.value)
            if name is not None:
                self._emit("SIM001", node,
                           f"result of generator process `{name}(...)` is "
                           f"discarded — drive it with `yield from`")
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        if isinstance(node.value, ast.Call):
            name = self._gen_call_name(node.value)
            if name is not None:
                self._emit("SIM001", node,
                           f"`yield {name}(...)` hands the driver a raw "
                           f"generator — use `yield from`")
        self.generic_visit(node)

    # -- SIM002: wall clock / ambient randomness ----------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self.sim_scoped:
            dotted = self._dotted(node.func)
            if dotted is not None:
                if dotted in _WALL_CLOCK_CALLS:
                    self._emit("SIM002", node,
                               f"`{dotted}()` reads the host clock — "
                               f"simulation code must use `Simulator.now`")
                elif dotted.startswith(_NONDET_PREFIXES):
                    self._emit("SIM002", node,
                               f"`{dotted}()` is ambient randomness — use "
                               f"a named `RngStreams` stream")
        self._check_direct_network_ctor(node)
        self._check_direct_segment_ctor(node)
        self.generic_visit(node)

    # -- SIM007: direct switch/link construction ----------------------
    def _check_direct_network_ctor(self, node: ast.Call) -> None:
        if self.path.startswith(_SIM007_ALLOWED_PREFIXES):
            return
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        else:
            return
        if name not in _SIM007_CLASSES:
            return
        # Only flag the repro network primitives: a same-named class from
        # an unrelated module resolves to a dotted path without any
        # network/topo component.
        dotted = self._dotted(func) or name
        if dotted != name and not any(
                part in ("network", "topo", "switch", "link")
                for part in dotted.split(".")):
            return
        self._emit("SIM007", node,
                   f"direct `{name}(...)` construction bypasses the "
                   f"pluggable topology layer — configure "
                   f"`NetParams.topology` / use `repro.topo.make_topology`")

    # -- SIM009: segment/descriptor construction outside pipeline/core --
    def _check_direct_segment_ctor(self, node: ast.Call) -> None:
        if self.path.startswith(_SIM009_ALLOWED_PREFIXES):
            return
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        else:
            return
        if name in _SIM009_CLASSES:
            # Only flag the repro pipeline/engine primitives: a same-named
            # class from an unrelated module resolves to a dotted path
            # without any pipeline/core component.
            dotted = self._dotted(func) or name
            if dotted != name and not any(
                    part in ("pipeline", "segmenter", "descriptor", "core")
                    for part in dotted.split(".")):
                return
            self._emit("SIM009", node,
                       f"direct `{name}(...)` construction outside "
                       f"repro.pipeline/repro.core — every rank must derive "
                       f"the identical segment plan from `PipelineParams` "
                       f"(use `plan_segments` / the engine API)")
            return
        # Literal nonzero segment sizes are only the config front door's
        # business: PipelineParams(segment_size_bytes=...) is the one
        # sanctioned spelling.
        if name == "PipelineParams":
            return
        for kw in node.keywords:
            if (kw.arg == "segment_size_bytes"
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, int)
                    and kw.value.value != 0):
                self._emit("SIM009", kw.value,
                           f"hard-coded `segment_size_bytes={kw.value.value}`"
                           f" outside a `PipelineParams(...)` call — segment "
                           f"sizing flows through the config block so every "
                           f"rank plans identically")

    # -- SIM003: float equality on timestamps -------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                sides = (left, right)
                if any(self._is_time_expr(s) for s in sides) and not any(
                        isinstance(s, ast.Constant) and s.value is None
                        for s in sides):
                    self._emit("SIM003", node,
                               "float equality on a simulation timestamp — "
                               "compare with an ordering or a tolerance")
            left = right
        self.generic_visit(node)

    # -- SIM004/SIM005 + loop-context maintenance ---------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_mutable_defaults(node)
        if _is_generator_def(node):
            self._check_unconsumed_ledgers(node)
        if self._loop_targets:
            self._check_loop_capture(node, node.args, node.body)
        # Function bodies get a fresh loop context.
        saved, self._loop_targets = self._loop_targets, []
        self.generic_visit(node)
        self._loop_targets = saved

    def _check_mutable_defaults(self, node: ast.FunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if (isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set")
                    and not default.args and not default.keywords):
                mutable = True
            if mutable:
                self._emit("SIM005", default,
                           f"mutable default argument in `{node.name}` is "
                           f"shared across calls — default to None")

    def _check_unconsumed_ledgers(self, fn: ast.FunctionDef) -> None:
        """In a generator, a charged local Ledger must be consumed —
        yielded via ``Busy.from_ledger``, read (``.total``/``.charges``),
        passed to another call, or returned."""
        assigns: dict[str, ast.AST] = {}
        charge_receivers: set[int] = set()
        charged: set[str] = set()
        nodes = [n for n in ast.walk(fn)]
        for node in nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = node.value
                if (isinstance(target, ast.Name)
                        and isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id == "Ledger"):
                    assigns[target.id] = node
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "charge"
                    and isinstance(node.func.value, ast.Name)):
                charged.add(node.func.value.id)
                charge_receivers.add(id(node.func.value))
        if not assigns:
            return
        consumed: set[str] = set()
        for node in nodes:
            if (isinstance(node, ast.Name) and node.id in assigns
                    and isinstance(node.ctx, ast.Load)
                    and id(node) not in charge_receivers):
                consumed.add(node.id)
        for name, site in assigns.items():
            if name in charged and name not in consumed:
                self._emit("SIM004", site,
                           f"Ledger `{name}` accumulates charges that are "
                           f"never consumed — the simulated CPU time is "
                           f"lost (yield `Busy.from_ledger({name})`)")

    # -- SIM006: loop-variable capture --------------------------------
    def visit_For(self, node: ast.For) -> None:
        targets = {n.id for n in ast.walk(node.target)
                   if isinstance(n, ast.Name)}
        self._loop_targets.append(targets)
        self.generic_visit(node)
        self._loop_targets.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        if self._loop_targets:
            self._check_loop_capture(node, node.args, [node.body])
        self.generic_visit(node)

    def _check_loop_capture(self, node: ast.AST, args: ast.arguments,
                            body: Sequence[ast.AST]) -> None:
        params = {a.arg for a in (args.posonlyargs + args.args
                                  + args.kwonlyargs)}
        if args.vararg:
            params.add(args.vararg.arg)
        if args.kwarg:
            params.add(args.kwarg.arg)
        active = set().union(*self._loop_targets)
        free: set[str] = set()
        todo = list(body)
        while todo:
            child = todo.pop()
            # Default expressions of nested lambdas evaluate eagerly, so
            # they bind the loop variable correctly — skip them.
            if isinstance(child, ast.Lambda):
                todo.extend(d for d in child.args.defaults)
                continue
            if isinstance(child, ast.Name) and isinstance(child.ctx,
                                                          ast.Load):
                free.add(child.id)
            todo.extend(ast.iter_child_nodes(child))
        captured = sorted((free & active) - params)
        if captured:
            self._emit("SIM006", node,
                       f"callback captures loop variable(s) "
                       f"{', '.join(captured)} by reference — late binding "
                       f"will see the final value; bind via a default "
                       f"argument (`lambda _v={captured[0]}: ...`)")


# ----------------------------------------------------------------------
# suppression pragmas
# ----------------------------------------------------------------------
def _suppressed_rules(line_text: str) -> Optional[frozenset[str]]:
    """Rules ignored on this line; empty frozenset means *all* rules."""
    match = _IGNORE_PRAGMA.search(line_text)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return frozenset()
    return frozenset(r.strip() for r in rules.split(",") if r.strip())


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
class Linter:
    """Two-pass linter over a set of files/directories."""

    def __init__(self, select: Optional[Iterable[str]] = None,
                 sim_scope: Optional[Iterable[str]] = None):
        self.select = frozenset(select) if select is not None else None
        self.sim_scope = (frozenset(sim_scope) if sim_scope is not None
                          else SIM_SCOPED_PACKAGES)

    # ------------------------------------------------------------------
    @staticmethod
    def discover(paths: Iterable[Path | str]) -> list[Path]:
        files: list[Path] = []
        for path in paths:
            path = Path(path)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            else:
                files.append(path)
        # De-duplicate while keeping deterministic order.
        seen: set[Path] = set()
        unique = []
        for f in files:
            resolved = f.resolve()
            if resolved not in seen:
                seen.add(resolved)
                unique.append(f)
        return unique

    def _sim_scoped(self, norm_path: str) -> bool:
        parts = norm_path.split("/")
        return (len(parts) >= 3 and parts[0] == "repro"
                and parts[1] in self.sim_scope)

    # ------------------------------------------------------------------
    def lint_paths(self, paths: Iterable[Path | str]) -> list[Finding]:
        files = self.discover(paths)
        sources: dict[Path, str] = {}
        trees: dict[Path, ast.AST] = {}
        findings: list[Finding] = []
        for file in files:
            try:
                source = file.read_text(encoding="utf-8")
            except OSError as exc:
                findings.append(Finding(
                    "SIM000", normalize_path(file), 1, 1,
                    f"cannot read file: {exc}"))
                continue
            sources[file] = source
            try:
                trees[file] = ast.parse(source, filename=str(file))
            except SyntaxError as exc:
                findings.append(Finding(
                    "SIM000", normalize_path(file), exc.lineno or 1,
                    (exc.offset or 0) + 1, f"syntax error: {exc.msg}"))

        gen_names = collect_generator_names(trees.values())

        for file, tree in trees.items():
            norm = normalize_path(file)
            linter = _FileLinter(norm, sources[file], gen_names,
                                 self._sim_scoped(norm), self.select)
            linter.visit(tree)
            for finding in linter.findings:
                ignored = _suppressed_rules(finding.line_text)
                if ignored is not None and (not ignored
                                            or finding.rule in ignored):
                    continue
                findings.append(finding)
        unique = {(f.path, f.line, f.col, f.rule, f.message): f
                  for f in findings}
        return sorted(unique.values(),
                      key=lambda f: (f.path, f.line, f.col, f.rule))


def lint_paths(paths: Iterable[Path | str], *,
               select: Optional[Iterable[str]] = None) -> list[Finding]:
    """Convenience wrapper: lint with default configuration."""
    return Linter(select=select).lint_paths(paths)
