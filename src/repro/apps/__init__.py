"""Application kernels and the application-based evaluation harness
(the paper's Sec. VII future work, made runnable)."""

from .harness import AppComparison, compare_builds
from .kernels import (AB_ONLY_KERNELS, KERNELS, KernelStats, cg_pipelined,
                      conjugate_gradient, jacobi, particle_timestep)

__all__ = [
    "KERNELS", "AB_ONLY_KERNELS", "KernelStats",
    "jacobi", "conjugate_gradient", "particle_timestep", "cg_pipelined",
    "compare_builds", "AppComparison",
]
