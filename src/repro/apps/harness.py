"""Application-evaluation harness: run a kernel under both builds and
compare where the CPU time went."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ClusterConfig
from ..mpich.rank import MpiBuild
from ..runtime.program import run_program
from .kernels import KERNELS, KernelStats


@dataclass
class AppComparison:
    """Both builds' outcomes for one kernel on one cluster."""

    kernel: str
    size: int
    default_stats: list[KernelStats]
    ab_stats: list[KernelStats]

    def mean_collective_us(self, build: MpiBuild) -> float:
        stats = (self.default_stats if build is MpiBuild.DEFAULT
                 else self.ab_stats)
        return float(np.mean([s.collective_us for s in stats]))

    def nonroot_mean_collective_us(self, build: MpiBuild) -> float:
        stats = (self.default_stats if build is MpiBuild.DEFAULT
                 else self.ab_stats)
        return float(np.mean([s.collective_us for s in stats
                              if s.rank != 0]))

    @property
    def blocking_improvement(self) -> float:
        """Factor by which ab cuts non-root time blocked in collectives."""
        ab = self.nonroot_mean_collective_us(MpiBuild.AB)
        nab = self.nonroot_mean_collective_us(MpiBuild.DEFAULT)
        return nab / ab if ab > 0 else float("inf")

    def summary(self) -> str:
        nab = self.nonroot_mean_collective_us(MpiBuild.DEFAULT)
        ab = self.nonroot_mean_collective_us(MpiBuild.AB)
        return (f"{self.kernel:>10} on {self.size:>2} ranks: non-root "
                f"collective blocking {nab:8.1f}us -> {ab:8.1f}us "
                f"({self.blocking_improvement:.1f}x)")


def compare_builds(kernel: str, config: ClusterConfig,
                   **kernel_kwargs) -> AppComparison:
    """Run ``kernel`` under DEFAULT and AB builds on ``config``."""
    factory = KERNELS[kernel]
    runs = {}
    for build in (MpiBuild.DEFAULT, MpiBuild.AB):
        out = run_program(config, factory(**kernel_kwargs), build=build)
        runs[build] = out.results
        for stats in out.results:
            if stats.rank == 0:
                assert stats.checks > 0, f"{kernel}: root verified nothing"
    return AppComparison(
        kernel=kernel,
        size=config.size,
        default_stats=runs[MpiBuild.DEFAULT],
        ab_stats=runs[MpiBuild.AB],
    )
