"""Synthetic application kernels for application-based evaluation.

The paper's future work (Sec. VII): "We also intend to perform
application-based evaluations to better understand how application-bypass
solutions perform under real loads."  These kernels model the communication
skeletons of the workloads the paper's introduction motivates — iterative
solvers and analysis loops where a reduction punctuates unevenly
distributed computation.

Each kernel is a rank-program factory: call it with parameters and pass the
result to :func:`repro.runtime.run_program`.  Every kernel returns, per
rank, a :class:`KernelStats` with the time spent blocked in collectives —
the quantity application bypass attacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mpich.operations import MAX, SUM


@dataclass
class KernelStats:
    """Per-rank outcome of one kernel run."""

    rank: int
    iterations: int
    collective_us: float          # wall time inside collective calls
    compute_us: float             # requested application compute
    wall_us: float                # total kernel wall time
    checks: int = 0               # verified global values
    extras: dict = field(default_factory=dict)

    @property
    def collective_fraction(self) -> float:
        return self.collective_us / self.wall_us if self.wall_us else 0.0


def jacobi(iterations: int = 25, *, base_compute_us: float = 80.0,
           imbalance: float = 0.5, elements: int = 1):
    """Jacobi-style smoother: per-iteration local compute whose cost varies
    *structurally* across ranks (domain imbalance), followed by a residual
    reduction to rank 0.
    """

    def program(mpi):
        weight = 1.0 + imbalance * ((mpi.rank % 4) / 3.0)
        my_compute = base_compute_us * weight
        stats = KernelStats(mpi.rank, iterations, 0.0, 0.0, 0.0)
        block = np.linspace(1.0, 2.0, 64) * (mpi.rank + 1)
        t_start = mpi.now
        for _ in range(iterations):
            block = 0.5 * (block + np.roll(block, 1))
            yield from mpi.compute(my_compute)
            stats.compute_us += my_compute
            residual = np.full(elements, float(np.abs(block).sum()))
            t0 = mpi.now
            result = yield from mpi.reduce(residual, op=SUM, root=0)
            stats.collective_us += mpi.now - t0
            if mpi.rank == 0:
                assert result is not None and result[0] > 0.0
                stats.checks += 1
        # drain bypassed work so the run ends quiescent
        yield from mpi.compute(base_compute_us * 4 + 400.0)
        yield from mpi.barrier()
        stats.wall_us = mpi.now - t_start
        return stats

    return program


def conjugate_gradient(iterations: int = 20, *, n_local: int = 128,
                       matvec_us: float = 120.0, jitter: float = 0.3):
    """CG-skeleton: each iteration does one (imbalanced) local mat-vec and
    two global dot products (allreduce of one double) — the classic
    reduction-bound solver loop.
    """

    def program(mpi):
        rng = mpi.rng_stream("kernel/cg")
        x = np.linspace(0.0, 1.0, n_local) + mpi.rank
        r = np.ones(n_local)
        stats = KernelStats(mpi.rank, iterations, 0.0, 0.0, 0.0)
        t_start = mpi.now
        for _ in range(iterations):
            cost = matvec_us * (1.0 + jitter * float(rng.random()))
            yield from mpi.compute(cost)
            stats.compute_us += cost
            local_dot = np.array([float(r @ r)])
            t0 = mpi.now
            rr = yield from mpi.allreduce(local_dot, op=SUM)
            stats.collective_us += mpi.now - t0
            alpha = 1.0 / (1.0 + rr[0])
            x = x + alpha * r
            r = r * (1.0 - alpha)
            local_dot2 = np.array([float(x @ r)])
            t0 = mpi.now
            yield from mpi.allreduce(local_dot2, op=SUM)
            stats.collective_us += mpi.now - t0
            stats.checks += 1
        yield from mpi.compute(500.0)
        yield from mpi.barrier()
        stats.wall_us = mpi.now - t_start
        return stats

    return program


def particle_timestep(iterations: int = 20, *, base_compute_us: float = 60.0,
                      hotspot_prob: float = 0.25,
                      hotspot_extra_us: float = 250.0,
                      rebalance_every: int = 0):
    """Particle-style load imbalance: most steps are cheap, but a random
    rank occasionally owns a "hotspot" region and runs long — the random
    skew pattern of the paper's CPU-utilization benchmark, embedded in an
    application loop ending each step with a global max-density reduction.

    ``rebalance_every > 0`` adds a blocking broadcast of rebalancing info
    every that-many steps.  This is a deliberately *adversarial* variant:
    a blocking downstream collective re-synchronizes the ranks and
    reclaims most of the skew the bypassed reduction just avoided — the
    same observation that leads the paper (Sec. II) to demand split-phase
    treatment for synchronizing operations.
    """

    def program(mpi):
        rng = mpi.rng_stream("kernel/particles")
        stats = KernelStats(mpi.rank, iterations, 0.0, 0.0, 0.0)
        t_start = mpi.now
        for step in range(iterations):
            cost = base_compute_us
            if float(rng.random()) < hotspot_prob:
                cost += hotspot_extra_us * float(rng.random())
            yield from mpi.compute(cost)
            stats.compute_us += cost
            density = np.array([cost + mpi.rank])
            t0 = mpi.now
            result = yield from mpi.reduce(density, op=MAX, root=0)
            stats.collective_us += mpi.now - t0
            if mpi.rank == 0:
                assert result is not None
                stats.checks += 1
            if rebalance_every and step % rebalance_every == rebalance_every - 1:
                t0 = mpi.now
                plan = yield from mpi.bcast(
                    np.array([float(step)]) if mpi.rank == 0 else None,
                    root=0, count=1)
                stats.collective_us += mpi.now - t0
                assert plan[0] == float(step)
        yield from mpi.compute(base_compute_us + hotspot_extra_us + 400.0)
        yield from mpi.barrier()
        stats.wall_us = mpi.now - t_start
        return stats

    return program


def cg_pipelined(iterations: int = 20, *, n_local: int = 128,
                 matvec_us: float = 120.0, jitter: float = 0.3):
    """Pipelined-CG skeleton: the cure for :func:`conjugate_gradient`'s
    synchronization cost, using the split-phase reduction extension.

    The dot-product reduction is *started* before the mat-vec and waited
    on after it, so the whole reduce tree rides along with the compute —
    the communication/computation overlap the paper's Sec. II time lines
    promise, applied to the solver pattern that blocked on it.  Requires
    the application-bypass build (``MpiBuild.AB``).
    """

    def program(mpi):
        from ..core.split_phase import SplitPhaseReduce
        if mpi.ab_engine is None:
            raise RuntimeError("cg_pipelined requires the AB build")
        split = SplitPhaseReduce(mpi.ab_engine)
        rng = mpi.rng_stream("kernel/cg")
        x = np.linspace(0.0, 1.0, n_local) + mpi.rank
        r = np.ones(n_local)
        stats = KernelStats(mpi.rank, iterations, 0.0, 0.0, 0.0)
        t_start = mpi.now
        for _ in range(iterations):
            local_dot = np.array([float(r @ r)])
            t0 = mpi.now
            handle = yield from split.start(local_dot, SUM, 0,
                                            mpi.comm_world)
            stats.collective_us += mpi.now - t0
            cost = matvec_us * (1.0 + jitter * float(rng.random()))
            yield from mpi.compute(cost)            # overlaps the reduce
            stats.compute_us += cost
            t0 = mpi.now
            reduced = yield from split.wait(handle)
            if mpi.rank == 0:
                rr = yield from mpi.bcast(reduced, root=0)
            else:
                rr = yield from mpi.bcast(None, root=0, count=1)
            stats.collective_us += mpi.now - t0
            alpha = 1.0 / (1.0 + rr[0])
            x = x + alpha * r
            r = r * (1.0 - alpha)
            # The second dot product has a true dependency on the update,
            # so it stays a blocking allreduce — same as plain CG.  The
            # pipelining win is hiding the *first* reduction's tree.
            local_dot2 = np.array([float(x @ r)])
            t0 = mpi.now
            yield from mpi.allreduce(local_dot2, op=SUM)
            stats.collective_us += mpi.now - t0
            stats.checks += 1
        yield from mpi.compute(500.0)
        yield from mpi.barrier()
        stats.wall_us = mpi.now - t_start
        return stats

    return program


KERNELS = {
    "jacobi": jacobi,
    "cg": conjugate_gradient,
    "particles": particle_timestep,
}

#: Kernels that only run on the application-bypass build.
AB_ONLY_KERNELS = {
    "cg_pipelined": cg_pipelined,
}
