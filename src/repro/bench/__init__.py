"""Microbenchmarks reproducing the paper's measurement methodology."""

from .cpu_util import APP_CATEGORIES, CpuUtilResult, cpu_util_benchmark
from .faulted import FaultReduceResult, fault_reduce_benchmark
from .latency import LatencyResult, latency_benchmark, measure_one_way
from .nicred import nicred_cpu_util, nicred_latency
from .report import Series, Table, summary_line
from .skew import SkewModel, conservative_latency_estimate
from .stats import SampleSummary, factor_with_ci, summarize
from .sweep import (cpu_util_vs_nodes, cpu_util_vs_skew, latency_vs_nodes,
                    latency_vs_message_size)

__all__ = [
    "cpu_util_benchmark", "CpuUtilResult", "APP_CATEGORIES",
    "fault_reduce_benchmark", "FaultReduceResult",
    "latency_benchmark", "LatencyResult", "measure_one_way",
    "nicred_cpu_util", "nicred_latency",
    "SkewModel", "conservative_latency_estimate",
    "SampleSummary", "summarize", "factor_with_ci",
    "Table", "Series", "summary_line",
    "cpu_util_vs_skew", "cpu_util_vs_nodes", "latency_vs_nodes",
    "latency_vs_message_size",
]
