"""The CPU-utilization microbenchmark (paper Sec. VI, first benchmark).

Per iteration, on every node::

    barrier
    t0 = now
    busy-loop( injected skew  +  natural noise )   # interruptible
    MPI_Reduce
    busy-loop( catch-up delay )                    # interruptible
    t1 = now
    sample = (t1 - t0) - injected skew - catch-up delay

The catch-up delay equals the maximum skew plus a conservative estimate of
the reduction latency, guaranteeing that all asynchronous processing for
this iteration lands *inside* the timed window — where, because the delays
run as interruptible busy loops, signal handlers extend the elapsed time by
exactly their CPU cost and are therefore captured by the subtraction.

Natural noise is deliberately **not** subtracted (a real benchmark cannot
know when the OS preempted it); it affects both builds identically.

In addition to the paper's protocol we snapshot the simulator's direct CPU
accounting at t0/t1 and report the same average from that second, completely
independent bookkeeping path.  ``tests/integration`` asserts the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..config import ClusterConfig
from ..mpich.operations import SUM
from ..mpich.rank import MpiBuild
from ..runtime.program import build_cluster, run_program
from ..sim.trace import Tracer
from .skew import SkewModel, conservative_latency_estimate
from .stats import SampleSummary, summarize

#: CPU categories that are *application* time, excluded from the direct
#: accounting cross-check (everything else is reduction/progress work).
APP_CATEGORIES = ("app",)


@dataclass
class CpuUtilResult:
    """Output of one CPU-utilization benchmark run."""

    build: MpiBuild
    size: int
    elements: int
    max_skew_us: float
    iterations: int
    #: The paper's metric: mean over iterations of the per-iteration mean
    #: across nodes, via the subtraction protocol.
    avg_util_us: float
    #: Same metric from the engine's direct per-category accounting.
    direct_avg_util_us: float
    #: Per-node means (length == size).
    per_node_util_us: np.ndarray
    #: Total NIC signals raised during the measured iterations.
    signals: int
    #: Mean reduction result correctness check (root side).
    checked_reductions: int
    #: Dispersion summary over the per-iteration cluster means.
    summary: Optional[SampleSummary] = None
    #: Simulator work counters for the run (events popped / driver ops),
    #: the denominator of the orchestrator's events-per-second metric.
    events: int = 0
    ops: int = 0
    #: Full ``Simulator.counters()`` snapshot, including the fabric's
    #: per-hop network counters (hot-spot data for BENCH_*.json).
    sim_counters: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return (f"cpu-util[{self.build.value}] n={self.size} "
                f"elems={self.elements} skew={self.max_skew_us:.0f}us "
                f"-> {self.avg_util_us:.2f}us "
                f"(direct {self.direct_avg_util_us:.2f}us, "
                f"{self.signals} signals)")


def cpu_util_benchmark(config: ClusterConfig, build: MpiBuild, *,
                       elements: int = 4, max_skew_us: float = 0.0,
                       iterations: int = 100, warmup: int = 3,
                       catchup_us: Optional[float] = None,
                       tracer: Optional[Tracer] = None) -> CpuUtilResult:
    """Run the paper's CPU-utilization microbenchmark on ``config``."""
    if iterations < 1:
        raise ValueError("need at least one measured iteration")
    size = config.size
    total_iters = warmup + iterations
    if catchup_us is None:
        from ..schedule.table import config_tree_shape
        shape = config_tree_shape(
            config, elements * np.dtype(np.float64).itemsize)
        catchup_us = max_skew_us + conservative_latency_estimate(
            size, elements, shape=shape)

    expected = float(size * (size + 1) / 2)  # sum of (rank+1)
    check_counts = [0]

    # Armed PAP workload: pre-build the cluster so the trace exists before
    # any rank runs, and widen the catch-up window by the worst arrival
    # spread so late arrivals still land inside the timed interval.  A
    # disarmed config takes the config path into run_program unchanged.
    cluster = None
    workload = None
    if config.workload.armed:
        cluster = build_cluster(config, tracer)
        workload = cluster.workload
        trace = workload.prepare(
            total_iters,
            reference_us=conservative_latency_estimate(size, elements))
        catchup_us += max(trace.spread(it) for it in range(trace.iterations))

    def program(mpi):
        skew_model = SkewModel(mpi.node.rng, config.noise, max_skew_us)
        rank = mpi.rank
        data = np.full(elements, float(rank + 1), dtype=np.float64)
        samples: list[float] = []
        direct: list[float] = []
        cpu = mpi.node.cpu
        for it in range(total_iters):
            yield from mpi.barrier()
            t0 = mpi.now
            d0 = cpu.total_usage(exclude=APP_CATEGORIES)
            skew = skew_model.skew_delay(rank, it)
            noise = skew_model.noise_delay(rank, it)
            arrival = 0.0 if workload is None else workload.charge(rank, it)
            yield from mpi.compute(skew + noise + arrival)
            result = yield from mpi.reduce(data, op=SUM, root=0)
            if rank == 0:
                if not np.allclose(result, expected):
                    raise AssertionError(
                        f"iteration {it}: root got {result[0]}, "
                        f"expected {expected}")
                check_counts[0] += 1
            yield from mpi.compute(catchup_us)
            t1 = mpi.now
            d1 = cpu.total_usage(exclude=APP_CATEGORIES)
            if it >= warmup:
                samples.append((t1 - t0) - skew - arrival - catchup_us)
                direct.append(d1 - d0)
        return samples, direct

    result = run_program(cluster if cluster is not None else config,
                         program, build=build, tracer=tracer)

    paper_matrix = np.array([r[0] for r in result.results])   # (size, iters)
    direct_matrix = np.array([r[1] for r in result.results])
    signals = result.cluster.total_signals()
    counters = result.sim_counters()
    return CpuUtilResult(
        build=build,
        size=size,
        elements=elements,
        max_skew_us=max_skew_us,
        iterations=iterations,
        avg_util_us=float(paper_matrix.mean()),
        direct_avg_util_us=float(direct_matrix.mean()),
        per_node_util_us=paper_matrix.mean(axis=1),
        signals=signals,
        checked_reductions=check_counts[0],
        summary=summarize(paper_matrix.mean(axis=0)),
        events=counters["events"],
        ops=counters["ops"],
        sim_counters=dict(counters),
    )
