"""Fault-tolerant reduce benchmark (``repro.faults`` end-to-end driver).

Runs back-to-back ``MPI_Reduce`` iterations under a deterministic
:class:`~repro.config.FaultParams` schedule and records what the root saw.
The program is deliberately **barrier-free**: with a ``rank_crash``
schedule a barrier would hang every survivor on the dead rank, whereas a
tree reduce with ``tree_heal`` + descriptor timeouts routes around it.
Crash scenarios are therefore AB-build-only (the blocking non-bypass
reduce has no recovery layer and would deadlock); loss, degradation,
suppression and pauses run under both builds.

Correctness model with a crash: iterations completed strictly before
``crash_at_us`` sum every rank's contribution (``expected_full``); the
iteration in flight at the crash may honestly report a partial sum (the
abandoned children are filed as INV-FAULT fault reports); iterations
started after the crash sum the survivors (``expected_survivors``).  The
result exposes the first/last root values so callers can pin both ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..config import ClusterConfig
from ..mpich.operations import SUM
from ..mpich.rank import MpiBuild
from ..runtime.program import run_program
from ..sim.trace import Tracer


@dataclass
class FaultReduceResult:
    """Output of one fault-schedule reduce run."""

    build: MpiBuild
    size: int
    elements: int
    iterations: int
    #: Ranks whose program ran to completion (a crashed rank never does).
    completed_ranks: int
    #: Reduce iterations the root completed (== iterations unless the
    #: root itself was the victim, which the smoke grids never do).
    root_iterations: int
    #: Root-side result of the first and last completed iteration.
    first_result: float
    last_result: float
    #: Sum of every rank's contribution (rank r contributes r + 1).
    expected_full: float
    #: Same sum minus the crashed rank's contribution (== expected_full
    #: when no crash is scheduled).
    expected_survivors: float
    #: Last iteration's result is one of the two honest answers: the
    #: surviving-rank sum, or — when the final iteration collected the
    #: victim's contribution before the crash landed — the full sum.
    #: Anything else (a silently partial sum) fails.
    survivor_ok: bool
    #: Virtual time at which the last surviving rank finished — the
    #: figure-level cost axis (loss, degradation and pauses all stretch
    #: it; a healed crash stretches it by roughly one timeout).
    makespan_us: float
    #: Total NIC signals raised across the cluster.
    signals: int
    events: int = 0
    ops: int = 0
    #: Full ``Simulator.counters()`` snapshot — includes the fault
    #: schedule's counters (faults_injected, retransmissions, ...) when
    #: one is armed.
    sim_counters: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return (f"fault-reduce[{self.build.value}] n={self.size} "
                f"iters={self.iterations} -> last={self.last_result:g} "
                f"(expect {self.expected_survivors:g}, "
                f"survivor_ok={self.survivor_ok}, "
                f"{self.completed_ranks}/{self.size} ranks finished)")


def fault_reduce_benchmark(config: ClusterConfig, build: MpiBuild, *,
                           elements: int = 4, iterations: int = 8,
                           gap_us: float = 200.0,
                           tracer: Optional[Tracer] = None
                           ) -> FaultReduceResult:
    """Run ``iterations`` barrier-free reduces under ``config.faults``."""
    if iterations < 1:
        raise ValueError("need at least one iteration")
    size = config.size
    faults = config.faults

    def program(mpi):
        rank = mpi.rank
        data = np.full(elements, float(rank + 1), dtype=np.float64)
        root_values: list[float] = []
        done = 0
        for _ in range(iterations):
            result = yield from mpi.reduce(data, op=SUM, root=0)
            done += 1
            if rank == 0:
                root_values.append(float(result[0]))
            # A quiet gap lets asynchronous recovery (retransmits, healed
            # subtrees, thawed stragglers) land between iterations.
            yield from mpi.compute(gap_us)
        return done, root_values

    run = run_program(config, program, build=build, tracer=tracer)

    completed = sum(1 for r in run.results if r is not None)
    root_done, root_values = run.results[0] if run.results[0] else (0, [])
    first = float(root_values[0]) if root_values else float("nan")
    last = float(root_values[-1]) if root_values else float("nan")

    expected_full = float(size * (size + 1) // 2)
    crashed = (faults.crash_rank >= 0
               and faults.crash_at_us <= run.finished_at)
    expected_survivors = (expected_full - float(faults.crash_rank + 1)
                          if crashed else expected_full)
    counters = run.sim_counters()
    return FaultReduceResult(
        build=build,
        size=size,
        elements=elements,
        iterations=iterations,
        completed_ranks=completed,
        root_iterations=root_done,
        first_result=first,
        last_result=last,
        expected_full=expected_full,
        expected_survivors=expected_survivors,
        survivor_ok=bool(root_values) and (
            last == expected_survivors
            or (crashed and last == expected_full)),
        makespan_us=float(run.finished_at),
        signals=run.cluster.total_signals(),
        events=counters["events"],
        ops=counters["ops"],
        sim_counters=dict(counters),
    )
