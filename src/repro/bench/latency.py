"""The latency microbenchmark (paper Sec. VI, second benchmark).

Protocol, verbatim from the paper:

1. measure the one-way message latency between the root and the node
   *furthest from the root in the logical tree* (the "last node"), via a
   ping-pong;
2. run a series of barrier-separated reductions.  Timing starts just before
   the last node begins the reduction; when the root completes, it sends a
   notification message to the last node, which stops timing and subtracts
   the one-way notification latency.

There is no injected skew; natural noise (per the cluster's NoiseParams)
still applies, which is what makes the application-bypass build pay signal
overhead as the node count grows (paper Fig. 9 discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..config import ClusterConfig
from ..mpich.collectives import tree
from ..mpich.message import TAG_NOTIFY
from ..mpich.operations import SUM
from ..mpich.rank import MpiBuild
from ..runtime.program import run_program
from ..sim.trace import Tracer
from .skew import SkewModel
from .stats import SampleSummary, summarize


@dataclass
class LatencyResult:
    """Output of one latency benchmark run."""

    build: MpiBuild
    size: int
    elements: int
    iterations: int
    avg_latency_us: float
    median_latency_us: float
    one_way_us: float
    last_node: int
    samples: np.ndarray
    signals: int
    #: Dispersion summary over the per-iteration latency samples.
    summary: "SampleSummary" = None
    #: Simulator work counters for the measured run (ping-pong calibration
    #: excluded) — see CpuUtilResult.events.
    events: int = 0
    ops: int = 0
    #: Full ``Simulator.counters()`` snapshot of the measured run,
    #: including the fabric's per-hop network counters.
    sim_counters: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return (f"latency[{self.build.value}] n={self.size} "
                f"elems={self.elements} -> {self.avg_latency_us:.2f}us "
                f"(one-way {self.one_way_us:.2f}us, "
                f"{self.signals} signals)")


def measure_one_way(config: ClusterConfig, peer_a: int, peer_b: int,
                    *, pingpongs: int = 50) -> float:
    """Half the average ping-pong round trip between two nodes."""
    token = np.zeros(1, dtype=np.float64)

    def program(mpi):
        buf = np.empty(1, dtype=np.float64)
        if mpi.rank == peer_a:
            t0 = mpi.now
            for _ in range(pingpongs):
                yield from mpi.send(token, peer_b, tag=TAG_NOTIFY)
                yield from mpi.recv(buf, peer_b, tag=TAG_NOTIFY)
            return (mpi.now - t0) / (2.0 * pingpongs)
        if mpi.rank == peer_b:
            for _ in range(pingpongs):
                yield from mpi.recv(buf, peer_a, tag=TAG_NOTIFY)
                yield from mpi.send(token, peer_a, tag=TAG_NOTIFY)
        return None

    out = run_program(config, program, build=MpiBuild.DEFAULT)
    return float(out.results[peer_a])


def latency_benchmark(config: ClusterConfig, build: MpiBuild, *,
                      elements: int = 1, iterations: int = 200,
                      warmup: int = 3, root: int = 0,
                      tracer: Optional[Tracer] = None) -> LatencyResult:
    """Run the paper's reduction-latency microbenchmark on ``config``."""
    size = config.size
    if size < 2:
        raise ValueError("latency benchmark needs at least two nodes")
    from ..schedule.table import config_tree_shape
    shape = config_tree_shape(config, elements * np.dtype(np.float64).itemsize)
    last_rel = shape.deepest_rel(size)
    last = tree.absolute_rank(last_rel, root, size)
    if last == root:  # size == 1 handled above; defensive
        last = (root + 1) % size

    one_way = measure_one_way(config, root, last)
    total_iters = warmup + iterations
    token = np.zeros(1, dtype=np.float64)

    def program(mpi):
        skew_model = SkewModel(mpi.node.rng, config.noise, 0.0)
        rank = mpi.rank
        data = np.full(elements, float(rank + 1), dtype=np.float64)
        buf = np.empty(1, dtype=np.float64)
        samples: list[float] = []
        for it in range(total_iters):
            yield from mpi.barrier()
            noise = skew_model.noise_delay(rank, it)
            yield from mpi.compute(noise)
            t0 = mpi.now
            yield from mpi.reduce(data, op=SUM, root=root)
            if rank == root:
                yield from mpi.send(token, last, tag=TAG_NOTIFY)
            if rank == last:
                yield from mpi.recv(buf, root, tag=TAG_NOTIFY)
                if it >= warmup:
                    samples.append((mpi.now - t0) - one_way)
        return samples if rank == last else None

    out = run_program(config, program, build=build, tracer=tracer)
    samples = np.asarray(out.results[last], dtype=np.float64)
    counters = out.sim_counters()
    return LatencyResult(
        build=build,
        size=size,
        elements=elements,
        iterations=iterations,
        avg_latency_us=float(samples.mean()),
        median_latency_us=float(np.median(samples)),
        one_way_us=one_way,
        last_node=last,
        samples=samples,
        signals=out.cluster.total_signals(),
        summary=summarize(samples),
        events=counters["events"],
        ops=counters["ops"],
        sim_counters=dict(counters),
    )
