"""Microbenchmark protocols for the NIC-based reduction extension.

Same measurement methodology as :mod:`repro.bench.cpu_util` and
:mod:`repro.bench.latency`, with :class:`repro.core.nic_reduce.NicReduce`
standing in for ``MPI_Reduce``.  Used by the extension benchmark and the
``python -m repro.experiments ext`` driver.
"""

from __future__ import annotations

import numpy as np

from ..config import ClusterConfig
from ..core.nic_reduce import NicReduce
from ..mpich.collectives import tree
from ..mpich.message import TAG_NOTIFY
from ..mpich.operations import SUM
from ..mpich.rank import MpiBuild
from ..runtime.program import run_program
from .skew import SkewModel, conservative_latency_estimate


def nicred_cpu_util(config: ClusterConfig, *, elements: int,
                    max_skew_us: float, iterations: int,
                    warmup: int = 3) -> float:
    """Paper-protocol CPU utilization with NIC-based reduction."""
    size = config.size
    catchup = (max_skew_us + conservative_latency_estimate(size, elements) +
               0.1 * elements * size)  # LANai ALU serialization headroom
    total = warmup + iterations
    expected = size * (size + 1) / 2

    def program(mpi):
        nicred = NicReduce(mpi.mpi)
        nicred.register_comm(mpi.comm_world)
        skew_model = SkewModel(mpi.node.rng, config.noise, max_skew_us)
        data = np.full(elements, float(mpi.rank + 1))
        samples = []
        for it in range(total):
            yield from mpi.barrier()
            t0 = mpi.now
            skew = skew_model.skew_delay(mpi.rank, it)
            noise = skew_model.noise_delay(mpi.rank, it)
            yield from mpi.compute(skew + noise)
            result = yield from nicred.reduce(data, SUM, 0, mpi.comm_world)
            if mpi.rank == 0:
                assert np.allclose(result, expected)
            yield from mpi.compute(catchup)
            if it >= warmup:
                samples.append((mpi.now - t0) - skew - catchup)
        return samples

    out = run_program(config, program, build=MpiBuild.DEFAULT)
    return float(np.mean([np.mean(s) for s in out.results]))


def nicred_latency(config: ClusterConfig, *, elements: int,
                   iterations: int, warmup: int = 3) -> float:
    """Last-node-to-notification reduction latency with NIC combining."""
    size = config.size
    last = tree.deepest_relative_rank(size)
    token = np.zeros(1)
    total = warmup + iterations

    def program(mpi):
        nicred = NicReduce(mpi.mpi)
        nicred.register_comm(mpi.comm_world)
        data = np.full(elements, 1.0)
        buf = np.zeros(1)
        samples = []
        for it in range(total):
            yield from mpi.barrier()
            t0 = mpi.now
            yield from nicred.reduce(data, SUM, 0, mpi.comm_world)
            if mpi.rank == 0:
                yield from mpi.send(token, last, tag=TAG_NOTIFY)
            if mpi.rank == last:
                yield from mpi.recv(buf, 0, tag=TAG_NOTIFY)
                if it >= warmup:
                    samples.append(mpi.now - t0)
        return samples if mpi.rank == last else None

    out = run_program(config, program, build=MpiBuild.DEFAULT)
    return float(np.mean(out.results[last]))
