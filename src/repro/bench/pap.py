"""Makespan benchmark for allreduce under process-arrival patterns.

The measurement PAP-aware algorithms are designed to win: every rank
leaves a barrier together, spends its per-(rank, iteration) arrival
delay from the workload trace in application compute, then enters the
allreduce; the *makespan* of one iteration is the time from barrier exit
until the **last** rank holds the result.  When arrivals are balanced
the collective dominates and application-bypass (``ab``) wins; when one
straggler dominates, schedules that put late arrivals near the root
(SRA) or pre-reduce the early arrivals (PRA) overlap almost all
reduction work with the straggler's delay.

Algorithms:

``nab`` / ``ab`` / ``pipelined``
    The legacy engine paths (host-level tree, application-bypass,
    Träff-style pipelined overlap — the latter needs an armed
    :class:`~repro.config.PipelineParams`).
``sra`` / ``pra``
    Proficz's PAP-aware variants, lowered per iteration from the arrival
    oracle (``allreduce.pap_sorted`` / ``allreduce.pap_prereduced``) and
    executed through the schedule interpreter.  Schedules are memoised
    by arrival order, validated once each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..config import ClusterConfig
from ..mpich.operations import SUM
from ..mpich.rank import MpiBuild
from ..runtime.program import build_cluster, run_program
from ..schedule.lower import lower
from ..schedule.table import config_tree_shape
from ..sim.trace import Tracer
from .skew import arrival_spread_stats, conservative_latency_estimate
from .stats import SampleSummary, summarize

#: Algorithm tag -> MpiBuild for the run.  The schedule-driven variants
#: execute host-level reduce steps, i.e. the nab engine underneath.
PAP_ALGOS = {
    "nab": MpiBuild.DEFAULT,
    "ab": MpiBuild.AB,
    "pipelined": MpiBuild.AB,
    "sra": MpiBuild.DEFAULT,
    "pra": MpiBuild.DEFAULT,
}

#: Algorithm tag -> lowering name for the schedule-driven variants.
_PAP_LOWERINGS = {
    "sra": "allreduce.pap_sorted",
    "pra": "allreduce.pap_prereduced",
}


@dataclass
class PapResult:
    """Output of one PAP allreduce benchmark run."""

    algo: str
    build: MpiBuild
    size: int
    elements: int
    iterations: int
    pattern: str
    #: Mean/median over iterations of (last rank done) - (barrier exit).
    avg_makespan_us: float
    median_makespan_us: float
    samples: np.ndarray
    #: Arrival-spread statistics + kappa for the trace driving this run
    #: (empty when the workload is disarmed) — the skew.py bridge.
    arrival_stats: dict = field(default_factory=dict)
    signals: int = 0
    summary: Optional[SampleSummary] = None
    events: int = 0
    ops: int = 0
    sim_counters: dict = field(default_factory=dict)

    def __str__(self) -> str:
        kappa = self.arrival_stats.get("arrival_kappa")
        return (f"pap[{self.algo}] pattern={self.pattern} n={self.size} "
                f"elems={self.elements}"
                + (f" kappa={kappa:.2f}" if kappa is not None else "")
                + f" -> {self.avg_makespan_us:.2f}us")


def pap_benchmark(config: ClusterConfig, *, algo: str, elements: int = 256,
                  iterations: int = 10, warmup: int = 2,
                  tracer: Optional[Tracer] = None) -> PapResult:
    """Measure allreduce makespan under ``config.workload`` with ``algo``."""
    try:
        build = PAP_ALGOS[algo]
    except KeyError:
        raise ValueError(
            f"unknown PAP algorithm {algo!r}; "
            f"known: {', '.join(sorted(PAP_ALGOS))}") from None
    size = config.size
    if size < 2:
        raise ValueError("the PAP benchmark needs at least two nodes")
    if iterations < 1:
        raise ValueError("need at least one measured iteration")
    if algo == "pipelined" and not config.pipeline.armed:
        raise ValueError("algo='pipelined' needs an armed PipelineParams")
    if algo in _PAP_LOWERINGS and config.pipeline.armed:
        raise ValueError(
            "the PAP schedule variants execute whole-message; disarm "
            "PipelineParams for algo=%r" % (algo,))
    total_iters = warmup + iterations
    nbytes = elements * np.dtype(np.float64).itemsize
    shape = config_tree_shape(config, nbytes)

    cluster = build_cluster(config, tracer)
    workload = cluster.workload          # None when disarmed
    trace = None
    if workload is not None:
        trace = workload.prepare(
            total_iters,
            reference_us=conservative_latency_estimate(
                size, elements, shape=shape))

    # One validated schedule per distinct arrival order (identity when the
    # workload is disarmed) for the schedule-driven variants.
    schedules = None
    if algo in _PAP_LOWERINGS:
        memo: dict = {}
        schedules = []
        for it in range(total_iters):
            order = (tuple(range(size)) if trace is None
                     else trace.order(it))
            sched = memo.get(order)
            if sched is None:
                sched = lower(_PAP_LOWERINGS[algo], shape, size,
                              order=order).validate()
                memo[order] = sched
            schedules.append(sched)

    expected = float(size * (size + 1) / 2)

    def program(mpi):
        from ..core.interpreter import execute_schedule
        rank = mpi.rank
        data = np.full(elements, float(rank + 1), dtype=np.float64)
        starts: list[float] = []
        dones: list[float] = []
        for it in range(total_iters):
            yield from mpi.barrier()
            t0 = mpi.now
            arrival = 0.0 if workload is None else workload.charge(rank, it)
            yield from mpi.compute(arrival)
            if schedules is not None:
                result = yield from execute_schedule(
                    mpi.mpi, schedules[it], data, SUM,
                    comm=mpi.mpi.comm_world)
            else:
                result = yield from mpi.allreduce(data, op=SUM)
            if not np.allclose(result, expected):
                raise AssertionError(
                    f"iteration {it}: rank {rank} got {result.flat[0]}, "
                    f"expected {expected}")
            if it >= warmup:
                starts.append(t0)
                dones.append(mpi.now)
        return starts, dones

    out = run_program(cluster, program, build=build, tracer=tracer)
    starts = np.array([r[0] for r in out.results])   # (size, iterations)
    dones = np.array([r[1] for r in out.results])
    samples = dones.max(axis=0) - starts.min(axis=0)
    counters = out.sim_counters()
    return PapResult(
        algo=algo,
        build=build,
        size=size,
        elements=elements,
        iterations=iterations,
        pattern=config.workload.pattern,
        avg_makespan_us=float(samples.mean()),
        median_makespan_us=float(np.median(samples)),
        samples=samples,
        arrival_stats=arrival_spread_stats(trace, size, elements,
                                           shape=shape),
        signals=out.cluster.total_signals(),
        summary=summarize(samples),
        events=counters["events"],
        ops=counters["ops"],
        sim_counters=dict(counters),
    )
