"""Plain-text series/table formatting for the experiment drivers.

The experiment modules print the same rows the paper plots: one row per
x-value (skew, node count or message size), one column per (build, message
size) series, plus factor-of-improvement columns — so the shapes in
Figs. 6-10 can be read straight off the terminal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence


@dataclass
class Series:
    """One plotted line: a label and y-values aligned with the table's x."""

    label: str
    values: list[float] = field(default_factory=list)


class Table:
    """Fixed-width table with an x-column and any number of series."""

    def __init__(self, title: str, x_label: str,
                 x_values: Sequence[float],
                 value_fmt: str = "{:.2f}"):
        self.title = title
        self.x_label = x_label
        self.x_values = list(x_values)
        self.series: list[Series] = []
        self.value_fmt = value_fmt

    def add_series(self, label: str, values: Sequence[float]) -> Series:
        values = list(values)
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {label!r} has {len(values)} values for "
                f"{len(self.x_values)} x points")
        s = Series(label, values)
        self.series.append(s)
        return s

    def factor_series(self, label: str, numerator: str,
                      denominator: str) -> Series:
        """Add ``numerator / denominator`` as a factor-of-improvement row."""
        num = self._find(numerator)
        den = self._find(denominator)
        values = [
            (n / d if d else float("nan")) for n, d in zip(num.values,
                                                           den.values)
        ]
        return self.add_series(label, values)

    def _find(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r}")

    def render(self) -> str:
        headers = [self.x_label] + [s.label for s in self.series]
        rows = []
        for i, x in enumerate(self.x_values):
            row = [_fmt_x(x)]
            for s in self.series:
                row.append(self.value_fmt.format(s.values[i]))
            rows.append(row)
        widths = [
            max(len(headers[c]), *(len(r[c]) for r in rows))
            for c in range(len(headers))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """Machine-readable form (used by EXPERIMENTS.md generation)."""
        return {
            "title": self.title,
            "x_label": self.x_label,
            "x": self.x_values,
            "series": {s.label: s.values for s in self.series},
        }


def _fmt_x(x: float) -> str:
    return str(int(x)) if float(x).is_integer() else f"{x:g}"


def summary_line(name: str, value: float, unit: str = "",
                 note: Optional[str] = None) -> str:
    text = f"{name}: {value:.2f}{unit}"
    if note:
        text += f"   ({note})"
    return text
