"""Latency benchmark for schedule-driven collectives (repro.schedule).

Lowers a collective to a :class:`~repro.schedule.ir.Schedule`, optionally
applies rewrite passes, validates the result, and executes it through the
interpreter (:mod:`repro.core.interpreter`) on every rank — the measurement
loop mirrors :mod:`repro.bench.latency` (barrier, natural noise, timed
collective), with the root timing call-to-result.

This is what ``orchestrate smoke-schedule``, the ``fig_schedule``
experiment and the autotuner all run, so pass-on vs pass-off comparisons
and tuning sweeps share one measurement path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..config import ClusterConfig
from ..mpich.operations import SUM
from ..mpich.rank import MpiBuild
from ..runtime.program import run_program
from ..schedule.ir import Schedule
from ..schedule.lower import lower
from ..schedule.passes import apply_passes
from ..schedule.table import config_tree_shape, resolve_pipeline_params
from ..sim.trace import Tracer
from .skew import SkewModel
from .stats import SampleSummary, summarize


@dataclass
class ScheduledResult:
    """Output of one scheduled-collective benchmark run."""

    build: MpiBuild
    size: int
    elements: int
    iterations: int
    lowering: str
    passes: tuple
    tree_shape: str
    nseg: int
    #: Total steps across all ranks of the executed schedule.
    steps: int
    avg_latency_us: float
    median_latency_us: float
    samples: np.ndarray
    signals: int
    summary: Optional[SampleSummary] = None
    events: int = 0
    ops: int = 0
    sim_counters: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return (f"scheduled[{self.build.value}] {self.lowering} "
                f"shape={self.tree_shape} n={self.size} "
                f"elems={self.elements} nseg={self.nseg} "
                f"-> {self.avg_latency_us:.2f}us")


def build_schedule(config: ClusterConfig, *, lowering: str,
                   passes: Sequence = (), elements: int,
                   dtype=np.float64) -> Schedule:
    """Lower + rewrite the schedule this config would execute.

    With ``pipeline_segments`` among the passes, the collective is lowered
    whole-message and the pass produces the segmentation (proving the
    rewrite, not the lowering, is what pipelines it); otherwise the
    config-planned segment count is lowered directly.
    """
    from ..pipeline.segmenter import plan_segments
    nbytes = elements * np.dtype(dtype).itemsize
    shape = config_tree_shape(config, nbytes)
    pparams = config.pipeline
    if pparams.segment_size_bytes == "auto":
        pparams = resolve_pipeline_params(config, nbytes)
    probe = np.zeros(elements, dtype=dtype)
    segments = plan_segments(pparams, probe)
    nseg = 0 if segments is None else len(segments)

    pass_names = [spec if isinstance(spec, str) else spec[0]
                  for spec in passes]
    if "pipeline_segments" in pass_names:
        if nseg < 2:
            raise ValueError(
                "pipeline_segments requested but the config plans %d "
                "segment(s) for %d bytes; arm PipelineParams" % (nseg, nbytes))
        schedule = lower(lowering, shape, config.size, nseg=0)
        specs = [("pipeline_segments", {"nseg": nseg})
                 if name == "pipeline_segments" else spec
                 for name, spec in zip(pass_names, passes)]
        schedule = apply_passes(schedule, specs)
    else:
        schedule = lower(lowering, shape, config.size, nseg=nseg)
        schedule = apply_passes(schedule, passes)
    return schedule.validate()


def scheduled_benchmark(config: ClusterConfig, build: MpiBuild, *,
                        lowering: str = "reduce.nab",
                        passes: Sequence = (), elements: int = 1024,
                        iterations: int = 20, warmup: int = 2,
                        tracer: Optional[Tracer] = None) -> ScheduledResult:
    """Time a schedule-driven collective; the root measures call-to-result."""
    from ..core.interpreter import execute_schedule
    size = config.size
    if size < 2:
        raise ValueError("scheduled benchmark needs at least two nodes")
    schedule = build_schedule(config, lowering=lowering, passes=passes,
                              elements=elements)
    expected = float(size * (size + 1) / 2)
    total_iters = warmup + iterations
    is_reduce = schedule.collective == "reduce"

    def program(mpi):
        skew_model = SkewModel(mpi.node.rng, config.noise, 0.0)
        rank = mpi.rank
        data = np.full(elements, float(rank + 1), dtype=np.float64)
        samples: list[float] = []
        for it in range(total_iters):
            yield from mpi.barrier()
            noise = skew_model.noise_delay(rank, it)
            yield from mpi.compute(noise)
            t0 = mpi.now
            result = yield from execute_schedule(
                mpi.mpi, schedule, data, SUM, comm=mpi.mpi.comm_world)
            if rank == 0:
                if it >= warmup:
                    samples.append(mpi.now - t0)
                if result is None or not np.allclose(result, expected):
                    raise AssertionError(
                        f"iteration {it}: schedule produced "
                        f"{None if result is None else result.flat[0]}, "
                        f"expected {expected}")
            elif not is_reduce and not np.allclose(result, expected):
                raise AssertionError(
                    f"iteration {it}: rank {rank} got {result.flat[0]}, "
                    f"expected {expected}")
        return samples if rank == 0 else None

    out = run_program(config, program, build=build, tracer=tracer)
    samples = np.asarray(out.results[0], dtype=np.float64)
    counters = out.sim_counters()
    return ScheduledResult(
        build=build,
        size=size,
        elements=elements,
        iterations=iterations,
        lowering=lowering,
        passes=tuple(p if isinstance(p, str) else p[0] for p in passes),
        tree_shape=schedule.meta_dict().get("shape", ""),
        nseg=schedule.nseg,
        steps=schedule.step_count,
        avg_latency_us=float(samples.mean()),
        median_latency_us=float(np.median(samples)),
        samples=samples,
        signals=out.cluster.total_signals(),
        summary=summarize(samples),
        events=counters["events"],
        ops=counters["ops"],
        sim_counters=dict(counters),
    )
