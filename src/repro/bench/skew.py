"""Process-skew and OS-noise generation for the microbenchmarks.

The paper (Sec. VI) injects, per node per iteration, a uniform random delay
in ``[0, max_skew]`` executed as a **busy loop** so that CPU consumed by
asynchronous processing is captured in the timed interval.  We reproduce
exactly that, plus a model of *naturally occurring* skew (base jitter and
occasional OS preemption spikes) that is **not** subtracted from the
measurements — the application cannot know about it, and it is what makes
the paper's no-skew results (Figs. 8-9) diverge as the node count grows.

All draws come from per-node named RNG streams, so adding iterations for one
node never perturbs another node's sequence.
"""

from __future__ import annotations

import numpy as np

from ..config import NoiseParams
from ..sim.random import RngStreams


class SkewModel:
    """Deterministic per-(node, iteration) delay generator."""

    def __init__(self, rng: RngStreams, noise: NoiseParams,
                 max_skew_us: float):
        if max_skew_us < 0:
            raise ValueError("max skew must be non-negative")
        self.noise = noise
        self.max_skew_us = max_skew_us
        self._rng = rng

    def _stream(self, purpose: str, node: int) -> np.random.Generator:
        return self._rng.node_stream(purpose, node)

    def skew_delay(self, node: int, iteration: int) -> float:
        """The paper's injected skew: uniform in [0, max_skew].

        This delay is known to the benchmark and subtracted from the
        measured time.
        """
        if self.max_skew_us == 0.0:
            return 0.0
        # One draw per iteration from the node's dedicated stream; the
        # iteration argument documents intent (draws are consumed in order).
        del iteration
        return float(self._stream("skew", node).uniform(0.0, self.max_skew_us))

    def noise_delay(self, node: int, iteration: int) -> float:
        """Naturally-occurring skew: NOT subtracted from measurements."""
        del iteration
        noise = self.noise
        total = 0.0
        stream = self._stream("noise", node)
        if noise.base_jitter_us > 0.0:
            total += float(stream.uniform(0.0, noise.base_jitter_us))
        if noise.spike_prob > 0.0:
            if float(stream.random()) < noise.spike_prob:
                total += float(stream.uniform(noise.spike_min_us,
                                              noise.spike_max_us))
        if noise.barrier_jitter_us > 0.0:
            total += float(stream.uniform(0.0, noise.barrier_jitter_us))
        return total


def conservative_latency_estimate(size: int, elements: int, *,
                                  shape=None) -> float:
    """Upper-bound guess for one reduction's latency, used to size the
    paper's *catch-up delay* ("the maximum skew delay plus a conservative
    estimate of the maximum reduction latency").

    Deliberately generous: the catch-up delay only has to be long enough to
    capture all asynchronous processing inside the timed window; it is
    subtracted back out of the measurement.

    ``shape`` (a :class:`repro.topo.TreeShape`) deepens the estimate for
    trees taller than binomial — e.g. a pipelined chain has ``size - 1``
    combining levels, not ``log2(size)``.  The binomial depth never
    exceeds the default, so passing the default shape changes nothing.
    """
    depth = max(1, (max(size, 2) - 1).bit_length())
    if shape is not None:
        depth = max(depth, shape.max_depth(size))
    per_hop = 25.0 + 0.02 * elements * 8
    return 100.0 + depth * per_hop


def arrival_spread_stats(trace, size: int, elements: int, *,
                         shape=None) -> dict:
    """Per-rank arrival-spread statistics for a workload trace, normalised
    against the same conservative latency estimate the skew machinery uses.

    Bridges the old skew metrics and the new workload layer: the returned
    dict (min/mean/max spread plus Proficz's imbalance factor
    ``arrival_kappa``) lands next to ``max_skew_us`` etc. in one BENCH
    json, so constant-skew and PAP-workload runs are directly comparable.
    Returns ``{}`` for ``trace is None`` (disarmed workload), keeping
    legacy BENCH payloads byte-identical.
    """
    if trace is None:
        return {}
    from ..workload import metrics
    reference = conservative_latency_estimate(size, elements, shape=shape)
    return metrics.describe(trace, reference)
