"""Summary statistics for benchmark sample sets.

The paper reports plain averages over 10,000 iterations; with far fewer
virtual-time iterations we attach dispersion and a normal-approximation
confidence interval so EXPERIMENTS.md claims are honest about their
resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SampleSummary:
    """Mean / dispersion summary of one benchmark sample set."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    #: Half-width of the ~95% confidence interval on the mean
    #: (1.96 * std / sqrt(n); normal approximation).
    ci95: float

    @property
    def relative_ci(self) -> float:
        """CI half-width as a fraction of the mean (0 when mean is 0)."""
        return self.ci95 / self.mean if self.mean else 0.0

    def __str__(self) -> str:
        return (f"{self.mean:.2f} ± {self.ci95:.2f} us "
                f"(n={self.n}, sd={self.std:.2f}, "
                f"range {self.minimum:.2f}..{self.maximum:.2f})")


def summarize(samples) -> SampleSummary:
    """Summarize a 1-D (or flattenable) array of samples."""
    arr = np.asarray(samples, dtype=np.float64).reshape(-1)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample set")
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return SampleSummary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
        ci95=1.96 * std / float(np.sqrt(arr.size)) if arr.size > 1 else 0.0,
    )


def factor_with_ci(numerator: SampleSummary,
                   denominator: SampleSummary) -> tuple[float, float]:
    """Ratio of means with a first-order-propagated ~95% CI half-width."""
    if denominator.mean == 0.0:
        raise ValueError("denominator mean is zero")
    factor = numerator.mean / denominator.mean
    rel = float(np.sqrt(numerator.relative_ci ** 2 +
                        denominator.relative_ci ** 2))
    return factor, factor * rel
