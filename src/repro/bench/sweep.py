"""Parameter-sweep driver shared by the figure experiments.

Every paper figure is a sweep of the CPU-utilization or latency benchmark
over one axis (skew, node count, message size) with two builds and one or
more message sizes.  Each grid cell is one independent, bit-deterministic
simulator run, so the grids are built as
:class:`~repro.orchestrate.points.SweepPoint` lists and executed through
:func:`~repro.orchestrate.runner.run_points` — serially for ``jobs=1``,
fanned out over worker processes otherwise, with identical metrics either
way.  The results come back as :class:`~repro.bench.report.Table` objects
with both the raw series and the factor-of-improvement (nab / ab) rows
the paper plots, plus the per-point results that feed ``BENCH_*.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..orchestrate.points import ConfigSpec, PointResult, SweepPoint
from ..orchestrate.runner import run_points
from .report import Table

SpecFactory = Callable[[int], ConfigSpec]

BUILD_TAGS = ("nab", "ab")


@dataclass
class SweepRun:
    """One executed grid: the rendered table, the raw per-cell benchmark
    results keyed like before, and the orchestrator point results."""

    table: Table
    raw: dict = field(default_factory=dict)
    points: list[PointResult] = field(default_factory=list)

    def __iter__(self):
        # Legacy unpacking: ``table, raw = sweep(...)`` still works.
        yield self.table
        yield self.raw


def _run_grid(points: list[SweepPoint], *, jobs: int,
              progress) -> list[PointResult]:
    return run_points(points, jobs=jobs, progress=progress)


def cpu_util_vs_skew(spec: ConfigSpec, *, skews: Sequence[float],
                     element_sizes: Sequence[int], iterations: int = 100,
                     warmup: int = 3, jobs: int = 1,
                     experiment: str = "fig6",
                     progress: Optional[Callable[[str], None]] = None
                     ) -> SweepRun:
    """Fig. 6 grid: fixed cluster, varying max skew and message size."""
    table = Table(
        f"Average CPU utilization vs. max skew ({spec.size} nodes)",
        "skew_us", skews)
    points = [
        SweepPoint(experiment=experiment, kind="cpu_util", config=spec,
                   build=tag, elements=elements, max_skew_us=skew,
                   iterations=iterations, warmup=warmup)
        for tag in BUILD_TAGS
        for elements in element_sizes
        for skew in skews
    ]
    results = _run_grid(points, jobs=jobs, progress=progress)
    raw: dict[tuple[str, int], list] = {}
    cursor = iter(results)
    for tag in BUILD_TAGS:
        for elements in element_sizes:
            cell = [next(cursor) for _ in skews]
            raw[(tag, elements)] = [r.result for r in cell]
            table.add_series(f"{tag}-{elements}",
                             [r.metrics["avg_util_us"] for r in cell])
    for elements in element_sizes:
        table.factor_series(f"factor-{elements}", f"nab-{elements}",
                            f"ab-{elements}")
    return SweepRun(table, raw, results)


def cpu_util_vs_nodes(spec_for_size: SpecFactory, *,
                      sizes: Sequence[int], element_sizes: Sequence[int],
                      max_skew_us: float, iterations: int = 100,
                      warmup: int = 3, jobs: int = 1,
                      experiment: str = "fig7",
                      progress: Optional[Callable[[str], None]] = None
                      ) -> SweepRun:
    """Fig. 7 / Fig. 8 grid: varying node count at a fixed skew."""
    table = Table(
        f"Average CPU utilization vs. nodes (max skew {max_skew_us:.0f}us)",
        "nodes", sizes)
    points = [
        SweepPoint(experiment=experiment, kind="cpu_util",
                   config=spec_for_size(size), build=tag, elements=elements,
                   max_skew_us=max_skew_us, iterations=iterations,
                   warmup=warmup)
        for tag in BUILD_TAGS
        for elements in element_sizes
        for size in sizes
    ]
    results = _run_grid(points, jobs=jobs, progress=progress)
    raw: dict[tuple[str, int], list] = {}
    cursor = iter(results)
    for tag in BUILD_TAGS:
        for elements in element_sizes:
            cell = [next(cursor) for _ in sizes]
            raw[(tag, elements)] = [r.result for r in cell]
            table.add_series(f"{tag}-{elements}",
                             [r.metrics["avg_util_us"] for r in cell])
    for elements in element_sizes:
        table.factor_series(f"factor-{elements}", f"nab-{elements}",
                            f"ab-{elements}")
    return SweepRun(table, raw, results)


def latency_vs_nodes(spec_for_size: SpecFactory, *,
                     sizes: Sequence[int], elements: int = 1,
                     iterations: int = 200, warmup: int = 3, jobs: int = 1,
                     experiment: str = "fig9",
                     progress: Optional[Callable[[str], None]] = None
                     ) -> SweepRun:
    """Fig. 9 grid: reduction latency vs. node count (no injected skew)."""
    table = Table(
        f"Total reduction latency vs. nodes ({elements}-element messages)",
        "nodes", sizes)
    points = [
        SweepPoint(experiment=experiment, kind="latency",
                   config=spec_for_size(size), build=tag, elements=elements,
                   iterations=iterations, warmup=warmup)
        for tag in BUILD_TAGS
        for size in sizes
    ]
    results = _run_grid(points, jobs=jobs, progress=progress)
    raw: dict[str, list] = {}
    cursor = iter(results)
    for tag in BUILD_TAGS:
        cell = [next(cursor) for _ in sizes]
        raw[tag] = [r.result for r in cell]
        table.add_series(tag, [r.metrics["avg_latency_us"] for r in cell])
    table.factor_series("ab/nab", "ab", "nab")
    return SweepRun(table, raw, results)


def latency_vs_message_size(spec: ConfigSpec, *,
                            element_sizes: Sequence[int],
                            iterations: int = 200, warmup: int = 3,
                            jobs: int = 1, experiment: str = "fig10",
                            progress: Optional[Callable[[str], None]] = None
                            ) -> SweepRun:
    """Fig. 10 grid: latency vs. message size on the full cluster."""
    table = Table(
        f"Total reduction latency vs. message size ({spec.size} nodes)",
        "elements", element_sizes)
    points = [
        SweepPoint(experiment=experiment, kind="latency", config=spec,
                   build=tag, elements=elements, iterations=iterations,
                   warmup=warmup)
        for tag in BUILD_TAGS
        for elements in element_sizes
    ]
    results = _run_grid(points, jobs=jobs, progress=progress)
    raw: dict[str, list] = {}
    cursor = iter(results)
    for tag in BUILD_TAGS:
        cell = [next(cursor) for _ in element_sizes]
        raw[tag] = [r.result for r in cell]
        table.add_series(tag, [r.metrics["avg_latency_us"] for r in cell])
    table.add_series("ab-nab gap",
                     [a.avg_latency_us - n.avg_latency_us
                      for a, n in zip(raw["ab"], raw["nab"])])
    return SweepRun(table, raw, results)
