"""Parameter-sweep driver shared by the figure experiments.

Every paper figure is a sweep of the CPU-utilization or latency benchmark
over one axis (skew, node count, message size) with two builds and one or
more message sizes.  This module runs those grids and returns
:class:`~repro.bench.report.Table` objects with both the raw series and the
factor-of-improvement (nab / ab) rows the paper plots.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..config import ClusterConfig
from ..mpich.rank import MpiBuild
from .cpu_util import CpuUtilResult, cpu_util_benchmark
from .latency import LatencyResult, latency_benchmark
from .report import Table

ConfigFactory = Callable[[int], ClusterConfig]


def cpu_util_vs_skew(config: ClusterConfig, *, skews: Sequence[float],
                     element_sizes: Sequence[int], iterations: int = 100,
                     warmup: int = 3,
                     progress: Optional[Callable[[str], None]] = None
                     ) -> tuple[Table, dict]:
    """Fig. 6 grid: fixed cluster, varying max skew and message size."""
    table = Table(
        f"Average CPU utilization vs. max skew ({config.size} nodes)",
        "skew_us", skews)
    raw: dict[tuple[str, int], list[CpuUtilResult]] = {}
    for build in (MpiBuild.DEFAULT, MpiBuild.AB):
        tag = "nab" if build is MpiBuild.DEFAULT else "ab"
        for elements in element_sizes:
            results = []
            for skew in skews:
                r = cpu_util_benchmark(config, build, elements=elements,
                                       max_skew_us=skew,
                                       iterations=iterations, warmup=warmup)
                results.append(r)
                if progress:
                    progress(str(r))
            raw[(tag, elements)] = results
            table.add_series(f"{tag}-{elements}",
                             [r.avg_util_us for r in results])
    for elements in element_sizes:
        table.factor_series(f"factor-{elements}", f"nab-{elements}",
                            f"ab-{elements}")
    return table, raw


def cpu_util_vs_nodes(config_for_size: ConfigFactory, *,
                      sizes: Sequence[int], element_sizes: Sequence[int],
                      max_skew_us: float, iterations: int = 100,
                      warmup: int = 3,
                      progress: Optional[Callable[[str], None]] = None
                      ) -> tuple[Table, dict]:
    """Fig. 7 / Fig. 8 grid: varying node count at a fixed skew."""
    table = Table(
        f"Average CPU utilization vs. nodes (max skew {max_skew_us:.0f}us)",
        "nodes", sizes)
    raw: dict[tuple[str, int], list[CpuUtilResult]] = {}
    for build in (MpiBuild.DEFAULT, MpiBuild.AB):
        tag = "nab" if build is MpiBuild.DEFAULT else "ab"
        for elements in element_sizes:
            results = []
            for size in sizes:
                r = cpu_util_benchmark(config_for_size(size), build,
                                       elements=elements,
                                       max_skew_us=max_skew_us,
                                       iterations=iterations, warmup=warmup)
                results.append(r)
                if progress:
                    progress(str(r))
            raw[(tag, elements)] = results
            table.add_series(f"{tag}-{elements}",
                             [r.avg_util_us for r in results])
    for elements in element_sizes:
        table.factor_series(f"factor-{elements}", f"nab-{elements}",
                            f"ab-{elements}")
    return table, raw


def latency_vs_nodes(config_for_size: ConfigFactory, *,
                     sizes: Sequence[int], elements: int = 1,
                     iterations: int = 200, warmup: int = 3,
                     progress: Optional[Callable[[str], None]] = None
                     ) -> tuple[Table, dict]:
    """Fig. 9 grid: reduction latency vs. node count (no injected skew)."""
    table = Table(
        f"Total reduction latency vs. nodes ({elements}-element messages)",
        "nodes", sizes)
    raw: dict[str, list[LatencyResult]] = {}
    for build in (MpiBuild.DEFAULT, MpiBuild.AB):
        tag = "nab" if build is MpiBuild.DEFAULT else "ab"
        results = []
        for size in sizes:
            r = latency_benchmark(config_for_size(size), build,
                                  elements=elements, iterations=iterations,
                                  warmup=warmup)
            results.append(r)
            if progress:
                progress(str(r))
        raw[tag] = results
        table.add_series(tag, [r.avg_latency_us for r in results])
    table.factor_series("ab/nab", "ab", "nab")
    return table, raw


def latency_vs_message_size(config: ClusterConfig, *,
                            element_sizes: Sequence[int],
                            iterations: int = 200, warmup: int = 3,
                            progress: Optional[Callable[[str], None]] = None
                            ) -> tuple[Table, dict]:
    """Fig. 10 grid: latency vs. message size on the full cluster."""
    table = Table(
        f"Total reduction latency vs. message size ({config.size} nodes)",
        "elements", element_sizes)
    raw: dict[str, list[LatencyResult]] = {}
    for build in (MpiBuild.DEFAULT, MpiBuild.AB):
        tag = "nab" if build is MpiBuild.DEFAULT else "ab"
        results = []
        for elements in element_sizes:
            r = latency_benchmark(config, build, elements=elements,
                                  iterations=iterations, warmup=warmup)
            results.append(r)
            if progress:
                progress(str(r))
        raw[tag] = results
        table.add_series(tag, [r.avg_latency_us for r in results])
    table.add_series("ab-nab gap",
                     [a.avg_latency_us - n.avg_latency_us
                      for a, n in zip(raw["ab"], raw["nab"])])
    return table, raw
