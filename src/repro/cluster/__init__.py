"""Cluster model: machine specs live in :mod:`repro.config`; this package
assembles them into simulated nodes and whole clusters."""

from .cluster import Cluster
from .node import Node, NodeCosts

__all__ = ["Cluster", "Node", "NodeCosts"]
