"""Cluster assembly: simulator + fabric + nodes, from a ClusterConfig."""

from __future__ import annotations

from typing import Optional

from ..analysis.invariants import make_default_monitor
from ..config import ClusterConfig
from ..network.fabric import Fabric
from ..sim.random import RngStreams
from ..sim.simulator import Simulator
from ..sim.trace import Tracer
from .node import Node


class Cluster:
    """A fully wired simulated cluster.

    Construction is cheap; nothing runs until processes are spawned (see
    :func:`repro.runtime.program.run_program`).
    """

    def __init__(self, config: ClusterConfig, tracer: Optional[Tracer] = None,
                 monitor=None):
        self.config = config
        self.tracer = tracer or Tracer()
        self.sim = Simulator(self.tracer)
        self.tracer.bind_clock(lambda: self.sim.now)
        self.rng = RngStreams(config.seed)
        self.fabric = Fabric(self.sim, config.net, config.size,
                             rng=self.rng.stream("fabric"))
        self.sim.add_counter_source(self.fabric.counters)
        self.nodes = [
            Node(self.sim, i, spec, config, self.fabric, self.tracer)
            for i, spec in enumerate(config.machines)
        ]
        for node in self.nodes:
            node.rng = self.rng
        #: Protocol-invariant monitor; explicit, or the process-wide
        #: default the test harness installs, or None (production).
        self.monitor = monitor if monitor is not None else \
            make_default_monitor()
        if self.monitor is not None:
            self.monitor.attach(self)

    @property
    def size(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def cpu_usage_table(self) -> list[dict[str, float]]:
        """Per-node CPU accounting snapshots (for reports and tests)."""
        return [n.cpu.usage_snapshot() for n in self.nodes]

    def total_signals(self) -> int:
        return sum(n.nic.stats.signals_raised for n in self.nodes)
