"""Cluster assembly: simulator + fabric + nodes, from a ClusterConfig."""

from __future__ import annotations

from typing import Optional

from ..analysis.invariants import make_default_monitor
from ..config import ClusterConfig
from ..network.fabric import Fabric
from ..sim.random import RngStreams
from ..sim.simulator import Simulator
from ..sim.trace import Tracer
from .node import Node


class Cluster:
    """A fully wired simulated cluster.

    Construction is cheap; nothing runs until processes are spawned (see
    :func:`repro.runtime.program.run_program`).
    """

    def __init__(self, config: ClusterConfig, tracer: Optional[Tracer] = None,
                 monitor=None):
        self.config = config
        self.tracer = tracer or Tracer()
        self.sim = Simulator(self.tracer)
        self.tracer.bind_clock(lambda: self.sim.now)
        self.rng = RngStreams(config.seed)
        self.fabric = Fabric(self.sim, config.net, config.size,
                             rng=self.rng.stream("fabric"))
        self.sim.add_counter_source(self.fabric.counters)
        self.nodes = [
            Node(self.sim, i, spec, config, self.fabric, self.tracer)
            for i, spec in enumerate(config.machines)
        ]
        for node in self.nodes:
            node.rng = self.rng
        #: Fault schedule (repro.faults); built only when an injector is
        #: armed, so a default config adds no streams, events or counters.
        self.faults = None
        if config.faults.armed:
            from ..faults import FaultSchedule
            self.faults = FaultSchedule(config.faults)
            self.faults.install(self)
            self.sim.add_counter_source(self.faults.counters)
        # GM reliability-protocol effort (satellite of the fault work):
        # exported whenever any NIC runs the go-back-N channel.
        if any(n.nic.reliable is not None for n in self.nodes):
            self.sim.add_counter_source(self._reliability_counters)
        # Pipelined-collective effort (repro.pipeline): exported only when
        # the config block is armed, so disarmed BENCH json is unchanged.
        if config.pipeline.armed:
            self.sim.add_counter_source(self._pipeline_counters)
        #: Process-arrival-pattern workload (repro.workload); built only
        #: when the config block is armed — a disarmed config draws no
        #: `workload/*` stream and registers no counter source, keeping the
        #: default simulation bit-identical to a pre-workload build.
        self.workload = None
        if config.workload.armed:
            from ..workload import WorkloadModel
            self.workload = WorkloadModel(config.workload, self.size,
                                          self.rng)
            self.sim.add_counter_source(self.workload.counters)
        #: Protocol-invariant monitor; explicit, or the process-wide
        #: default the test harness installs, or None (production).
        self.monitor = monitor if monitor is not None else \
            make_default_monitor()
        if self.monitor is not None:
            self.monitor.attach(self)

    @property
    def size(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def cpu_usage_table(self) -> list[dict[str, float]]:
        """Per-node CPU accounting snapshots (for reports and tests)."""
        return [n.cpu.usage_snapshot() for n in self.nodes]

    def total_signals(self) -> int:
        return sum(n.nic.stats.signals_raised for n in self.nodes)

    def _reliability_counters(self) -> dict:
        """Aggregate go-back-N protocol effort across every lossy NIC so
        BENCH json records how hard reliable delivery worked."""
        out = {
            "rel_acks_sent": 0, "rel_acks_received": 0,
            "rel_retransmissions": 0, "rel_duplicates_discarded": 0,
            "rel_gaps_discarded": 0, "rel_timer_fires": 0,
            "rel_max_window": 0,
        }
        for node in self.nodes:
            channel = node.nic.reliable
            if channel is None:
                continue
            s = channel.stats
            out["rel_acks_sent"] += s.acks_sent
            out["rel_acks_received"] += s.acks_received
            out["rel_retransmissions"] += s.retransmissions
            out["rel_duplicates_discarded"] += s.duplicates_discarded
            out["rel_gaps_discarded"] += s.gaps_discarded
            out["rel_timer_fires"] += s.timer_fires
            out["rel_max_window"] = max(out["rel_max_window"], s.max_window)
        return out

    def _pipeline_counters(self) -> dict:
        """Aggregate segmented-pipeline effort (repro.pipeline) across the
        cluster: engine-side window behaviour plus NIC-side segment
        traffic.  On the default (non-AB) build only the NIC counters move;
        the engine gauges stay zero."""
        out = {
            "segments_sent": 0, "segments_folded": 0,
            "segments_folded_async": 0, "root_segment_folds": 0,
            "pipeline_stalls": 0, "inflight_hwm": 0,
            "pipelined_reduces": 0, "pipelined_allreduces": 0,
            "stale_segments_dropped": 0,
            "segment_packets_sent": 0, "segment_bytes_sent": 0,
        }
        for node in self.nodes:
            nstats = node.nic.stats
            out["segment_packets_sent"] += nstats.segment_packets_sent
            out["segment_bytes_sent"] += nstats.segment_bytes_sent
            engine = getattr(node, "ab_engine", None)
            pipeline = getattr(engine, "pipeline", None)
            if pipeline is None:
                continue
            s = pipeline.stats
            out["segments_sent"] += s.segments_sent
            out["segments_folded"] += s.segments_folded
            out["segments_folded_async"] += s.segments_folded_async
            out["root_segment_folds"] += s.root_segment_folds
            out["pipeline_stalls"] += s.pipeline_stalls
            out["stale_segments_dropped"] += s.stale_segments_dropped
            out["pipelined_reduces"] += s.pipelined_reduces
            out["pipelined_allreduces"] += s.pipelined_allreduces
            out["inflight_hwm"] = max(out["inflight_hwm"], s.inflight_hwm)
        return out
