"""Host node model: one CPU, one NIC, resolved cost table.

:class:`NodeCosts` bakes the configuration's reference costs down to this
machine's clocks once at construction, so the hot paths (progress engine,
signal handlers) do plain attribute lookups and multiplies.
"""

from __future__ import annotations

from ..config import ClusterConfig, MachineSpec
from ..gm.memory import PinnedMemoryManager
from ..gm.nic import Nic
from ..sim.cpu import HostCpu
from ..sim.trace import Tracer
from ..topo.trees import make_tree_shape


class NodeCosts:
    """Per-node, post-scaling cost table (all values in microseconds)."""

    __slots__ = (
        "host_scale", "copy_us_per_byte",
        "match_us", "post_recv_us", "poll_empty_us", "call_overhead_us",
        "op_us_per_element", "tree_setup_us", "unexpected_insert_us",
        "host_send_overhead_us", "eager_limit_bytes",
        "ab_hook_us", "ab_decision_us", "ab_descriptor_us",
        "ab_descriptor_match_us", "ab_reuse_mgmt_us", "ab_eager_limit_bytes",
    )

    def __init__(self, spec: MachineSpec, config: ClusterConfig):
        mpi = config.mpi
        ab = config.ab
        hs = spec.host_scale()
        self.host_scale = hs
        self.copy_us_per_byte = 1.0 / spec.memcpy_bytes_per_us
        self.match_us = mpi.match_us * hs
        self.post_recv_us = mpi.post_recv_us * hs
        self.poll_empty_us = mpi.poll_empty_us * hs
        self.call_overhead_us = mpi.call_overhead_us * hs
        self.op_us_per_element = mpi.op_us_per_element * hs
        self.tree_setup_us = mpi.tree_setup_us * hs
        self.unexpected_insert_us = mpi.unexpected_insert_us * hs
        self.host_send_overhead_us = config.nic.host_send_overhead_us * hs
        self.eager_limit_bytes = mpi.eager_limit_bytes
        self.ab_hook_us = ab.progress_hook_us * hs
        self.ab_decision_us = ab.decision_us * hs
        self.ab_descriptor_us = ab.descriptor_us * hs
        self.ab_descriptor_match_us = ab.descriptor_match_us * hs
        self.ab_reuse_mgmt_us = ab.reuse_mgmt_us * hs
        self.ab_eager_limit_bytes = ab.eager_limit_bytes

    def copy_us(self, nbytes: int) -> float:
        """Host memory-copy cost for ``nbytes``."""
        return nbytes * self.copy_us_per_byte

    def op_us(self, elements: int) -> float:
        """Reduction arithmetic cost for ``elements`` double words."""
        return elements * self.op_us_per_element


class Node:
    """One cluster node (host CPU + GM NIC + pinned-memory manager)."""

    def __init__(self, sim, node_id: int, spec: MachineSpec,
                 config: ClusterConfig, fabric, tracer: Tracer):
        self.sim = sim
        self.id = node_id
        self.spec = spec
        self.config = config
        self.tracer = tracer
        self.cpu = HostCpu(sim, name=f"cpu[{node_id}]")
        self.costs = NodeCosts(spec, config)
        self.nic = Nic(
            sim, node_id, config.nic,
            lanai_scale=spec.lanai_scale(),
            host_scale=spec.host_scale(),
            dma_bytes_per_us=spec.pci_bytes_per_us,
            fabric=fabric,
            cpu=self.cpu,
            tracer=tracer,
            net_params=config.net,
            force_reliable=config.faults.burst_prob > 0.0,
        )
        self.pinned = PinnedMemoryManager(config.nic, spec.host_scale())
        #: Collective tree shape shared by MPI collectives and the AB
        #: engines (every node computes the identical tree).  With
        #: ``tree_shape="auto"`` this is the deterministic fallback shape;
        #: collectives resolve per message size via :meth:`tree_shape_for`.
        self._auto_tree = config.mpi.tree_shape == "auto"
        self.tree_shape = make_tree_shape(
            "binomial" if self._auto_tree else config.mpi.tree_shape,
            radix=config.mpi.tree_radix)
        #: Deterministic RNG streams; installed by Cluster right after
        #: construction (shared across the whole cluster).
        self.rng = None
        #: Crash oracle ``(rank, now) -> bool`` installed by an armed
        #: FaultSchedule; None on fault-free clusters.
        self.crash_oracle = None
        #: The AB engine bound to this node's rank, registered by
        #: AbEngine.__init__ so fault counters can reach its stats.
        self.ab_engine = None
        #: Tenant tags set by repro.tenancy when this node's slot is
        #: granted to a job; None on single-job clusters and idle hosts.
        #: The invariant monitor copies them into every violation so
        #: INV-* reports from co-tenant runs name the tenant.
        self.job_id = None
        self.job_name = None

    def tree_shape_for(self, nbytes: int):
        """Tree shape for a payload of ``nbytes``.

        Static configs always return the shared :attr:`tree_shape` object;
        ``tree_shape="auto"`` consults the tuning table
        (:mod:`repro.schedule.table`) with a deterministic binomial
        fallback.  All nodes share the config, so every rank resolves the
        identical shape without negotiation.
        """
        if not self._auto_tree:
            return self.tree_shape
        from ..schedule.table import resolve_tree_shape
        return resolve_tree_shape(self.config, nbytes)

    def pipeline_params_for(self, nbytes: int):
        """Concrete pipeline params for a payload of ``nbytes``.

        Static configs return ``config.pipeline`` unchanged;
        ``segment_size_bytes="auto"`` consults the tuning table with a
        deterministic disarmed fallback.
        """
        params = self.config.pipeline
        if params.segment_size_bytes != "auto":
            return params
        from ..schedule.table import resolve_pipeline_params
        return resolve_pipeline_params(self.config, nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.id} {self.spec.name}>"
