"""Configuration dataclasses and the paper's cluster presets.

Every timing constant in the model lives here.  The values are calibrated to
the hardware the paper used (Sec. VI): Myrinet-2000 (2 Gbit/s), LANai 9.x
NICs, Pentium-III hosts of two classes, MPICH 1.2.4..8a over GM 1.5.2.1 with
GM's eager/rendezvous split.  Absolute microseconds are *era-plausible*, not
authoritative; what the reproduction commits to is the cost *structure*
(polling-vs-signal trade-off, copy counts, per-hop accumulation) — see
DESIGN.md §6.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigError
from .units import gbit_per_s

# ---------------------------------------------------------------------------
# machine specifications (paper Sec. VI, first paragraph)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MachineSpec:
    """One hardware class of the paper's heterogeneous cluster."""

    name: str
    cpu_mhz: int                 # host processor clock
    lanai_mhz: int               # NIC processor clock (LANai 9.x)
    pci_bytes_per_us: float      # effective DMA bandwidth over the PCI bus
    memcpy_bytes_per_us: float   # effective host memory-copy bandwidth

    def host_scale(self, reference_mhz: int = 1000) -> float:
        """Multiplier for host CPU costs relative to a 1 GHz reference."""
        return reference_mhz / float(self.cpu_mhz)

    def lanai_scale(self, reference_mhz: int = 200) -> float:
        """Multiplier for NIC processing costs relative to LANai 9.2."""
        return reference_mhz / float(self.lanai_mhz)


#: 700 MHz quad-SMP Pentium-III, 66 MHz/64-bit PCI, LANai 9.1 (PCI64B).
MACHINE_P3_700 = MachineSpec(
    name="p3-700/pci64b",
    cpu_mhz=700,
    lanai_mhz=133,
    pci_bytes_per_us=350.0,    # 66 MHz x 64 bit = 528 B/us peak; ~2/3 effective
    memcpy_bytes_per_us=400.0,
)

#: 1 GHz dual-SMP Pentium-III, 33 MHz/32-bit PCI.  Four of these carried
#: PCI64C cards with 200 MHz LANai 9.2; the paper notes the PCI/NIC spread
#: barely matters for small reductions.
MACHINE_P3_1000 = MachineSpec(
    name="p3-1000/pci64b",
    cpu_mhz=1000,
    lanai_mhz=133,
    pci_bytes_per_us=100.0,    # 33 MHz x 32 bit = 132 B/us peak
    memcpy_bytes_per_us=600.0,
)

#: The four 1 GHz nodes with PCI64C / LANai 9.2 cards.
MACHINE_P3_1000_L92 = MachineSpec(
    name="p3-1000/pci64c",
    cpu_mhz=1000,
    lanai_mhz=200,
    pci_bytes_per_us=100.0,
    memcpy_bytes_per_us=600.0,
)


# ---------------------------------------------------------------------------
# substrate parameter blocks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NicParams:
    """GM / LANai cost model (per-NIC, scaled by the machine's LANai clock)."""

    #: LANai control-program time to stage one outgoing packet (at 200 MHz).
    lanai_send_us: float = 1.2
    #: LANai time to accept one incoming packet and start host DMA.
    lanai_recv_us: float = 1.2
    #: Fixed DMA engine start-up cost per transfer.
    dma_setup_us: float = 0.3
    #: Host-side cost of handing a send to GM (token + doorbell write).
    host_send_overhead_us: float = 0.7
    #: Kernel signal delivery + handler entry/exit on the host CPU.  This is
    #: the central "interrupt overhead" knob of the paper (Sec. IV-A).
    signal_overhead_us: float = 5.0
    #: Latency from DMA completion to the host handler starting.
    signal_dispatch_us: float = 2.0
    #: Extra LANai processing for an AB-collective packet while signals are
    #: enabled at the receiving NIC: the modified control program takes the
    #: interrupt-raising path instead of the plain deposit path.  This is
    #: the per-hop delivery cost behind the paper's Fig. 9/10 latency
    #: penalty ("overhead from signals associated with late messages").
    ab_rx_extra_us: float = 4.0
    #: Cost of the GM library calls that flip signal generation on/off
    #: (paper Sec. V-A adds these entry points to the MPICH layer).
    signal_toggle_us: float = 0.3
    #: Pinned-memory registration: base syscall + per-4KiB-page cost
    #: (rendezvous mode only).
    pin_base_us: float = 5.0
    pin_per_page_us: float = 0.6
    unpin_base_us: float = 3.0
    #: GM flow control: send tokens bound the number of sends a host may
    #: have outstanding at its NIC; receive tokens are the pre-provided
    #: receive buffers.  GM's defaults are generous enough that the paper's
    #: small-message reductions never block on them, but the model enforces
    #: them so saturation behaviour is honest.
    send_tokens: int = 16
    recv_tokens: int = 64
    #: LANai-side arithmetic cost per double-word element, used by the
    #: NIC-based reduction extension (refs. [10]/[11]: the NIC processor is
    #: roughly an order of magnitude slower than the host at combining).
    nic_op_us_per_element: float = 0.08


@dataclass(frozen=True)
class NetParams:
    """Myrinet-2000 fabric model."""

    #: Full-duplex link rate (2 Gbit/s).
    link_bytes_per_us: float = field(default_factory=lambda: gbit_per_s(2.0))
    #: Cut-through latency of the 32-port crossbar switch.
    switch_latency_us: float = 0.35
    #: Cable/propagation delay per traversal.
    cable_latency_us: float = 0.1
    #: GM packet header+CRC bytes added to every payload on the wire.
    header_bytes: int = 40
    #: Fault injection: probability that the fabric drops any given packet.
    #: When non-zero, the NICs run GM's reliable-delivery protocol
    #: (go-back-N with ACKs and retransmit timers); at the default 0.0 the
    #: protocol is bypassed, as its traffic is invisible on a loss-free
    #: fabric.
    drop_prob: float = 0.0
    #: Retransmission timeout for the reliable-delivery protocol.
    retransmit_timeout_us: float = 120.0
    #: Interconnect topology (see ``repro.topo.TOPOLOGIES``): "crossbar"
    #: (the paper's single 32-port switch), "fattree" (two-level Clos) or
    #: "torus" (2D, dimension-order routing).
    topology: str = "crossbar"
    #: Fat-tree: hosts per edge switch.
    fattree_hosts_per_switch: int = 8
    #: Fat-tree: host-port to uplink bandwidth ratio (1.0 = full
    #: bisection; 2.0 = half as many uplinks as host ports).
    fattree_oversubscription: float = 1.0
    #: Torus: X extent of the grid; 0 auto-factors the node count into
    #: the most-square W x H arrangement.
    torus_width: int = 0


@dataclass(frozen=True)
class MpiParams:
    """MPICH-over-GM layer cost model (at the 1 GHz host reference)."""

    #: GM eager/rendezvous switch-over (MPICH-GM default is 16 KiB).
    eager_limit_bytes: int = 16384
    #: Envelope matching against the posted-receive / unexpected queues.
    match_us: float = 0.5
    #: Posting a receive descriptor.
    post_recv_us: float = 0.4
    #: One progress-engine poll iteration that finds nothing.
    poll_empty_us: float = 0.2
    #: Per-call entry overhead of any MPI function.
    call_overhead_us: float = 0.4
    #: Reduction arithmetic per element (double-word ALU op + load/store).
    op_us_per_element: float = 0.008
    #: Fixed part of computing the binomial tree / rank arithmetic.
    tree_setup_us: float = 0.3
    #: Allocating + enqueueing an unexpected-queue entry (excl. the copy).
    unexpected_insert_us: float = 0.3
    #: Reduction/broadcast tree shape (see ``repro.topo.TREE_SHAPES``):
    #: "binomial" (MPICH default), "knomial", "chain" or "bine" — or
    #: "auto", which consults the persisted tuning table
    #: (``repro.schedule.table``) per message size, falling back to
    #: binomial when no entry matches.
    tree_shape: str = "binomial"
    #: Radix for shapes that take one (k-nomial); ignored by the rest.
    tree_radix: int = 2


@dataclass(frozen=True)
class AbParams:
    """Application-bypass build configuration (the paper's contribution)."""

    #: Exit-delay heuristic (Sec. IV-E): "none", "fixed", "log" or "linear".
    #: The paper calls this optimization experimental ("we are still
    #: investigating these issues"); the reported results match the
    #: heuristic being off, so "none" is the default and the other policies
    #: are exercised by the ablation benchmarks.
    exit_delay_policy: str = "none"
    #: Coefficient: window = coeff * log2(size) ("log"), coeff * size
    #: ("linear"), or just coeff ("fixed").
    exit_delay_coeff_us: float = 2.0
    #: Poll granularity while lingering inside the exit-delay window.
    exit_delay_poll_us: float = 0.5
    #: Messages larger than this fall back to the default nab reduction
    #: (the paper implements eager mode only).
    eager_limit_bytes: int = 16384
    #: Per-packet cost of the progress-engine pre-processing hook that the
    #: AB build adds for *every* incoming packet (Fig. 4, gray boxes).
    progress_hook_us: float = 0.25
    #: Per-call cost of deciding ab-vs-fallback and checking signal state.
    decision_us: float = 0.8
    #: Building + enqueueing a reduce descriptor.
    descriptor_us: float = 0.7
    #: Matching one packet against the descriptor queue.
    descriptor_match_us: float = 0.4
    #: Ablation (Sec. V-A): model the rejected design that reuses MPICH's
    #: non-blocking primitives — costs an extra buffer copy per child and
    #: extra management overhead per message.
    reuse_mpich_queues: bool = False
    reuse_mgmt_us: float = 0.9


@dataclass(frozen=True)
class NoiseParams:
    """Naturally occurring process skew (OS daemons, timer ticks...).

    The paper's Sec. VI-B results hinge on this: "Even though we are not
    introducing artificial process skew, the effects of naturally-occurring
    skew appear as the number of nodes involved ... increases."
    """

    #: Uniform per-iteration entry jitter in [0, base_jitter_us].
    base_jitter_us: float = 1.5
    #: Probability, per node per iteration, of an OS preemption spike.
    spike_prob: float = 0.04
    #: Spike duration drawn uniformly from [spike_min_us, spike_max_us].
    spike_min_us: float = 20.0
    spike_max_us: float = 120.0
    #: Extra jitter applied to barrier exit.
    barrier_jitter_us: float = 0.5

    def validate(self) -> None:
        if not (0.0 <= self.spike_prob <= 1.0):
            raise ConfigError(f"spike_prob out of range: {self.spike_prob}")
        if self.spike_min_us > self.spike_max_us:
            raise ConfigError("spike_min_us > spike_max_us")


#: A noiseless variant, useful for unit tests and deterministic examples.
NO_NOISE = NoiseParams(base_jitter_us=0.0, spike_prob=0.0, barrier_jitter_us=0.0)


@dataclass(frozen=True)
class FaultParams:
    """Deterministic fault-injection schedule (see ``repro.faults``).

    Every field defaults to *disarmed*: with a default ``FaultParams`` no
    injector is instantiated, no extra RNG stream is drawn and no event is
    scheduled, so the simulation is bit-identical to a build without the
    fault subsystem.  Each armed injector draws from its own named RNG
    stream (``faults.<name>``), keeping the baseline streams untouched.
    """

    # -- packet_loss_burst: correlated drop bursts on the fabric --------
    #: Probability that any given packet *starts* a loss burst (layered on
    #: top of the independent Bernoulli ``NetParams.drop_prob``).  Arming
    #: this forces the GM reliable-delivery protocol on even when
    #: ``drop_prob`` is zero.
    burst_prob: float = 0.0
    #: Packets destroyed per burst (the trigger packet included).
    burst_len: int = 4

    # -- link_degrade: time-windowed bandwidth/latency degradation ------
    #: Degradation window [start, end) in simulation microseconds; the
    #: injector is armed only when the window is non-empty and at least
    #: one factor exceeds 1.
    degrade_start_us: float = 0.0
    degrade_end_us: float = 0.0
    #: Per-hop latency multiplier inside the window (1.0 = unchanged).
    degrade_latency_factor: float = 1.0
    #: Serialization-time multiplier inside the window (1.0 = unchanged).
    degrade_bandwidth_factor: float = 1.0
    #: Source nodes whose egress traffic is degraded; empty = every link.
    degrade_links: tuple = ()

    # -- nic_signal_suppress: swallow AB collective signals -------------
    #: Node whose NIC stops raising signals during the window (-1 = off).
    #: The AB engine must survive on the Fig.-3 synchronous path alone.
    suppress_node: int = -1
    suppress_start_us: float = 0.0
    suppress_end_us: float = 0.0

    # -- rank_pause: freeze one rank's CPU (generalized straggler) ------
    pause_rank: int = -1
    pause_at_us: float = 0.0
    pause_duration_us: float = 0.0

    # -- rank_crash: permanent fail-stop mid-run ------------------------
    crash_rank: int = -1
    crash_at_us: float = 0.0

    # -- recovery layer (repro.core) ------------------------------------
    #: Per-descriptor timeout for pending children (0 = recovery off).
    descriptor_timeout_us: float = 0.0
    #: Timeouts tolerated before the remaining children are abandoned and
    #: the partial result is propagated (honestly reported, INV-FAULT).
    timeout_retries: int = 3
    #: Reassign a crashed child's subtree to its nearest live ancestor
    #: using the TreeShape interface (needs the crash schedule's
    #: deterministic failure oracle; see DESIGN.md §10).
    tree_heal: bool = False

    def __post_init__(self) -> None:
        # JSON round trips hand lists back; keep the block hashable.
        if not isinstance(self.degrade_links, tuple):
            object.__setattr__(self, "degrade_links",
                               tuple(self.degrade_links))

    def validate(self) -> None:
        if not (0.0 <= self.burst_prob <= 1.0):
            raise ConfigError(f"burst_prob out of range: {self.burst_prob}")
        if self.burst_len < 1:
            raise ConfigError(f"burst_len must be >= 1: {self.burst_len}")
        if self.degrade_end_us < self.degrade_start_us:
            raise ConfigError("degrade_end_us < degrade_start_us")
        if (self.degrade_latency_factor < 1.0
                or self.degrade_bandwidth_factor < 1.0):
            raise ConfigError("degrade factors must be >= 1.0 (a fault "
                              "cannot speed the fabric up)")
        if self.suppress_end_us < self.suppress_start_us:
            raise ConfigError("suppress_end_us < suppress_start_us")
        if self.pause_rank >= 0 and self.pause_duration_us <= 0.0:
            raise ConfigError("pause_rank armed with a non-positive "
                              "pause_duration_us")
        if self.descriptor_timeout_us < 0.0:
            raise ConfigError("descriptor_timeout_us must be >= 0")
        if self.timeout_retries < 0:
            raise ConfigError("timeout_retries must be >= 0")

    @property
    def degrade_armed(self) -> bool:
        return (self.degrade_end_us > self.degrade_start_us
                and (self.degrade_latency_factor > 1.0
                     or self.degrade_bandwidth_factor > 1.0))

    @property
    def suppress_armed(self) -> bool:
        return (self.suppress_node >= 0
                and self.suppress_end_us > self.suppress_start_us)

    @property
    def armed(self) -> bool:
        """True when at least one injector would be instantiated."""
        return (self.burst_prob > 0.0
                or self.degrade_armed
                or self.suppress_armed
                or self.pause_rank >= 0
                or self.crash_rank >= 0)


@dataclass(frozen=True)
class PipelineParams:
    """Segmented, pipelined collectives (see ``repro.pipeline``).

    Defaults to *disarmed*: with ``segment_size_bytes == 0`` no segmenter
    is built, no counter source is registered and every collective takes
    today's whole-message path, so the simulation stays bit-identical to a
    build without the pipeline subsystem (same guarantee style as
    :class:`FaultParams`).
    """

    #: Target segment payload size in bytes; 0 disarms the subsystem.
    #: Messages that split into fewer than two segments keep the
    #: whole-message path, so the arming decision is a pure function of
    #: message size and is globally consistent across ranks.  The string
    #: "auto" consults the persisted tuning table per message size
    #: (``repro.schedule.table``), falling back to disarmed when no entry
    #: matches.
    segment_size_bytes: "int | str" = 0
    #: Maximum number of per-segment reduce descriptors an internal node
    #: keeps open at once (the in-flight window per child; later segments
    #: open as earlier ones complete, driven by the asynchronous side).
    max_inflight_segments: int = 4
    #: Segment schedule: "fixed" cuts equal chunks of ``segment_size_bytes``;
    #: "greedy" starts at a quarter of that and doubles per segment up to
    #: the cap (Lowery & Langou: small head segments prime the pipe, large
    #: tail segments amortize per-segment overhead).
    schedule: str = "fixed"

    def validate(self) -> None:
        if isinstance(self.segment_size_bytes, str):
            if self.segment_size_bytes != "auto":
                raise ConfigError(
                    f"segment_size_bytes must be an int >= 0 or 'auto': "
                    f"{self.segment_size_bytes!r}")
        elif self.segment_size_bytes < 0:
            raise ConfigError(
                f"segment_size_bytes must be >= 0: {self.segment_size_bytes}")
        if self.max_inflight_segments < 1:
            raise ConfigError(
                f"max_inflight_segments must be >= 1: "
                f"{self.max_inflight_segments}")
        if self.schedule not in ("fixed", "greedy"):
            raise ConfigError(
                f"unknown pipeline schedule {self.schedule!r}; "
                f"known: fixed, greedy")

    @property
    def armed(self) -> bool:
        """True when collectives may be segmented."""
        if self.segment_size_bytes == "auto":
            return True
        return self.segment_size_bytes > 0


#: Arrival patterns ``WorkloadParams.pattern`` may name; mirrored by the
#: generator registry in ``repro.workload.patterns`` (which asserts the two
#: stay in sync, so config validation never imports the workload package).
WORKLOAD_PATTERNS = ("none", "constant", "uniform_random", "bursty",
                     "compute_coupled", "trace_replay")


@dataclass(frozen=True)
class WorkloadParams:
    """Process-arrival-pattern workload (see ``repro.workload``).

    Defaults to *disarmed*: with ``pattern == "none"`` no
    :class:`~repro.workload.WorkloadModel` is built, no RNG stream is
    drawn, no counter source is registered and every collective entry is
    untouched, so the simulation stays bit-identical to a build without
    the workload subsystem (same guarantee style as :class:`FaultParams`
    and :class:`PipelineParams`).  Armed generators draw from per-rank
    named streams (``workload/<rank>``), keeping the baseline streams
    untouched.
    """

    #: Arrival pattern name (see :data:`WORKLOAD_PATTERNS`); "none" disarms.
    pattern: str = "none"
    #: Base arrival-delay scale in microseconds (the pattern's amplitude):
    #: the constant offset, the uniform upper bound, the bursty straggler
    #: delay, or the compute-coupled median phase length.
    scale_us: float = 0.0
    #: Uniform per-rank jitter in [0, jitter_us] layered on top (bursty's
    #: non-straggler baseline noise).
    jitter_us: float = 0.0
    #: Bursty: fraction of ranks in the correlated straggler set.
    straggler_frac: float = 0.25
    #: Bursty: number of independent straggler groups the set splits into
    #: (each group shares one delay draw per iteration — correlated
    #: arrival, the pattern PAP-aware algorithms exploit).
    straggler_groups: int = 1
    #: Compute-coupled: log-normal sigma of the per-rank compute phase
    #: (arrival = scale_us * lognormal(0, sigma); heavier tails = more
    #: imbalance).
    compute_sigma: float = 1.0
    #: Trace-replay: per-iteration tuples of per-rank delays (us).  Rows
    #: cycle when the run needs more iterations than the trace holds.
    trace: tuple = ()

    def __post_init__(self) -> None:
        # JSON round trips hand lists back; keep the block hashable.
        if not isinstance(self.trace, tuple) or any(
                not isinstance(row, tuple) for row in self.trace):
            object.__setattr__(
                self, "trace", tuple(tuple(row) for row in self.trace))

    def validate(self) -> None:
        if self.pattern not in WORKLOAD_PATTERNS:
            raise ConfigError(
                f"unknown workload pattern {self.pattern!r}; "
                f"known: {', '.join(WORKLOAD_PATTERNS)}")
        if self.scale_us < 0.0:
            raise ConfigError(f"scale_us must be >= 0: {self.scale_us}")
        if self.jitter_us < 0.0:
            raise ConfigError(f"jitter_us must be >= 0: {self.jitter_us}")
        if not (0.0 < self.straggler_frac <= 1.0):
            raise ConfigError(
                f"straggler_frac out of (0, 1]: {self.straggler_frac}")
        if self.straggler_groups < 1:
            raise ConfigError(
                f"straggler_groups must be >= 1: {self.straggler_groups}")
        if self.compute_sigma <= 0.0:
            raise ConfigError(
                f"compute_sigma must be > 0: {self.compute_sigma}")
        if self.pattern == "trace_replay" and not self.trace:
            raise ConfigError("trace_replay armed with an empty trace")
        for it, row in enumerate(self.trace):
            if not row:
                raise ConfigError(f"trace row {it} is empty")
            if len(row) != len(self.trace[0]):
                raise ConfigError(
                    f"trace row {it} has {len(row)} rank(s), row 0 has "
                    f"{len(self.trace[0])} — the trace must be rectangular")
            if any(d < 0.0 for d in row):
                raise ConfigError(f"trace row {it} has a negative delay")

    @property
    def armed(self) -> bool:
        """True when a WorkloadModel would be instantiated."""
        return self.pattern != "none"


# ---------------------------------------------------------------------------
# cluster-level configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to instantiate a simulated cluster."""

    machines: tuple[MachineSpec, ...]
    nic: NicParams = NicParams()
    net: NetParams = NetParams()
    mpi: MpiParams = MpiParams()
    ab: AbParams = AbParams()
    noise: NoiseParams = NoiseParams()
    seed: int = 12345
    faults: FaultParams = FaultParams()
    pipeline: PipelineParams = PipelineParams()
    workload: WorkloadParams = WorkloadParams()

    def __post_init__(self) -> None:
        if len(self.machines) < 1:
            raise ConfigError("cluster needs at least one node")
        self.noise.validate()
        self.faults.validate()
        self.pipeline.validate()
        self.workload.validate()

    @property
    def size(self) -> int:
        return len(self.machines)

    def with_size(self, n: int) -> "ClusterConfig":
        """First ``n`` nodes of this roster (paper: interlaced machine list,
        so any prefix is a balanced mix)."""
        if not (1 <= n <= len(self.machines)):
            raise ConfigError(f"size {n} outside 1..{len(self.machines)}")
        return replace(self, machines=self.machines[:n])

    def with_seed(self, seed: int) -> "ClusterConfig":
        return replace(self, seed=seed)

    def with_noise(self, noise: NoiseParams) -> "ClusterConfig":
        return replace(self, noise=noise)

    def with_ab(self, ab: AbParams) -> "ClusterConfig":
        return replace(self, ab=ab)

    def with_nic(self, nic: NicParams) -> "ClusterConfig":
        return replace(self, nic=nic)

    def with_net(self, net: NetParams) -> "ClusterConfig":
        return replace(self, net=net)

    def with_mpi(self, mpi: MpiParams) -> "ClusterConfig":
        return replace(self, mpi=mpi)

    def with_faults(self, faults: FaultParams) -> "ClusterConfig":
        return replace(self, faults=faults)

    def with_pipeline(self, pipeline: PipelineParams) -> "ClusterConfig":
        return replace(self, pipeline=pipeline)

    def with_workload(self, workload: WorkloadParams) -> "ClusterConfig":
        return replace(self, workload=workload)


def interlaced_roster(total: int = 32) -> tuple[MachineSpec, ...]:
    """The paper's machine file: the two 16-node groups interlaced so that
    "a balanced mix of nodes" appears at every system size.

    Four of the 1 GHz nodes carry the faster LANai 9.2 cards; we spread them
    evenly through the fast group's slots (positions 1, 9, 17, 25).
    """
    if not (1 <= total <= 32):
        raise ConfigError(f"paper cluster has up to 32 nodes, asked for {total}")
    roster: list[MachineSpec] = []
    l92_slots = {1, 9, 17, 25}
    for i in range(total):
        if i % 2 == 0:
            roster.append(MACHINE_P3_700)
        elif i in l92_slots:
            roster.append(MACHINE_P3_1000_L92)
        else:
            roster.append(MACHINE_P3_1000)
    return tuple(roster)


def paper_cluster(size: int = 32, *, seed: int = 12345,
                  noise: Optional[NoiseParams] = None,
                  ab: Optional[AbParams] = None) -> ClusterConfig:
    """The heterogeneous 32-node evaluation cluster (Figs. 6-10)."""
    return ClusterConfig(
        machines=interlaced_roster(size),
        noise=noise if noise is not None else NoiseParams(),
        ab=ab if ab is not None else AbParams(),
        seed=seed,
    )


def homogeneous_cluster(size: int = 16, *, machine: MachineSpec = MACHINE_P3_700,
                        seed: int = 12345,
                        noise: Optional[NoiseParams] = None) -> ClusterConfig:
    """The homogeneous 16-node (700 MHz) cluster of Fig. 9(b)."""
    if size < 1:
        raise ConfigError("size must be >= 1")
    return ClusterConfig(
        machines=tuple([machine] * size),
        noise=noise if noise is not None else NoiseParams(),
        seed=seed,
    )


def extrapolated_cluster(size: int, *, seed: int = 12345,
                         noise: Optional[NoiseParams] = None) -> ClusterConfig:
    """A what-if cluster larger than the paper's 32 nodes, built by tiling
    the same interlaced two-class mix (for the scalability-extrapolation
    experiment: the paper predicts its advantage keeps growing with
    system size).
    """
    if size < 1:
        raise ConfigError("size must be >= 1")
    base = interlaced_roster(32)
    machines = tuple(base[i % 32] for i in range(size))
    return ClusterConfig(
        machines=machines,
        noise=noise if noise is not None else NoiseParams(),
        seed=seed,
    )


def quiet_cluster(size: int, *, seed: int = 0) -> ClusterConfig:
    """Homogeneous, noise-free cluster — the workhorse of the unit tests."""
    return ClusterConfig(
        machines=tuple([MACHINE_P3_1000] * size),
        noise=NO_NOISE,
        seed=seed,
    )
