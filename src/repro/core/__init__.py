"""The paper's contribution: application-bypass reduction.

* :class:`~repro.core.engine.AbEngine` — synchronous component (Fig. 3),
  progress hook (Fig. 4) and asynchronous completion (Fig. 5)
* :class:`~repro.core.descriptor.ReduceDescriptor` /
  :class:`~repro.core.descriptor.DescriptorQueue` — intermediate state
* :class:`~repro.core.unexpected.AbUnexpectedQueue` — the custom one-copy
  unexpected queue
* :func:`~repro.core.delay.exit_delay_window` — the Sec. IV-E heuristic
"""

from .broadcast import AbBroadcast
from .delay import POLICIES, exit_delay_window
from .descriptor import DescriptorQueue, ReduceDescriptor
from .engine import AbEngine, AbStats
from .nic_reduce import NicReduce, NicReduceUnit
from .split_phase import ReduceHandle, SplitPhaseReduce
from .unexpected import AbUnexpectedEntry, AbUnexpectedQueue

__all__ = [
    "AbEngine", "AbStats",
    "ReduceDescriptor", "DescriptorQueue",
    "AbUnexpectedQueue", "AbUnexpectedEntry",
    "exit_delay_window", "POLICIES",
    "AbBroadcast", "SplitPhaseReduce", "ReduceHandle",
    "NicReduce", "NicReduceUnit",
]
