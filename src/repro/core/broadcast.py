"""Application-bypass broadcast (the paper's companion work, ref. [8]:
Buntinas, Panda & Brightwell, "Application-Bypass Broadcast in MPICH over
GM", CCGrid 2003).

A broadcast travels down the same binomial tree the reduction climbs up.
The bypass opportunity is the *forwarding*: when an internal node's copy of
the data arrives, the progress hook forwards it to the node's children
immediately — whether or not the application has called ``MPI_Bcast`` yet —
so a skewed (late) parent never delays its entire subtree.  The local
``bcast`` call then either finds the data already buffered (one copy) or
blocks for it.

Because broadcast data can arrive before the application announces any
interest, ranks that enable this extension keep NIC signals pinned on (see
:meth:`repro.core.engine.AbEngine.pin_signals`).
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ..errors import AbProtocolError
from ..mpich.collectives import tree
from ..mpich.communicator import Communicator
from ..mpich.datatypes import DOUBLE, Datatype
from ..mpich.message import TAG_BCAST, AbHeader, Envelope
from ..sim.cpu import Ledger
from ..sim.process import Busy, Trigger, WaitFor
from .engine import AbEngine

KIND = "bcast"


class AbBroadcastStats:
    __slots__ = ("bcasts", "forwards", "early_arrivals", "late_calls",
                 "copies", "copied_bytes")

    def __init__(self) -> None:
        self.bcasts = 0
        self.forwards = 0
        self.early_arrivals = 0   # data arrived before the local call
        self.late_calls = 0       # local call had to block for data
        self.copies = 0
        self.copied_bytes = 0


class AbBroadcast:
    """Per-rank application-bypass broadcast extension."""

    def __init__(self, engine: AbEngine):
        self.engine = engine
        self.costs = engine.costs
        self.sim = engine.sim
        self.stats = AbBroadcastStats()
        self._comms: dict[int, Communicator] = {}
        self._instances: dict[int, int] = {}
        #: Data that arrived before the local bcast call: (ctx, inst) -> array.
        self._received: dict[tuple[int, int], np.ndarray] = {}
        #: Local calls blocked for data: (ctx, inst) -> trigger.
        self._waiting: dict[tuple[int, int], Trigger] = {}
        engine.extensions[KIND] = self
        engine.pin_signals()

    def register_comm(self, comm: Communicator) -> None:
        """Make a communicator's tree known before any data can arrive
        (collective: every participating rank must register it)."""
        self._comms[comm.coll_context] = comm

    # ------------------------------------------------------------------
    # hook side (runs inside the progress engine, sync or async)
    # ------------------------------------------------------------------
    def preprocess(self, env: Envelope, ledger: Ledger) -> bool:
        header = env.ab
        comm = self._comms.get(env.context_id)
        if comm is None:
            raise AbProtocolError(
                f"AB bcast packet for unregistered context {env.context_id}")
        self._forward(env, header, comm, ledger)
        key = (env.context_id, header.instance)
        trigger = self._waiting.pop(key, None)
        data = np.array(env.data, copy=True)
        ledger.charge(self.costs.copy_us(env.nbytes), "copy")
        self.stats.copies += 1
        self.stats.copied_bytes += env.nbytes
        if trigger is not None:
            trigger.fire(data)
        else:
            self.stats.early_arrivals += 1
            self._received[key] = data
        return True

    def _forward(self, env: Envelope, header: AbHeader, comm: Communicator,
                 ledger: Ledger) -> None:
        """Send the payload down to this node's bcast-tree children *now*."""
        me = comm.rank_of_world(self.engine.rank.rank)
        root = comm.rank_of_world(header.root)
        rel = tree.relative_rank(me, root, comm.size)
        if rel == 0:
            raise AbProtocolError("bcast root received its own broadcast")
        # Reverse combine order: deepest subtree first (for the default
        # binomial shape this is the original descending-mask walk, bit for
        # bit; other shapes from repro.topo compose the same way).
        shape = self.engine.rank.tree_shape
        for child_rel in reversed(shape.children(rel, comm.size)):
            child = comm.world_rank(
                tree.absolute_rank(child_rel, root, comm.size))
            self.engine.rank.progress.start_send(
                env.data, child, TAG_BCAST, comm.coll_context, ledger,
                ab=header)
            self.stats.forwards += 1

    # ------------------------------------------------------------------
    # application side
    # ------------------------------------------------------------------
    def bcast(self, data: Optional[np.ndarray], root: int,
              comm: Communicator, *, count: Optional[int] = None,
              dtype: Optional[Datatype] = None) -> Generator:
        """Application-bypass ``MPI_Bcast``; returns the array everywhere."""
        if comm.coll_context not in self._comms:
            raise AbProtocolError("register_comm(comm) must precede bcast")
        self.stats.bcasts += 1
        me = comm.rank_of_world(self.engine.rank.rank)
        rel = tree.relative_rank(me, root, comm.size)
        instance = self._next_instance(comm)
        ledger = Ledger()
        ledger.charge(self.costs.call_overhead_us, "mpi")
        ledger.charge(self.costs.ab_decision_us, "ab")

        if rel == 0:
            if data is None:
                raise AbProtocolError("bcast root must supply data")
            buf = np.array(data, copy=True)
            header = AbHeader(root=comm.world_rank(root), instance=instance,
                              kind=KIND)
            shape = self.engine.rank.tree_shape
            for child_rel in reversed(shape.children(0, comm.size)):
                child = comm.world_rank(
                    tree.absolute_rank(child_rel, root, comm.size))
                self.engine.rank.progress.start_send(
                    buf, child, TAG_BCAST, comm.coll_context, ledger,
                    ab=header)
            yield Busy.from_ledger(ledger)
            return buf

        key = (comm.coll_context, instance)
        stored = self._received.pop(key, None)
        if stored is not None:
            yield Busy.from_ledger(ledger)
            return self._deliver(stored, data, count, dtype)

        # Data not here yet: block (polling) until the hook hands it over.
        self.stats.late_calls += 1
        trigger = Trigger()
        self._waiting[key] = trigger
        yield Busy.from_ledger(ledger)
        progress = self.engine.rank.progress
        progress.active_depth += 1
        try:
            while not trigger.fired:
                arm = self.engine.nic.rx_notifier.wait()
                loop_ledger = Ledger()
                progress.drain(loop_ledger)
                if loop_ledger.total > 0.0:
                    yield Busy.from_ledger(loop_ledger)
                if trigger.fired:
                    break
                yield WaitFor(arm, poll_category="poll")
        finally:
            progress.active_depth -= 1
        return self._deliver(trigger.value, data, count, dtype)

    def _deliver(self, payload: np.ndarray, data: Optional[np.ndarray],
                 count: Optional[int], dtype: Optional[Datatype]) -> np.ndarray:
        if data is not None:
            buf = np.asarray(data)
            buf.reshape(-1)[: payload.size] = payload.reshape(-1)
            return buf
        if count is not None:
            buf = (dtype or DOUBLE).buffer(count)
            buf.reshape(-1)[: payload.size] = payload.reshape(-1)
            return buf
        return payload

    def _next_instance(self, comm: Communicator) -> int:
        ctx = comm.coll_context
        nxt = self._instances.get(ctx, 0)
        self._instances[ctx] = nxt + 1
        return nxt
