"""The exit-delay heuristic (paper Sec. IV-E).

Before leaving ``MPI_Reduce`` with children still outstanding, an internal
node may linger briefly, hoping late children catch up *inside* the call —
each one caught avoids a signal.  Too short a window misses them; too long
burns CPU that application bypass was supposed to save.  The paper's simple
scheme scales the window with the number of processes in the reduction; we
implement that plus fixed and linear variants for the ablation study.

Wall-clock bounding contract: the window computed here is an *absolute*
deadline (``now + window`` at descriptor creation, see ``AbEngine.reduce``),
never "linger until the child arrives".  A child frozen by a ``rank_pause``
fault for longer than the window must therefore cost the lingering parent at
most the window itself, after which the parent exits and the contribution is
absorbed asynchronously.  The spinning charge excludes any time the *parent*
itself spent frozen (``HostCpu.end_poll`` subtracts the frozen span) — the
regression test in tests/integration/test_fault_injection.py pins both
properties down.
"""

from __future__ import annotations

import math

from ..config import AbParams
from ..errors import ConfigError

POLICIES = ("none", "fixed", "log", "linear")


def exit_delay_window(params: AbParams, size: int) -> float:
    """Lingering window (microseconds) for a reduction over ``size`` ranks."""
    if size < 1:
        raise ConfigError(f"size must be >= 1, got {size}")
    policy = params.exit_delay_policy
    coeff = params.exit_delay_coeff_us
    if policy == "none":
        return 0.0
    if policy == "fixed":
        return coeff
    if policy == "log":
        return coeff * math.log2(max(size, 2))
    if policy == "linear":
        return coeff * size
    raise ConfigError(f"unknown exit delay policy {policy!r}; "
                      f"expected one of {POLICIES}")
