"""Reduce descriptors and the descriptor queue (paper Sec. V-A).

A descriptor holds everything the asynchronous side needs to finish a
reduction after ``MPI_Reduce`` has returned: the intermediate result, the
identity of the parent to send the final result to, and the list of children
whose contributions are still pending.  The child list doubles as the
matching key for late messages: an incoming AB packet matches the *oldest*
descriptor still waiting on its sender, which is correct because GM delivers
in order between any pair of endpoints and all ranks execute collectives in
the same program order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import AbProtocolError
from ..mpich.operations import Op
from ..sim import access


class ReduceDescriptor:
    """State of one in-flight application-bypass reduction instance."""

    __slots__ = ("context_id", "root_world", "instance", "parent_world",
                 "children_world", "op", "acc", "tag", "_pending",
                 "created_at", "removed", "sync_children", "async_children",
                 "comm", "shape", "root", "size", "rel", "timeout_event",
                 "seg", "nseg", "on_complete")

    def __init__(self, context_id: int, root_world: int, instance: int,
                 parent_world: int, children_world: list[int], op: Op,
                 acc: np.ndarray, tag: int, created_at: float, *,
                 comm=None, shape=None, root=None, size=None, rel=None,
                 seg: int = -1, nseg: int = 1, on_complete=None):
        if not children_world:
            raise AbProtocolError("descriptor for a node with no children "
                                  "(leaves use the plain send path)")
        self.context_id = context_id
        self.root_world = root_world
        self.instance = instance
        self.parent_world = parent_world
        self.children_world = list(children_world)
        self.op = op
        self.acc = acc
        self.tag = tag
        self._pending = set(children_world)
        self.created_at = created_at
        self.removed = False
        #: How many children were folded in synchronously / asynchronously
        #: (for the skew diagnostics in the reports).
        self.sync_children = 0
        self.async_children = 0
        #: Tree context for fault recovery (repro.faults tree_heal): with
        #: these the engine can recompute live subtrees after a crash.
        #: All None on fault-free descriptors (and in direct-construction
        #: unit tests).
        self.comm = comm
        self.shape = shape
        self.root = root
        self.size = size
        self.rel = rel
        #: Pending recovery-timer event, cancelled on completion so a
        #: defunct timer never stretches the simulation's makespan.
        self.timeout_event = None
        #: Segment identity (repro.pipeline): index within the instance and
        #: total segment count.  ``seg == -1`` marks a whole-message
        #: descriptor and keeps every legacy code path byte-identical.
        self.seg = seg
        self.nseg = nseg
        #: Called once by the engine right after this descriptor is removed
        #: (before the queue-drained/signal check, so a callback that opens
        #: the next segment's descriptor keeps signals armed).  Used by the
        #: pipeline window to advance without the application on the CPU.
        self.on_complete = on_complete

    # ------------------------------------------------------------------
    def is_pending(self, child_world: int) -> bool:
        return child_world in self._pending

    def adopt(self, dead_child_world: int, adopted_worlds: list[int]) -> None:
        """Replace a crashed pending child with its live descendants.

        The dead child's slot is dropped; each adopted rank not already a
        child becomes pending.  The caller re-checks :attr:`complete` (the
        crashed child may have had no live descendants).
        """
        self._pending.discard(dead_child_world)
        self.children_world = [c for c in self.children_world
                               if c != dead_child_world]
        for world in adopted_worlds:
            if world not in self.children_world:
                self.children_world.append(world)
                self._pending.add(world)

    def pending_children(self) -> list[int]:
        """Pending children in original (mask) order."""
        return [c for c in self.children_world if c in self._pending]

    def mark_done(self, child_world: int) -> None:
        try:
            self._pending.remove(child_world)
        except KeyError:
            raise AbProtocolError(
                f"child {child_world} already handled for instance "
                f"{self.instance}")

    @property
    def complete(self) -> bool:
        return not self._pending

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ReduceDescriptor inst={self.instance} root={self.root_world} "
                f"parent={self.parent_world} pending={sorted(self._pending)}>")


class DescriptorQueue:
    """FIFO of outstanding descriptors with sender-based matching.

    Shared between the synchronous MPI_Reduce path and the asynchronous
    signal handlers, so every mutation/lookup is access-traced for the
    happens-before checker (:mod:`repro.analysis.races`): the FIFO match
    rule makes queue *order* semantically meaningful, which is exactly
    what an arbitrary same-timestamp event order could silently change.
    """

    __slots__ = ("_entries", "enqueued", "dequeued", "max_len", "owner")

    def __init__(self) -> None:
        self._entries: list[ReduceDescriptor] = []
        self.enqueued = 0
        self.dequeued = 0
        self.max_len = 0
        #: World rank of the owning engine (None in raw unit tests);
        #: identifies this queue in access traces.
        self.owner: Optional[int] = None

    def push(self, desc: ReduceDescriptor) -> None:
        if access.TRACER is not None:
            access.trace(access.WRITE, ("descriptors", self.owner),
                         note=f"push inst={desc.instance} seg={desc.seg}")
        self._entries.append(desc)
        self.enqueued += 1
        self.max_len = max(self.max_len, len(self._entries))

    def match(self, sender_world: int) -> Optional[ReduceDescriptor]:
        """Oldest descriptor still waiting on ``sender_world``."""
        if access.TRACER is not None:
            access.trace(access.READ, ("descriptors", self.owner),
                         note=f"match src={sender_world}")
        for desc in self._entries:
            if desc.is_pending(sender_world):
                return desc
        return None

    def match_segment(self, sender_world: int, context_id: int,
                      instance: int, seg: int
                      ) -> Optional[ReduceDescriptor]:
        """Exact match for a segmented packet (repro.pipeline).

        The FIFO rule of :meth:`match` assumes one descriptor per
        (sender, instance); a pipelined instance keeps a *window* of
        per-segment descriptors open at once — and a later instance may
        open its window while an earlier one still has stragglers — so
        segmented packets carry their (instance, seg) identity and are
        matched on it exactly.
        """
        if access.TRACER is not None:
            access.trace(access.READ, ("descriptors", self.owner),
                         note=f"match_segment src={sender_world} "
                              f"inst={instance} seg={seg}")
        for desc in self._entries:
            if (desc.seg == seg and desc.instance == instance
                    and desc.context_id == context_id
                    and desc.is_pending(sender_world)):
                return desc
        return None

    def remove(self, desc: ReduceDescriptor) -> None:
        if access.TRACER is not None:
            access.trace(access.WRITE, ("descriptors", self.owner),
                         note=f"remove inst={desc.instance} seg={desc.seg}")
        if desc.removed:
            raise AbProtocolError(
                f"descriptor {desc.instance} removed twice")
        try:
            self._entries.remove(desc)
        except ValueError:
            raise AbProtocolError(
                f"descriptor {desc.instance} not in queue")
        desc.removed = True
        self.dequeued += 1

    @property
    def empty(self) -> bool:
        return not self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)
