"""The application-bypass reduction engine (the paper's contribution).

One :class:`AbEngine` is attached to each rank of an AB-build MPI library
(:class:`repro.mpich.rank.MpiRank`).  It plays three roles:

1. **Reduce entry point** (:meth:`AbEngine.reduce`) — the synchronous
   component executed inside ``MPI_Reduce`` (paper Fig. 3): decide
   ab-vs-fallback, build and enqueue the reduce descriptor, consume whatever
   child contributions already arrived (from the AB unexpected queue or via
   explicitly triggered progress), optionally linger inside the exit-delay
   window (Sec. IV-E), then return — enabling NIC signals if any descriptor
   is still outstanding.

2. **Progress-engine hook** (:meth:`AbEngine.preprocess`, Fig. 4 gray boxes)
   — pre-processes every incoming packet: non-AB packets pass through;
   AB packets bound for a reduction this rank roots are routed to the
   default synchronous path; everything else is matched against the
   descriptor queue and absorbed (Fig. 5), or copied *once* into the custom
   AB unexpected queue.

3. **Asynchronous completion** — when a descriptor's last child is absorbed
   (from the hook, regardless of whether a signal or an application MPI call
   triggered progress), the final result is sent to the parent, the
   descriptor is dequeued, and signals are disabled once the queue drains.

Copy accounting (paper Sec. V-B/V-C): expected/late AB messages are combined
straight from the packet buffer (zero host copies); early AB messages pay a
single copy into the AB unexpected queue and are consumed from there.  The
rejected reuse-the-MPICH-queues design (Sec. V-A) is retained behind
``AbParams.reuse_mpich_queues`` as an ablation: it pays one extra copy per
message plus management overhead.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ..config import AbParams
from ..errors import AbProtocolError
from ..mpich.collectives import tree
from ..mpich.collectives.reduce import reduce_nab
from ..mpich.communicator import Communicator
from ..mpich.message import TAG_REDUCE, AbHeader, Envelope
from ..mpich.operations import Op
from ..sim import access
from ..sim.cpu import Ledger
from ..sim.events import PRIORITY_TIMER
from ..sim.process import Busy, WaitFor
from .delay import exit_delay_window
from .descriptor import DescriptorQueue, ReduceDescriptor
from .plan import CollectivePlan
from .unexpected import AbUnexpectedQueue


class AbStats:
    """Per-rank counters for the application-bypass machinery."""

    __slots__ = ("ab_reduces", "fallback_size", "root_reduces", "leaf_sends",
                 "children_sync", "children_async", "children_from_unexpected",
                 "expected_zero_copy", "unexpected_one_copy",
                 "ab_copies", "ab_copied_bytes",
                 "descriptors_completed_sync", "descriptors_completed_async",
                 "window_expires", "window_catches",
                 "descriptors_timed_out", "descriptor_retries",
                 "subtrees_healed", "children_abandoned", "sends_rerouted")

    def __init__(self) -> None:
        self.ab_reduces = 0
        self.fallback_size = 0
        self.root_reduces = 0
        self.leaf_sends = 0
        self.children_sync = 0
        self.children_async = 0
        self.children_from_unexpected = 0
        self.expected_zero_copy = 0
        self.unexpected_one_copy = 0
        self.ab_copies = 0
        self.ab_copied_bytes = 0
        self.descriptors_completed_sync = 0
        self.descriptors_completed_async = 0
        self.window_expires = 0
        self.window_catches = 0
        # Fault-recovery counters (repro.faults; all zero on healthy runs).
        self.descriptors_timed_out = 0
        self.descriptor_retries = 0
        self.subtrees_healed = 0
        self.children_abandoned = 0
        self.sends_rerouted = 0


#: Ops whose element-wise fold is exact and commutative for every dtype,
#: so fold *order* can never change the result.
_ORDER_FREE_OPS = frozenset({"min", "max", "band", "bor", "bxor"})


def _fold_order_sensitive(op: Op, acc: np.ndarray) -> bool:
    """True if reordering folds into ``acc`` could change the result:
    non-commutative user ops always; float sum/prod reassociate; integer
    and boolean arithmetic is exact."""
    if not op.commutative:
        return True
    if op.name in _ORDER_FREE_OPS:
        return False
    return acc.dtype.kind not in "iub"


class AbEngine:
    """Application-bypass state machine for one rank."""

    def __init__(self, rank, params: AbParams):
        self.rank = rank
        self.node = rank.node
        self.costs = rank.costs
        self.sim = rank.sim
        self.params = params
        self.nic = rank.node.nic
        self.descriptors = DescriptorQueue()
        self.descriptors.owner = rank.rank
        self.unexpected = AbUnexpectedQueue()
        self.unexpected.owner = rank.rank
        self.stats = AbStats()
        #: Protocol-invariant monitor (repro.analysis.invariants), shared
        #: cluster-wide via the NIC; None in unmonitored runs.
        self.monitor = getattr(self.nic, "monitor", None)
        if self.monitor is not None:
            self.monitor.register_engine(self)
        #: Per-collective-context instance counters; every rank advances
        #: them identically because collectives execute in program order.
        self._instances: dict[int, int] = {}
        #: Extension hooks (application-bypass broadcast) keyed by
        #: AbHeader.kind; see :mod:`repro.core.broadcast`.
        self.extensions: dict[str, object] = {}
        #: While > 0, NIC signals stay armed regardless of the reduce
        #: descriptor queue (used by the broadcast and split-phase
        #: extensions, whose asynchronous work is not descriptor-driven).
        self.signal_pins = 0
        #: >0 while this rank is inside the synchronous component of an AB
        #: MPI_Reduce (Fig. 3).  Children absorbed then count as
        #: synchronous; everything else is the asynchronous component.
        self._sync_depth = 0
        # Fault-recovery configuration (repro.faults).  At defaults the
        # timeout is 0 (no timers armed) and healing is off, so the engine
        # behaves bit-identically to a build without the fault subsystem.
        rank.node.ab_engine = self
        faults = getattr(rank.node.config, "faults", None)
        self._timeout_us = (float(faults.descriptor_timeout_us)
                            if faults is not None else 0.0)
        self._timeout_retries = (int(faults.timeout_retries)
                                 if faults is not None else 0)
        #: ``(world_rank, now) -> bool`` — the fault schedule's perfect
        #: failure detector; None on fault-free clusters.
        self._crash_oracle = getattr(rank.node, "crash_oracle", None)
        #: ``(context, instance, seg, child)`` keys whose descriptor
        #: abandoned the child: a late segment packet matching one is
        #: discarded on arrival (see :meth:`preprocess`).
        self._stale_segments: set[tuple[int, int, int, int]] = set()
        self._heal = bool(faults is not None and faults.tree_heal
                          and self._crash_oracle is not None)
        #: Segmented pipelined collectives (repro.pipeline).  Built only
        #: when the config block is armed, so disarmed runs never construct
        #: the subsystem and stay bit-identical to a build without it.
        self.pipeline = None
        pparams = getattr(rank.node.config, "pipeline", None)
        if pparams is not None and pparams.armed:
            from ..pipeline.reduce import AbPipeline
            self.pipeline = AbPipeline(self)

    # ------------------------------------------------------------------
    # signal pinning (extensions)
    # ------------------------------------------------------------------
    def pin_signals(self) -> None:
        """Keep NIC signals enabled until :meth:`unpin_signals`."""
        self.signal_pins += 1
        if not self.nic.signals_enabled:
            self.nic.enable_signals(Ledger())

    def unpin_signals(self, ledger: Optional[Ledger] = None) -> None:
        if self.signal_pins <= 0:
            raise AbProtocolError("unbalanced unpin_signals")
        self.signal_pins -= 1
        if (self.signal_pins == 0 and self.descriptors.empty
                and self.nic.signals_enabled):
            self.nic.disable_signals(ledger if ledger is not None else Ledger())
        if (self.signal_pins == 0 and self.descriptors.empty
                and self.monitor is not None):
            self.monitor.on_queue_drained(self.rank.rank, self.sim.now)

    # ==================================================================
    # role 1: the MPI_Reduce entry point (synchronous component, Fig. 3)
    # ==================================================================
    def reduce(self, sendbuf: np.ndarray, op: Op, root: int,
               comm: Communicator,
               recvbuf: Optional[np.ndarray] = None, *,
               plan: Optional[CollectivePlan] = None) -> Generator:
        """Application-bypass ``MPI_Reduce`` (falls back where the paper
        does: message beyond the eager limit → default everywhere; root and
        leaf ranks → default behaviour with AB packet framing).

        ``plan`` carries schedule-resolved neighbors (see
        :mod:`repro.core.interpreter`); healing overrides it."""
        size = comm.size
        me = comm.rank_of_world(self.rank.rank)
        if not (0 <= root < size):
            raise ValueError(f"root {root} outside communicator of size {size}")

        ledger = Ledger()
        ledger.charge(self.costs.call_overhead_us, "mpi")
        ledger.charge(self.costs.ab_decision_us, "ab")

        nbytes = sendbuf.nbytes
        if self.pipeline is not None and size > 1:
            # Pipelined path (repro.pipeline): checked before the size
            # fallback because segmentation is exactly what opens the
            # large-message AB path — each segment travels eager-sized.
            segments = self.pipeline.plan_for(sendbuf)
            if segments is not None:
                result = yield from self.pipeline.reduce(
                    sendbuf, op, root, comm, recvbuf, ledger, segments,
                    plan=plan)
                return result
        if nbytes > min(self.costs.ab_eager_limit_bytes,
                        self.costs.eager_limit_bytes):
            # Rendezvous-sized payload: the whole tree falls back (every
            # rank sees the same size, so the decision is globally
            # consistent and no instance number is consumed).
            self.stats.fallback_size += 1
            yield Busy.from_ledger(ledger)
            result = yield from reduce_nab(self.rank, sendbuf, op, root,
                                           comm, recvbuf)
            return result

        if size == 1:
            yield Busy.from_ledger(ledger)
            if recvbuf is not None:
                recvbuf[...] = np.asarray(sendbuf).reshape(recvbuf.shape)
                return recvbuf
            return np.array(sendbuf, copy=True)

        instance = self._next_instance(comm)
        ledger.charge(self.costs.tree_setup_us, "mpi")
        rel = tree.relative_rank(me, root, size)
        root_world = comm.world_rank(root)

        if rel == 0:
            # The root cannot bypass: MPI_Reduce must return the full result
            # (paper Sec. II).  Children's AB packets are routed to the
            # default matching path by the hook.
            self.stats.root_reduces += 1
            yield Busy.from_ledger(ledger)
            result = yield from reduce_nab(self.rank, sendbuf, op, root,
                                           comm, recvbuf)
            return result

        shape = self.rank.tree_shape_for(nbytes)
        kids_rel = shape.children(rel, size)
        header = AbHeader(root=root_world, instance=instance, kind="reduce")
        if self._heal:
            # Fault-tolerant construction: crashed subtrees are replaced by
            # their live fringe, and the parent by its nearest live
            # ancestor, so the healed tree spans exactly the live ranks.
            naive_parent = comm.world_rank(
                tree.absolute_rank(shape.parent(rel, size), root, size))
            parent_world = self._live_ancestor_world(
                comm, shape, root, size, shape.parent(rel, size))
            if parent_world != naive_parent:
                self.stats.sends_rerouted += 1
                self._report_fault("send_rerouted", instance=instance,
                                   parent=parent_world)
            children_world, healed = self._live_fringe(
                comm, shape, root, size, kids_rel)
            if healed:
                self.stats.subtrees_healed += healed
                self._report_fault("subtree_healed", instance=instance,
                                   healed=healed)
        elif plan is not None:
            # Schedule-injected neighbors: the interpreter already resolved
            # the tree; healed runs recompute above instead.
            parent_world = plan.parent_world
            children_world = list(plan.children_world)
        else:
            parent_world = comm.world_rank(
                tree.absolute_rank(shape.parent(rel, size), root, size))
            children_world = [
                comm.world_rank(tree.absolute_rank(c, root, size))
                for c in kids_rel
            ]
        if not children_world:
            # Leaf — by tree position, or because every subtree below this
            # rank crashed: one AB-framed eager send to the parent; nothing
            # to wait for (paper: leaves need no optimization, Sec. II).
            self.stats.leaf_sends += 1
            self.rank.progress.start_send(sendbuf, parent_world, TAG_REDUCE,
                                          comm.coll_context, ledger,
                                          ab=header)
            yield Busy.from_ledger(ledger)
            return None

        # ----- internal node: the Fig. 3 flow -------------------------
        self.stats.ab_reduces += 1
        progress = self.rank.progress
        # Everything from here to the exit is "progress underway": signals
        # are explicitly disabled, and any child folded in during this span
        # counts as synchronously processed.
        progress.active_depth += 1
        self._sync_depth += 1
        try:
            # "Disable signals": we are about to make progress explicitly.
            # (Skipped while an extension has signals pinned — its
            # asynchronous traffic must stay signal-driven.)
            if self.signal_pins == 0:
                self.nic.disable_signals(ledger)

            acc = np.array(sendbuf, copy=True)
            ledger.charge(self.costs.copy_us(acc.nbytes), "copy")
            desc = ReduceDescriptor(
                context_id=comm.coll_context, root_world=root_world,
                instance=instance, parent_world=parent_world,
                children_world=children_world, op=op, acc=acc, tag=TAG_REDUCE,
                created_at=self.sim.now,
                comm=comm, shape=shape, root=root, size=size, rel=rel)
            ledger.charge(self.costs.ab_descriptor_us, "descriptor")
            self.descriptors.push(desc)
            self.node.tracer.emit("ab.descriptor.enqueue",
                                  node=self.rank.rank, instance=instance,
                                  children=len(children_world))
            if self._timeout_us > 0.0:
                # Recovery timer (repro.faults): if children are still
                # pending when it fires, progress is forced, crashed
                # subtrees are healed, and after the retry budget the
                # partial sum is propagated (reported via INV-FAULT).
                # TIMER class: a timeout due exactly when the completing
                # contribution lands observes the completion (and is
                # cancelled) rather than racing it.
                desc.timeout_event = self.sim.schedule(
                    self._timeout_us, self._on_descriptor_timeout, desc, 1,
                    priority=PRIORITY_TIMER)

            # Early arrivals already sit in the AB unexpected queue: consume
            # them directly (their only copy already happened on arrival).
            self._consume_unexpected(desc, ledger)
            yield Busy.from_ledger(ledger)

            # Walk/poll loop with the exit-delay window (Sec. IV-E).
            deadline = self.sim.now + exit_delay_window(self.params, size)
            while not desc.removed:
                trigger = self.nic.rx_notifier.wait()
                loop_ledger = Ledger()
                progress.drain(loop_ledger)
                if loop_ledger.total > 0.0:
                    yield Busy.from_ledger(loop_ledger)
                if desc.removed:
                    self.stats.window_catches += 1
                    break
                if self.sim.now >= deadline:
                    self.stats.window_expires += 1
                    break
                # Bounded wait: woken by the next arrival or the deadline.
                self.sim.at(deadline, trigger.fire, None)
                yield WaitFor(trigger, poll_category="poll")
        finally:
            progress.active_depth -= 1
            self._sync_depth -= 1

        # Exit: enable signals iff any descriptor remains outstanding
        # (ours or an older one) — Fig. 3 bottom-left diamond.
        exit_ledger = Ledger()
        if not self.descriptors.empty or self.signal_pins > 0:
            self.nic.enable_signals(exit_ledger)
        if self.monitor is not None:
            self.monitor.on_reduce_exit(self.rank.rank, self.sim.now)
        if exit_ledger.total > 0.0:
            yield Busy.from_ledger(exit_ledger)
        return None

    # ==================================================================
    # role 2: the progress-engine pre-processing hook (Fig. 4)
    # ==================================================================
    def preprocess(self, env: Envelope, ledger: Ledger) -> bool:
        """Examine one dequeued packet; True if consumed here."""
        header = env.ab
        if header is None:
            return False
        if header.kind != "reduce":
            ext = self.extensions.get(header.kind)
            if ext is None:
                raise AbProtocolError(f"no handler for AB kind {header.kind!r}")
            return ext.preprocess(env, ledger)
        if header.root == self.rank.rank:
            # This rank roots the instance.  The split-phase extension may
            # have registered an asynchronous root state; otherwise the
            # packet is strictly synchronous and handled by the default
            # matching path (Fig. 4 "Root?" diamond).
            ireduce = self.extensions.get("ireduce_root")
            if ireduce is not None and ireduce.try_absorb(env, ledger):
                return True
            return False

        ledger.charge(self.costs.ab_descriptor_match_us, "ab")
        if header.seg >= 0:
            key = (env.context_id, header.instance, header.seg, env.src)
            if key in self._stale_segments:
                # The segment's descriptor already abandoned this child
                # (timeout-recovery gave up on it): its late contribution is
                # dropped, not buffered — nothing will ever consume it.
                self._stale_segments.discard(key)
                if self.pipeline is not None:
                    self.pipeline.stats.stale_segments_dropped += 1
                return True
            # Segmented packet (repro.pipeline): the window keeps several
            # per-segment descriptors of one instance open at once, so the
            # FIFO sender match is ambiguous — match the exact (instance,
            # segment) named by the header.
            desc = self.descriptors.match_segment(
                env.src, env.context_id, header.instance, header.seg)
        else:
            desc = self.descriptors.match(env.src)
        if desc is None:
            # Early (truly unexpected): one copy into the AB queue.
            data = np.array(env.data, copy=True)
            ledger.charge(self.costs.copy_us(env.nbytes), "copy")
            self.stats.ab_copies += 1
            self.stats.ab_copied_bytes += env.nbytes
            self.stats.unexpected_one_copy += 1
            if self.params.reuse_mpich_queues:
                # Ablation: the rejected design buffers through MPICH's
                # non-blocking machinery — a second copy plus management.
                ledger.charge(self.costs.copy_us(env.nbytes), "copy")
                ledger.charge(self.costs.ab_reuse_mgmt_us, "ab")
                self.stats.ab_copies += 1
                self.stats.ab_copied_bytes += env.nbytes
            self.unexpected.put(env.src, header, data, self.sim.now)
            if header.seg >= 0 and self.pipeline is not None:
                # A segment the window wasn't ready for: the pipeline
                # stalled (copy paid instead of a zero-copy fold).
                self.pipeline.stats.pipeline_stalls += 1
            if self.monitor is not None:
                self.monitor.on_ab_message(
                    self.rank.rank, "unexpected",
                    2 if self.params.reuse_mpich_queues else 1,
                    self.params.reuse_mpich_queues, self.sim.now)
            return True

        if header.seg < 0 and desc.instance != header.instance:
            raise AbProtocolError(
                f"rank {self.rank.rank}: packet from {env.src} carries "
                f"instance {header.instance} but matched descriptor "
                f"{desc.instance} (FIFO ordering violated)")
        # Expected or late: combined straight from the packet buffer —
        # zero host copies (100% copy reduction, Sec. V-C).
        self.stats.expected_zero_copy += 1
        if self.params.reuse_mpich_queues:
            ledger.charge(self.costs.copy_us(env.nbytes), "copy")
            ledger.charge(self.costs.ab_reuse_mgmt_us, "ab")
            self.stats.ab_copies += 1
            self.stats.ab_copied_bytes += env.nbytes
        if self.monitor is not None:
            self.monitor.on_ab_message(
                self.rank.rank, "expected",
                1 if self.params.reuse_mpich_queues else 0,
                self.params.reuse_mpich_queues, self.sim.now)
        self._absorb(desc, env.src, env.data, ledger)
        return True

    # ==================================================================
    # role 3: absorption and asynchronous completion (Fig. 5)
    # ==================================================================
    def _absorb(self, desc: ReduceDescriptor, child_world: int,
                data: np.ndarray, ledger: Ledger) -> None:
        """Fold one child's contribution into the descriptor."""
        ledger.charge(self.costs.op_us(desc.acc.size), "op")
        if access.TRACER is not None:
            # Fold-buffer write for the happens-before checker: float
            # sum/prod (and any non-commutative user op) reassociate, so
            # two same-timestamp unordered folds into one accumulator are
            # a latent schedule race even when today's FIFO order happens
            # to be consistent.
            access.trace(
                access.WRITE,
                ("acc", self.rank.rank, desc.context_id, desc.instance,
                 desc.seg),
                order_sensitive=_fold_order_sensitive(desc.op, desc.acc),
                note=f"fold child={child_world}")
        desc.op.apply(desc.acc, data.reshape(desc.acc.shape))
        desc.mark_done(child_world)
        in_sync = self._sync_depth > 0
        if in_sync:
            desc.sync_children += 1
            self.stats.children_sync += 1
        else:
            desc.async_children += 1
            self.stats.children_async += 1
        if desc.seg >= 0:
            if self.pipeline is not None:
                self.pipeline.stats.segments_folded += 1
                if not in_sync:
                    self.pipeline.stats.segments_folded_async += 1
            if self.monitor is not None:
                self.monitor.on_segment_fold(
                    self.rank.rank, child_world, desc.context_id,
                    desc.instance, desc.seg, self.sim.now)
            if not desc.complete and desc.timeout_event is not None:
                # Stall-based recovery timer: a window descriptor's children
                # legitimately arrive a full sibling-stream apart (the
                # parent's RX port serializes every child's segments), so
                # age-based expiry would abandon live children.  Each fold
                # is progress — restart the timer and the retry budget.
                self.sim.cancel(desc.timeout_event)
                desc.timeout_event = self.sim.schedule(
                    self._timeout_us, self._on_descriptor_timeout, desc, 1,
                    priority=PRIORITY_TIMER)
        if desc.complete:
            self._finish(desc, ledger, completed_async=not in_sync)

    def _finish(self, desc: ReduceDescriptor, ledger: Ledger,
                completed_async: bool) -> None:
        """All children handled: send to parent, dequeue, idle the NIC."""
        if (self._heal and desc.rel is not None
                and self._crashed(desc.parent_world)):
            # The parent crashed after this descriptor was built: climb the
            # tree to the nearest live ancestor (the root never crashes in
            # the supported fault model).
            new_parent = self._live_ancestor_world(
                desc.comm, desc.shape, desc.root, desc.size,
                desc.shape.parent(desc.rel, desc.size))
            if new_parent != desc.parent_world:
                desc.parent_world = new_parent
                self.stats.sends_rerouted += 1
                self._report_fault("send_rerouted", instance=desc.instance,
                                   parent=new_parent)
        header = AbHeader(root=desc.root_world, instance=desc.instance,
                          kind="reduce", seg=desc.seg, nseg=desc.nseg)
        self.rank.progress.start_send(desc.acc, desc.parent_world, desc.tag,
                                      desc.context_id, ledger, ab=header)
        if desc.seg >= 0:
            if self.pipeline is not None:
                self.pipeline.stats.segments_sent += 1
            if self.monitor is not None:
                self.monitor.on_segment_emit(
                    self.rank.rank, desc.parent_world, desc.context_id,
                    desc.instance, desc.seg, self.sim.now)
        self.descriptors.remove(desc)
        if desc.timeout_event is not None:
            self.sim.cancel(desc.timeout_event)
            desc.timeout_event = None
        if completed_async:
            self.stats.descriptors_completed_async += 1
        else:
            self.stats.descriptors_completed_sync += 1
        if desc.seg >= 0:
            self.node.tracer.emit("ab.segment.complete",
                                  node=self.rank.rank, instance=desc.instance,
                                  seg=desc.seg, nseg=desc.nseg,
                                  mode="async" if completed_async else "sync",
                                  span=self.sim.now - desc.created_at)
        else:
            self.node.tracer.emit("ab.descriptor.complete",
                                  node=self.rank.rank, instance=desc.instance,
                                  mode="async" if completed_async else "sync",
                                  span=self.sim.now - desc.created_at)
        callback = desc.on_complete
        if callback is not None:
            # Window advance (repro.pipeline): runs before the queue-drained
            # check below so a callback that opens the next segment's
            # descriptor keeps signals armed without a disable/enable flap.
            desc.on_complete = None
            callback(desc, ledger)
        if (self.descriptors.empty and self.signal_pins == 0
                and self.nic.signals_enabled):
            # "Descriptor queue empty? -> Disable signals" (Fig. 5).
            self.nic.disable_signals(ledger)
        if (self.descriptors.empty and self.signal_pins == 0
                and self.monitor is not None):
            self.monitor.on_queue_drained(self.rank.rank, self.sim.now)

    def _consume_unexpected(self, desc: ReduceDescriptor,
                            ledger: Ledger) -> None:
        """Fold in early arrivals buffered before the descriptor existed.

        Entries are consumed directly from the AB unexpected queue — the
        copy they already paid on arrival is their only one (Sec. V-B).
        """
        for child in desc.pending_children():
            if desc.seg >= 0:
                entry = self.unexpected.take_for(child, desc.instance,
                                                 desc.seg)
            else:
                entry = self.unexpected.take(child)
            if entry is None:
                continue
            if entry.header.instance != desc.instance:
                raise AbProtocolError(
                    f"rank {self.rank.rank}: unexpected entry from "
                    f"{child} has instance {entry.header.instance}, "
                    f"descriptor expects {desc.instance}")
            ledger.charge(self.costs.ab_descriptor_match_us, "ab")
            self.stats.children_from_unexpected += 1
            self._absorb(desc, child, entry.data, ledger)
            if desc.removed:
                break

    # ==================================================================
    # fault recovery (repro.faults: descriptor timeouts + tree healing)
    # ==================================================================
    def _crashed(self, world_rank: int) -> bool:
        oracle = self._crash_oracle
        return oracle is not None and oracle(world_rank, self.sim.now)

    def _live_ancestor_world(self, comm, shape, root: int, size: int,
                             prel: int) -> int:
        """World rank of the nearest live ancestor, starting at rel
        ``prel`` and climbing toward the root (rel 0, assumed live)."""
        while prel != 0:
            world = comm.world_rank(tree.absolute_rank(prel, root, size))
            if not self._crashed(world):
                return world
            prel = shape.parent(prel, size)
        return comm.world_rank(tree.absolute_rank(0, root, size))

    def _live_fringe(self, comm, shape, root: int, size: int,
                     rels) -> tuple[list[int], int]:
        """Expand ``rels`` into the live fringe: a live rank stands for its
        subtree; a crashed rank is replaced by the live fringe of its own
        children (deterministic depth-first, combine order preserved).
        Returns ``(world_ranks, crashed_nodes_bypassed)``."""
        worlds: list[int] = []
        healed = 0
        for r in rels:
            world = comm.world_rank(tree.absolute_rank(r, root, size))
            if not self._crashed(world):
                worlds.append(world)
                continue
            healed += 1
            sub, sub_healed = self._live_fringe(
                comm, shape, root, size, shape.children(r, size))
            worlds.extend(sub)
            healed += sub_healed
        return worlds, healed

    def _on_descriptor_timeout(self, desc: ReduceDescriptor,
                               attempt: int) -> None:
        desc.timeout_event = None
        if desc.removed or self.node.cpu.crashed:
            return
        self.stats.descriptors_timed_out += 1
        self.node.cpu.run_handler(
            lambda ledger: self._timeout_recover(desc, attempt, ledger))

    def _timeout_recover(self, desc: ReduceDescriptor, attempt: int,
                         ledger: Ledger) -> None:
        """Timer body: force progress, heal crashed subtrees, re-arm, and
        after the retry budget abandon the stragglers (partial sum,
        honestly reported — availability over completeness)."""
        if desc.removed:
            return
        progress = self.rank.progress
        if progress.active_depth == 0:
            # Safe to drain here; if a blocking call is already spinning
            # (active_depth > 0) it is making progress on our behalf.
            progress.active_depth += 1
            try:
                progress.drain(ledger)
            finally:
                progress.active_depth -= 1
        if desc.removed:
            return
        if self._heal:
            self._heal_descriptor(desc, ledger)
            if desc.removed:
                return
        if attempt < self._timeout_retries:
            self.stats.descriptor_retries += 1
            desc.timeout_event = self.sim.schedule(
                self._timeout_us, self._on_descriptor_timeout, desc,
                attempt + 1, priority=PRIORITY_TIMER)
            return
        for child in desc.pending_children():
            desc.mark_done(child)
            self.stats.children_abandoned += 1
            if desc.seg >= 0:
                # Purge anything this child already delivered for the
                # segment, and remember the key so a straggling late packet
                # is discarded instead of stranding in the unexpected queue.
                self.unexpected.take_for(child, desc.instance, desc.seg)
                self._stale_segments.add(
                    (desc.context_id, desc.instance, desc.seg, child))
            self._report_fault("child_abandoned", instance=desc.instance,
                               child=child)
        self._finish(desc, ledger, completed_async=True)

    def _heal_descriptor(self, desc: ReduceDescriptor,
                         ledger: Ledger) -> None:
        """Reassign every crashed pending child's subtree (tree_heal): the
        crashed child is dropped and its live descendants are adopted as
        direct children of this rank."""
        if desc.comm is None:
            return
        for child in list(desc.pending_children()):
            if not self._crashed(child):
                continue
            crel = tree.relative_rank(desc.comm.rank_of_world(child),
                                      desc.root, desc.size)
            adopted, nested = self._live_fringe(
                desc.comm, desc.shape, desc.root, desc.size,
                desc.shape.children(crel, desc.size))
            desc.adopt(child, adopted)
            ledger.charge(self.costs.ab_descriptor_us, "descriptor")
            self.stats.subtrees_healed += 1 + nested
            self._report_fault("subtree_healed", instance=desc.instance,
                               child=child, adopted=len(adopted))
        if desc.complete:
            self._finish(desc, ledger, completed_async=True)
            return
        self._consume_unexpected(desc, ledger)

    def _report_fault(self, kind: str, **context) -> None:
        if self.monitor is not None:
            self.monitor.on_fault_report(self.rank.rank, kind,
                                         self.sim.now, **context)

    # ------------------------------------------------------------------
    def _next_instance(self, comm: Communicator) -> int:
        ctx = comm.coll_context
        nxt = self._instances.get(ctx, 0)
        self._instances[ctx] = nxt + 1
        return nxt

    @property
    def outstanding(self) -> int:
        """Number of reductions currently delegated to asynchronous
        processing on this rank."""
        return len(self.descriptors)
