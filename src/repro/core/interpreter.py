"""Execute a :class:`repro.schedule.ir.Schedule` through the live machinery.

``execute_schedule`` is a rank program fragment (a generator, like every
collective): it walks this rank's step list and drives the *same* NIC /
fabric / ledger paths the legacy collectives use, charging the identical
costs in the identical order.  That is the whole point — for every
registered lowering the interpreter is bit-identical to the legacy engine
path (``tests/integration/test_schedule_interpreter.py`` pins metrics and
sim counters), so schedules produced by rewrite passes inherit the
engines' validated cost model for free.

How each lowering executes:

``reduce.nab`` / ``bcast.tree`` / ``allreduce.reduce_bcast``
    Literal step walkers that reproduce ``reduce_nab`` / ``bcast_binomial``
    charge-for-charge (whole-message and seg-major segmented).
``reduce.ab`` / ``allreduce.ab``
    Non-root ranks derive a :class:`~repro.core.plan.CollectivePlan` from
    the schedule and delegate to :meth:`AbEngine.reduce` — descriptors,
    signals and the exit-delay window all run unchanged, just with
    schedule-resolved neighbors.  The root (which can never bypass) is
    walked by the interpreter itself.
``allreduce.pipelined``
    Verified against the config-derived lowering (the AB broadcast
    extension routes by the configured tree, so a reshaped schedule cannot
    execute), then driven through :class:`~repro.pipeline.reduce.AbPipeline`.

Guards: a schedule whose segmentation disagrees with the config's plan, an
AB schedule on a non-AB build, or a rendezvous-sized payload on an AB
schedule raise :class:`ScheduleExecutionError` before touching the
simulator.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Generator, Optional

import numpy as np

from ..errors import MpiError, ReproError
from ..mpich.collectives.reduce import _finish_root
from ..mpich.communicator import Communicator
from ..mpich.datatypes import DOUBLE, Datatype, from_array
from ..mpich.message import TAG_BCAST, TAG_REDUCE
from ..mpich.operations import SUM, Op
from ..schedule.ir import (BcastStep, FoldStep, RecvStep, Schedule, SendStep,
                           WaitStep, reduce_neighbors)
from ..sim.cpu import Ledger
from ..sim.process import Busy
from .plan import CollectivePlan


class ScheduleExecutionError(ReproError):
    """A schedule cannot execute under this rank's build/config."""


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def execute_schedule(rank, schedule: Schedule, sendbuf,
                     op: Op = SUM, comm: Optional[Communicator] = None,
                     recvbuf: Optional[np.ndarray] = None, *,
                     count: Optional[int] = None,
                     dtype: Optional[Datatype] = None) -> Generator:
    """Run ``schedule`` on this rank; a generator like every collective.

    ``sendbuf`` is the contribution for reduce/allreduce, or the broadcast
    payload (root) / optional receive buffer (non-root, else pass ``count``
    and ``dtype``) for bcast schedules.
    """
    if comm is None:
        comm = rank.comm_world
    if schedule.nranks != comm.size:
        raise ScheduleExecutionError(
            "schedule is for %d ranks but the communicator has %d"
            % (schedule.nranks, comm.size))
    if schedule.collective == "reduce":
        buf = np.asarray(sendbuf)
        if schedule.lowering == "reduce.ab":
            result = yield from _execute_reduce_ab(rank, schedule, buf, op,
                                                   comm, recvbuf)
        else:
            result = yield from _execute_reduce_nab(rank, schedule, buf, op,
                                                    comm, recvbuf)
        return result
    if schedule.collective == "bcast":
        result = yield from _execute_bcast(rank, schedule, sendbuf, comm,
                                           count=count, dtype=dtype)
        return result
    if schedule.collective == "allreduce":
        buf = np.asarray(sendbuf)
        if schedule.lowering == "allreduce.pipelined":
            result = yield from _execute_allreduce_pipelined(
                rank, schedule, buf, op, comm)
        else:
            result = yield from _execute_allreduce_sequential(
                rank, schedule, buf, op, comm)
        return result
    raise ScheduleExecutionError(
        "no interpreter for collective %r" % (schedule.collective,))


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------

def _segments_for(rank, schedule: Schedule, buf: np.ndarray):
    """Config-planned segments, checked against the schedule's ``nseg``."""
    from ..pipeline.segmenter import plan_segments
    pparams = rank.node.pipeline_params_for(buf.nbytes)
    segments = plan_segments(pparams, buf)
    planned = 0 if segments is None else len(segments)
    if planned != schedule.nseg:
        raise ScheduleExecutionError(
            "schedule has nseg=%d but the config plans %d segment(s) for "
            "%d bytes — align PipelineParams with the schedule"
            % (schedule.nseg, planned, buf.nbytes))
    return segments


def _plan_from_schedule(schedule: Schedule, comm: Communicator,
                        me: int) -> CollectivePlan:
    parent, children = reduce_neighbors(schedule, me)
    if parent is None:
        raise ScheduleExecutionError(
            "rank %d has no parent in the schedule (root cannot bypass)"
            % me)
    return CollectivePlan(
        parent_world=comm.world_rank(parent),
        children_world=tuple(comm.world_rank(c) for c in children))


# ---------------------------------------------------------------------------
# nab reduce (whole + segmented): mirrors collectives.reduce.reduce_nab
# ---------------------------------------------------------------------------

def _execute_reduce_nab(rank, schedule: Schedule, sendbuf: np.ndarray,
                        op: Op, comm: Communicator, recvbuf,
                        tag: int = TAG_REDUCE) -> Generator:
    size = comm.size
    me = comm.rank_of_world(rank.rank)
    costs = rank.costs
    ledger = Ledger()
    ledger.charge(costs.call_overhead_us, "mpi")

    if size == 1:
        result = _finish_root(sendbuf, recvbuf)
        yield Busy.from_ledger(ledger)
        return result

    ledger.charge(costs.tree_setup_us, "mpi")
    steps = schedule.steps[me]
    segments = _segments_for(rank, schedule, sendbuf)
    if segments is not None:
        result = yield from _walk_reduce_segmented(
            rank, steps, sendbuf, op, comm, recvbuf, tag, segments, ledger)
        return result

    if not any(isinstance(s, FoldStep) for s in steps):
        # Leaf: send the application buffer directly.
        yield Busy.from_ledger(ledger)
        for step in steps:
            if not isinstance(step, SendStep):
                raise ScheduleExecutionError(
                    "unexpected %r on a leaf of a nab reduce" % (step,))
            yield from rank.send(np.asarray(sendbuf), step.peer, tag, comm,
                                 _context=comm.coll_context)
        return None

    acc = np.array(sendbuf, copy=True)
    ledger.charge(costs.copy_us(acc.nbytes), "copy")
    yield Busy.from_ledger(ledger)
    tmp = np.empty_like(acc)
    for step in steps:
        if isinstance(step, RecvStep):
            yield from rank.recv(tmp, step.peer, tag, comm,
                                 _context=comm.coll_context)
        elif isinstance(step, FoldStep):
            op_ledger = Ledger()
            op_ledger.charge(costs.op_us(acc.size), "op")
            op.apply(acc, tmp)
            yield Busy.from_ledger(op_ledger)
        elif isinstance(step, SendStep):
            yield from rank.send(acc, step.peer, tag, comm,
                                 _context=comm.coll_context)
            return None
        else:
            raise ScheduleExecutionError(
                "unexpected %r in a nab reduce" % (step,))
    return _finish_root(acc, recvbuf)


def _walk_reduce_segmented(rank, steps, sendbuf: np.ndarray, op: Op,
                           comm: Communicator, recvbuf, tag, segments,
                           ledger: Ledger) -> Generator:
    costs = rank.costs
    if not any(isinstance(s, FoldStep) for s in steps):
        # Leaf: stream segments straight from the (flattened) app buffer.
        yield Busy.from_ledger(ledger)
        flat = np.ascontiguousarray(sendbuf).reshape(-1)
        for step in steps:
            if not isinstance(step, SendStep):
                raise ScheduleExecutionError(
                    "unexpected %r on a leaf of a segmented nab reduce"
                    % (step,))
            s = segments[step.seg]
            yield from rank.send(flat[s.offset:s.offset + s.count],
                                 step.peer, tag, comm,
                                 _context=comm.coll_context)
        return None

    acc = np.ascontiguousarray(sendbuf).reshape(-1).copy()
    ledger.charge(costs.copy_us(acc.nbytes), "copy")
    yield Busy.from_ledger(ledger)
    tmp = np.empty(max(s.count for s in segments), dtype=acc.dtype)
    sent_up = False
    for step in steps:
        s = segments[step.seg]
        chunk = acc[s.offset:s.offset + s.count]
        if isinstance(step, RecvStep):
            yield from rank.recv(tmp[:s.count], step.peer, tag, comm,
                                 _context=comm.coll_context)
        elif isinstance(step, FoldStep):
            op_ledger = Ledger()
            op_ledger.charge(costs.op_us(s.count), "op")
            op.apply(chunk, tmp[:s.count])
            yield Busy.from_ledger(op_ledger)
        elif isinstance(step, SendStep):
            yield from rank.send(chunk, step.peer, tag, comm,
                                 _context=comm.coll_context)
            sent_up = True
        else:
            raise ScheduleExecutionError(
                "unexpected %r in a segmented nab reduce" % (step,))
    if sent_up:
        return None
    return _finish_root(acc.reshape(np.asarray(sendbuf).shape), recvbuf)


# ---------------------------------------------------------------------------
# tree bcast (whole + segmented): mirrors collectives.bcast.bcast_binomial
# ---------------------------------------------------------------------------

def _execute_bcast(rank, schedule: Schedule, data, comm: Communicator, *,
                   count: Optional[int] = None,
                   dtype: Optional[Datatype] = None,
                   tag: int = TAG_BCAST) -> Generator:
    me = comm.rank_of_world(rank.rank)
    costs = rank.costs
    ledger = Ledger()
    ledger.charge(costs.call_overhead_us, "mpi")
    ledger.charge(costs.tree_setup_us, "mpi")

    if me == schedule.root:
        if data is None:
            raise MpiError("bcast root must supply data")
        buf = np.array(data, copy=True)
    else:
        if data is not None:
            buf = np.asarray(data)
        elif count is not None:
            buf = (dtype or DOUBLE).buffer(count)
        else:
            raise MpiError("non-root bcast needs a buffer or a count")
    yield Busy.from_ledger(ledger)

    steps = schedule.steps[me]
    segments = _segments_for(rank, schedule, buf)
    if segments is not None:
        contiguous = buf.flags.c_contiguous
        flat = (buf if contiguous else np.ascontiguousarray(buf)).reshape(-1)
        for step in steps:
            if not isinstance(step, BcastStep):
                raise ScheduleExecutionError(
                    "unexpected %r in a bcast schedule" % (step,))
            s = segments[step.seg]
            chunk = flat[s.offset:s.offset + s.count]
            if step.direction == "recv":
                yield from rank.recv(chunk, step.peer, tag, comm,
                                     _context=comm.coll_context)
            else:
                yield from rank.send(chunk, step.peer, tag, comm,
                                     _context=comm.coll_context)
        if not contiguous:
            buf[...] = flat.reshape(buf.shape)
        return buf

    for step in steps:
        if not isinstance(step, BcastStep):
            raise ScheduleExecutionError(
                "unexpected %r in a bcast schedule" % (step,))
        if step.direction == "recv":
            yield from rank.recv(buf, step.peer, tag, comm,
                                 _context=comm.coll_context)
        else:
            yield from rank.send(buf, step.peer, tag, comm,
                                 _context=comm.coll_context)
    return buf


# ---------------------------------------------------------------------------
# AB reduce: plan injection (non-root) + interpreter-walked root
# ---------------------------------------------------------------------------

def _execute_reduce_ab(rank, schedule: Schedule, sendbuf: np.ndarray,
                       op: Op, comm: Communicator, recvbuf) -> Generator:
    engine = rank.ab
    if engine is None:
        raise ScheduleExecutionError(
            "a reduce.ab schedule needs an AB-build rank")
    size = comm.size
    me = comm.rank_of_world(rank.rank)

    # Segmentation consistency first (plan_for is pure, no sim effect).
    segments = None
    if engine.pipeline is not None and size > 1:
        segments = engine.pipeline.plan_for(sendbuf)
    planned = 0 if segments is None else len(segments)
    if planned != schedule.nseg:
        raise ScheduleExecutionError(
            "schedule has nseg=%d but the AB pipeline plans %d segment(s) "
            "for %d bytes" % (schedule.nseg, planned, sendbuf.nbytes))
    if segments is None and sendbuf.nbytes > min(
            engine.costs.ab_eager_limit_bytes,
            engine.costs.eager_limit_bytes):
        raise ScheduleExecutionError(
            "rendezvous-sized payload (%d bytes) cannot run an AB "
            "schedule; lower with reduce.nab instead" % sendbuf.nbytes)

    if me != schedule.root:
        plan = _plan_from_schedule(schedule, comm, me)
        result = yield from engine.reduce(sendbuf, op, schedule.root, comm,
                                          recvbuf, plan=plan)
        return result
    if segments is not None:
        result = yield from _execute_ab_root_segmented(
            rank, engine, schedule, sendbuf, op, comm, recvbuf, segments)
        return result
    result = yield from _execute_ab_root_whole(
        rank, engine, schedule, sendbuf, op, comm, recvbuf)
    return result


def _execute_ab_root_whole(rank, engine, schedule: Schedule,
                           sendbuf: np.ndarray, op: Op, comm: Communicator,
                           recvbuf) -> Generator:
    """The AbEngine.reduce root path: framing charges, then a nab fold."""
    costs = engine.costs
    ledger = Ledger()
    ledger.charge(costs.call_overhead_us, "mpi")
    ledger.charge(costs.ab_decision_us, "ab")
    if comm.size == 1:
        yield Busy.from_ledger(ledger)
        if recvbuf is not None:
            recvbuf[...] = np.asarray(sendbuf).reshape(recvbuf.shape)
            return recvbuf
        return np.array(sendbuf, copy=True)
    engine._next_instance(comm)
    ledger.charge(costs.tree_setup_us, "mpi")
    engine.stats.root_reduces += 1
    yield Busy.from_ledger(ledger)
    result = yield from _execute_reduce_nab(rank, schedule, sendbuf, op,
                                            comm, recvbuf)
    return result


def _execute_ab_root_segmented(rank, engine, schedule: Schedule,
                               sendbuf: np.ndarray, op: Op,
                               comm: Communicator, recvbuf,
                               segments) -> Generator:
    """The AbPipeline.reduce root path, with fold order from the schedule."""
    pipeline = engine.pipeline
    costs = engine.costs
    me = comm.rank_of_world(rank.rank)
    ledger = Ledger()
    ledger.charge(costs.call_overhead_us, "mpi")
    ledger.charge(costs.ab_decision_us, "ab")
    instance = engine._next_instance(comm)
    ledger.charge(costs.tree_setup_us, "mpi")
    pipeline.stats.pipelined_reduces += 1
    flat = np.ascontiguousarray(sendbuf).reshape(-1)
    engine.stats.root_reduces += 1
    acc = np.array(flat, copy=True)
    ledger.charge(costs.copy_us(acc.nbytes), "copy")
    yield Busy.from_ledger(ledger)
    steps = schedule.steps[me]
    if steps:
        tmp = np.empty(max(s.count for s in segments), dtype=acc.dtype)
        for step in steps:
            s = segments[step.seg]
            if isinstance(step, RecvStep):
                yield from engine.rank.recv(tmp[:s.count], step.peer,
                                            TAG_REDUCE, comm,
                                            _context=comm.coll_context)
            elif isinstance(step, FoldStep):
                op_ledger = Ledger()
                op_ledger.charge(costs.op_us(s.count), "op")
                op.apply(acc[s.offset:s.offset + s.count], tmp[:s.count])
                pipeline.stats.root_segment_folds += 1
                if engine.monitor is not None:
                    engine.monitor.on_segment_fold(
                        engine.rank.rank, comm.world_rank(step.child),
                        comm.coll_context, instance, s.index,
                        engine.sim.now)
                yield Busy.from_ledger(op_ledger)
            else:
                raise ScheduleExecutionError(
                    "unexpected %r at the root of a segmented AB reduce"
                    % (step,))
    return _finish_root(acc.reshape(np.asarray(sendbuf).shape), recvbuf)


# ---------------------------------------------------------------------------
# allreduce
# ---------------------------------------------------------------------------

def _split_allreduce(schedule: Schedule):
    """Split an allreduce schedule into its reduce and bcast phases."""
    red_steps = tuple(tuple(s for s in steps if not isinstance(s, BcastStep))
                      for steps in schedule.steps)
    bc_steps = tuple(tuple(s for s in steps if isinstance(s, BcastStep))
                     for steps in schedule.steps)
    red_lowering = ("reduce.ab" if schedule.lowering
                    in ("allreduce.ab", "allreduce.pipelined")
                    else "reduce.nab")
    red = replace(schedule, collective="reduce", lowering=red_lowering,
                  steps=red_steps)
    bc = replace(schedule, collective="bcast", lowering="bcast.tree",
                 steps=bc_steps)
    return red, bc


def _execute_allreduce_sequential(rank, schedule: Schedule,
                                  sendbuf: np.ndarray, op: Op,
                                  comm: Communicator) -> Generator:
    """Mirrors ``allreduce_reduce_bcast``: reduce to the root, then bcast."""
    engine = getattr(rank, "ab", None)
    pipeline = getattr(engine, "pipeline", None)
    if (pipeline is not None and comm.size > 1
            and pipeline.plan_for(sendbuf) is not None):
        raise ScheduleExecutionError(
            "the config pipelines this allreduce; lower with "
            "allreduce.pipelined instead")
    red, bc = _split_allreduce(schedule)
    if red.lowering == "reduce.ab":
        result = yield from _execute_reduce_ab(rank, red, sendbuf, op, comm,
                                               None)
    else:
        result = yield from _execute_reduce_nab(rank, red, sendbuf, op, comm,
                                                None)
    me = comm.rank_of_world(rank.rank)
    if me == schedule.root:
        out = yield from _execute_bcast(rank, bc, result, comm)
        return out
    out = yield from _execute_bcast(rank, bc, None, comm,
                                    count=sendbuf.size,
                                    dtype=from_array(sendbuf))
    return out.reshape(sendbuf.shape)


def _execute_allreduce_pipelined(rank, schedule: Schedule,
                                 sendbuf: np.ndarray, op: Op,
                                 comm: Communicator) -> Generator:
    """Mirrors ``AbPipeline.allreduce`` after proving the schedule matches
    the configured tree (the AB broadcast extension routes by config)."""
    engine = rank.ab
    if engine is None or engine.pipeline is None:
        raise ScheduleExecutionError(
            "an allreduce.pipelined schedule needs an AB build with an "
            "armed pipeline")
    pipeline = engine.pipeline
    segments = pipeline.plan_for(sendbuf)
    planned = 0 if segments is None else len(segments)
    if planned != schedule.nseg or segments is None:
        raise ScheduleExecutionError(
            "schedule has nseg=%d but the AB pipeline plans %d segment(s) "
            "for %d bytes" % (schedule.nseg, planned, sendbuf.nbytes))

    # The broadcast extension derives its forwarding tree from the config,
    # so the schedule must agree with the config-derived lowering; a
    # reshaped pipelined allreduce is not executable.
    from ..schedule.lower import LOWERINGS
    me = comm.rank_of_world(rank.rank)
    shape = rank.tree_shape_for(sendbuf.nbytes)
    if shape.name != rank.tree_shape.name:
        raise ScheduleExecutionError(
            "auto-resolved reduce tree %r differs from the broadcast tree "
            "%r; pipelined allreduce schedules need one tree"
            % (shape.name, rank.tree_shape.name))
    expected = LOWERINGS["allreduce.pipelined"](
        shape, comm.size, root=schedule.root, nseg=schedule.nseg)
    if expected.steps[me] != schedule.steps[me]:
        raise ScheduleExecutionError(
            "allreduce.pipelined schedule disagrees with the configured "
            "%r tree on rank %d; the AB broadcast extension cannot follow "
            "a reshaped schedule" % (shape.name, me))

    bcaster = pipeline._broadcaster(comm)
    pipeline.stats.pipelined_allreduces += 1
    flat = np.ascontiguousarray(sendbuf).reshape(-1)
    out_shape = np.asarray(sendbuf).shape

    if me == schedule.root:
        result = yield from pipeline._root_allreduce(
            flat, segments, op, schedule.root, comm, bcaster, out_shape)
        return result

    red, _ = _split_allreduce(schedule)
    plan = _plan_from_schedule(red, comm, me)
    yield from engine.reduce(flat, op, schedule.root, comm, plan=plan)
    out = np.empty_like(flat)
    for s in segments:
        yield from bcaster.bcast(out[s.offset:s.offset + s.count],
                                 schedule.root, comm)
    return out.reshape(out_shape)
