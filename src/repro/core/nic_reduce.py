"""NIC-based reduction — the paper's declared future work (Sec. VII):

    "Using NIC-based techniques, part or all of the operation may be
    performed on the NIC processor, as opposed to being performed on the
    host.  This frees the host processor for use in other computation,
    naturally bypassing the application."

following the companion line of work (refs. [10]: Buntinas/Panda/Sadayappan,
NIC-based barrier; [11]: Buntinas/Panda, "NIC-Based Reduction in Myrinet
Clusters: Is It Beneficial?").

Mechanics: every rank's contribution is handed to its own NIC once; the
LANai control programs combine partial results *in NIC SRAM* as
``NIC_COLLECTIVE`` packets climb the binomial tree.  Intermediate hosts are
never involved — no signals, no copies, no polling: their reduction CPU
cost is exactly the one hand-off.  The root's NIC DMAs the finished result
up to its host.

The trade-off ref. [11] examines falls out of the cost model: the LANai is
roughly an order of magnitude slower than the host at arithmetic
(``NicParams.nic_op_us_per_element``), so NIC-based reduction buys host-CPU
freedom at the price of latency that grows steeply with message size.  The
``bench_ext_nic_reduce`` benchmark reproduces that crossover.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ..errors import AbProtocolError
from ..mpich.collectives import tree
from ..mpich.communicator import Communicator
from ..mpich.message import AbHeader, Envelope, TransferKind
from ..mpich.operations import Op
from ..gm.packet import Packet, PacketType
from ..sim.cpu import Ledger
from ..sim.process import Busy

#: Base tag for root-side result delivery; instance number is added so
#: out-of-order completions across back-to-back reductions cannot cross.
TAG_NICRED_BASE = 2_000_000

KIND = "nicred"


class _NicState:
    """Combining state for one reduction instance, resident in NIC SRAM."""

    __slots__ = ("acc", "pending", "op", "root_world", "parent_world",
                 "instance", "context_id", "created_at", "buffered")

    def __init__(self, context_id: int, instance: int, root_world: int,
                 parent_world: Optional[int], expected: set,
                 op: Optional[Op], created_at: float):
        self.context_id = context_id
        self.instance = instance
        self.root_world = root_world
        self.parent_world = parent_world
        self.acc: Optional[np.ndarray] = None
        self.pending = set(expected)
        self.op = op
        self.created_at = created_at
        #: Remote contributions that arrived before the local hand-off
        #: named the operation; folded as soon as it does.
        self.buffered: list[tuple[object, np.ndarray]] = []


class NicReduceStats:
    __slots__ = ("reduces", "nic_combines", "forwards", "root_deliveries",
                 "max_states")

    def __init__(self) -> None:
        self.reduces = 0
        self.nic_combines = 0
        self.forwards = 0
        self.root_deliveries = 0
        self.max_states = 0


LOCAL = "local"


class NicReduceUnit:
    """The modified LANai control program for one NIC."""

    def __init__(self, node):
        self.node = node
        self.nic = node.nic
        self.sim = node.sim
        self._comms: dict[int, Communicator] = {}
        self._states: dict[tuple[int, int], _NicState] = {}
        #: When the LANai's combining ALU frees up (it is serial).
        self.busy_until = 0.0
        self.stats = NicReduceStats()
        node.nic.collective_unit = self

    def register_comm(self, comm: Communicator) -> None:
        self._comms[comm.coll_context] = comm

    # ------------------------------------------------------------------
    # NIC-side events
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        """A NIC_COLLECTIVE packet arrived from the wire."""
        env: Envelope = packet.payload
        if env.ab is None or env.ab.kind != KIND:
            raise AbProtocolError("NIC unit got a non-nicred packet")
        state = self._state_for(env.context_id, env.ab.instance, env.ab.root,
                                None)
        self._fold(state, env.src, env.data)

    def contribute_local(self, context_id: int, instance: int,
                         root_world: int, op: Op, data: np.ndarray,
                         at: float) -> None:
        """The host handed its own contribution down (DMA already timed by
        the caller's offset in ``at``)."""
        self.sim.at(at, self._combine_local, context_id, instance,
                    root_world, op, np.array(data, copy=True))

    # ------------------------------------------------------------------
    def _state_for(self, context_id: int, instance: int, root_world: int,
                   op: Optional[Op]) -> _NicState:
        key = (context_id, instance)
        state = self._states.get(key)
        if state is not None:
            return state
        comm = self._comms.get(context_id)
        if comm is None:
            raise AbProtocolError(
                f"nicred packet for unregistered context {context_id}")
        size = comm.size
        me = comm.rank_of_world(self.node.id)
        root = comm.rank_of_world(root_world)
        rel = tree.relative_rank(me, root, size)
        children = {
            comm.world_rank(tree.absolute_rank(c, root, size))
            for c in tree.children(rel, size)
        }
        parent_world = (None if rel == 0 else comm.world_rank(
            tree.absolute_rank(tree.parent(rel), root, size)))
        expected = children | {LOCAL}
        state = _NicState(context_id, instance, root_world, parent_world,
                          expected, op, self.sim.now)
        self._states[key] = state
        self.stats.max_states = max(self.stats.max_states, len(self._states))
        return state

    def _combine_local(self, context_id: int, instance: int, root_world: int,
                       op: Op, data: np.ndarray) -> None:
        state = self._state_for(context_id, instance, root_world, op)
        if state.op is None:
            state.op = op
        self._fold(state, LOCAL, data)
        # The op is known now: fold anything that raced ahead of the host.
        while state.buffered:
            who, buffered = state.buffered.pop(0)
            self._fold(state, who, buffered)

    def _fold(self, state: _NicState, who, data: np.ndarray) -> None:
        if who not in state.pending:
            raise AbProtocolError(
                f"nicred duplicate contribution {who!r} for instance "
                f"{state.instance} at node {self.node.id}")
        if state.op is None and state.acc is not None:
            # Can't combine two operands before the local hand-off names
            # the operation: keep the payload in NIC SRAM for later.
            state.buffered.append((who, np.array(data, copy=True)))
            return
        # Serialize on the LANai ALU; arithmetic is slow on the NIC.
        cost = (self.node.config.nic.nic_op_us_per_element * data.size *
                self.node.spec.lanai_scale())
        start = max(self.sim.now, self.busy_until)
        self.busy_until = start + cost
        self.stats.nic_combines += 1
        if state.acc is None:
            state.acc = np.array(data, copy=True)
        else:
            state.op.apply(state.acc, data.reshape(state.acc.shape))
        state.pending.discard(who)
        if not state.pending:
            self.sim.at(self.busy_until, self._complete, state)

    def _complete(self, state: _NicState) -> None:
        del self._states[(state.context_id, state.instance)]
        header = AbHeader(root=state.root_world, instance=state.instance,
                          kind=KIND)
        if state.parent_world is not None:
            env = Envelope(src=self.node.id, dst=state.parent_world,
                           tag=TAG_NICRED_BASE + state.instance,
                           context_id=state.context_id,
                           kind=TransferKind.EAGER, data=state.acc,
                           nbytes=state.acc.nbytes, ab=header)
            packet = Packet(self.node.id, state.parent_world,
                            PacketType.NIC_COLLECTIVE, env.nbytes, env)
            self.stats.forwards += 1
            self.nic.send(packet, launch_offset=0.0)
            return
        # Root: DMA the finished result up to the host as a plain eager
        # message the blocked root receive will match.
        self.stats.root_deliveries += 1
        env = Envelope(src=self.node.id, dst=self.node.id,
                       tag=TAG_NICRED_BASE + state.instance,
                       context_id=state.context_id,
                       kind=TransferKind.EAGER, data=state.acc,
                       nbytes=state.acc.nbytes, ab=None)
        packet = Packet(self.node.id, self.node.id, PacketType.EAGER,
                        env.nbytes, env)
        dma = (self.nic.params.dma_setup_us +
               env.nbytes / self.nic.dma_bytes_per_us)
        self.sim.schedule(dma, self.nic._rx_complete, packet)


class NicReduce:
    """Host-side API for NIC-based reduction (one per rank)."""

    def __init__(self, mpi_rank):
        self.rank = mpi_rank
        self.node = mpi_rank.node
        self.costs = mpi_rank.costs
        self.unit = NicReduceUnit(mpi_rank.node)
        self._instances: dict[int, int] = {}

    def register_comm(self, comm: Communicator) -> None:
        """Collective: every participating rank registers the communicator
        so its NIC can derive the tree before any packet arrives."""
        self.unit.register_comm(comm)

    def reduce(self, data: np.ndarray, op: Op, root: int,
               comm: Communicator) -> Generator:
        """NIC-based ``MPI_Reduce``: internal hosts pay one hand-off only."""
        data = np.asarray(data)
        me = comm.rank_of_world(self.rank.rank)
        if not (0 <= root < comm.size):
            raise ValueError(f"root {root} outside comm of size {comm.size}")
        self.unit.stats.reduces += 1
        instance = self._next_instance(comm)
        ledger = Ledger()
        ledger.charge(self.costs.call_overhead_us, "mpi")
        # Host hand-off: doorbell plus DMA of the contribution into NIC
        # SRAM (charged to the host like any gm_send staging cost).
        ledger.charge(self.costs.host_send_overhead_us, "send")
        dma_us = (self.node.config.nic.dma_setup_us +
                  data.nbytes / self.node.spec.pci_bytes_per_us)
        self.unit.contribute_local(comm.coll_context, instance,
                                   comm.world_rank(root), op, data,
                                   self.node.sim.now + ledger.total + dma_us)
        if me != root:
            yield Busy.from_ledger(ledger)
            return None
        buffer = np.empty_like(data)
        request = self.rank.progress.post_recv(
            buffer, self.rank.rank, TAG_NICRED_BASE + instance,
            comm.coll_context, ledger)
        yield Busy.from_ledger(ledger)
        yield from self.rank.progress.wait(request)
        return buffer

    def _next_instance(self, comm: Communicator) -> int:
        ctx = comm.coll_context
        nxt = self._instances.get(ctx, 0)
        self._instances[ctx] = nxt + 1
        return nxt
