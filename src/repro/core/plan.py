"""Neighbor plans injected by the schedule interpreter.

A :class:`CollectivePlan` carries the (parent, children) world ranks a
:class:`~repro.schedule.ir.Schedule` resolved for one rank, so the AB engine
and pipeline can run schedule-driven collectives without re-deriving the
tree from config.  When tree healing is active the engines ignore the plan
and recompute from the healed tree — fault behavior always wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class CollectivePlan:
    """Resolved reduce-phase neighbors (world ranks) for one rank."""

    parent_world: int
    children_world: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "children_world",
                           tuple(self.children_world))
