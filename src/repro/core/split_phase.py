"""Split-phase (non-blocking) reduction — the paper's Sec. II observation
that even the root "would enable optimization ... a split-phase
implementation", made concrete.  This is the 2003-era precursor of
MPI-3's ``MPI_Ireduce``.

* ``start()`` initiates the reduction and returns immediately on every
  rank.  Non-root ranks reuse the application-bypass machinery verbatim
  (their synchronous component already returns without blocking).  The
  root — which the blocking API forces to spin — instead registers a
  *root state* (accumulator + pending children) and lets the progress
  hook / NIC signals complete it in the background.
* ``wait(handle)`` blocks until the local part is done and, at the root,
  returns the full result.

The root keeps NIC signals pinned while any split-phase reduction it
roots is outstanding, so completion needs no application involvement.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ..errors import AbProtocolError
from ..mpich.collectives import tree
from ..mpich.communicator import Communicator
from ..mpich.message import TAG_REDUCE, Envelope, TransferKind
from ..mpich.operations import Op
from ..sim.cpu import Ledger
from ..sim.process import Busy, Trigger, WaitFor
from .engine import AbEngine

EXT_KEY = "ireduce_root"


class ReduceHandle:
    """Completion handle returned by :meth:`SplitPhaseReduce.start`."""

    __slots__ = ("comm", "root", "instance", "is_root", "trigger")

    def __init__(self, comm: Communicator, root: int, instance: int,
                 is_root: bool):
        self.comm = comm
        self.root = root
        self.instance = instance
        self.is_root = is_root
        self.trigger = Trigger()

    @property
    def done(self) -> bool:
        return self.trigger.fired

    @property
    def result(self) -> Optional[np.ndarray]:
        return self.trigger.value


class _RootState:
    __slots__ = ("acc", "pending", "op", "handle", "sync_absorbed",
                 "segments")

    def __init__(self, acc: np.ndarray, pending: set, op: Op,
                 handle: ReduceHandle, segments=None):
        self.acc = acc
        #: Outstanding contributions: child world ranks (whole-message), or
        #: ``(child, seg)`` pairs when the reduction is segmented
        #: (repro.pipeline) — each child then contributes once per segment.
        self.pending = pending
        self.op = op
        self.handle = handle
        self.sync_absorbed = 0
        #: Segment plan, or None for a whole-message reduction.
        self.segments = segments

    def child_outstanding(self, child: int) -> bool:
        if self.segments is None:
            return child in self.pending
        return any(key[0] == child for key in self.pending)


class SplitPhaseStats:
    __slots__ = ("starts", "root_starts", "async_root_children",
                 "pre_arrived_children", "waits")

    def __init__(self) -> None:
        self.starts = 0
        self.root_starts = 0
        self.async_root_children = 0
        self.pre_arrived_children = 0
        self.waits = 0


class SplitPhaseReduce:
    """Per-rank split-phase reduce extension."""

    def __init__(self, engine: AbEngine):
        self.engine = engine
        self.costs = engine.costs
        self.stats = SplitPhaseStats()
        self._states: dict[tuple[int, int], _RootState] = {}
        engine.extensions[EXT_KEY] = self

    # ------------------------------------------------------------------
    def start(self, sendbuf: np.ndarray, op: Op, root: int,
              comm: Communicator) -> Generator:
        """Initiate; returns a :class:`ReduceHandle` without blocking."""
        self.stats.starts += 1
        me = comm.rank_of_world(self.engine.rank.rank)
        if me != root:
            # The ordinary AB path already returns without blocking for
            # non-root ranks; the eager snapshot makes the send buffer
            # immediately reusable.
            yield from self.engine.reduce(np.asarray(sendbuf), op, root, comm)
            handle = ReduceHandle(comm, root, -1, is_root=False)
            handle.trigger.fire(None)
            return handle

        self.stats.root_starts += 1
        instance = self.engine._next_instance(comm)
        handle = ReduceHandle(comm, root, instance, is_root=True)
        ledger = Ledger()
        ledger.charge(self.costs.call_overhead_us, "mpi")
        ledger.charge(self.costs.ab_decision_us, "ab")
        ledger.charge(self.costs.tree_setup_us, "mpi")

        size = comm.size
        if size == 1:
            yield Busy.from_ledger(ledger)
            handle.trigger.fire(np.array(sendbuf, copy=True))
            return handle

        acc = np.array(sendbuf, copy=True)
        ledger.charge(self.costs.copy_us(acc.nbytes), "copy")
        children = {
            comm.world_rank(tree.absolute_rank(c, root, size))
            for c in self.engine.rank.tree_shape.children(0, size)
        }
        # Segmented reduction (repro.pipeline): non-root ranks stream
        # per-segment contributions, so the root state tracks (child, seg)
        # pairs and folds each arrival into its slice.  plan_for uses only
        # (config, buffer geometry), so the segmentation decision here
        # matches the one every non-root rank makes.
        pipeline = getattr(self.engine, "pipeline", None)
        segments = (pipeline.plan_for(np.asarray(sendbuf))
                    if pipeline is not None else None)
        if segments is not None:
            pending = {(c, s.index) for c in children for s in segments}
        else:
            pending = set(children)
        state = _RootState(acc, pending, op, handle, segments=segments)
        key = (comm.coll_context, instance)
        self._states[key] = state
        self.engine.pin_signals()

        # Children that raced ahead of this call landed in the *default*
        # MPICH unexpected queue (the hook routes root-bound packets there
        # when no root state is registered).  Fold them in now — FIFO per
        # child guarantees the oldest entries are ours, in segment order.
        matching = self.engine.rank.progress.matching
        for child in sorted(children):
            while state.child_outstanding(child):
                entry = matching.take_unexpected(child, TAG_REDUCE,
                                                 comm.coll_context)
                if entry is None:
                    break
                env = entry.envelope
                if env.ab is None or env.ab.instance != instance:
                    raise AbProtocolError(
                        f"split-phase root found instance "
                        f"{getattr(env.ab, 'instance', None)} in the "
                        f"unexpected queue, expected {instance}")
                ledger.charge(self.costs.ab_descriptor_match_us, "ab")
                self.stats.pre_arrived_children += 1
                self._fold(state, env, ledger)
        yield Busy.from_ledger(ledger)
        return handle

    def wait(self, handle: ReduceHandle) -> Generator:
        """Block until locally complete; root returns the result array."""
        self.stats.waits += 1
        if handle.done:
            return handle.result
        progress = self.engine.rank.progress
        progress.active_depth += 1
        try:
            while not handle.trigger.fired:
                arm = self.engine.nic.rx_notifier.wait()
                ledger = Ledger()
                progress.drain(ledger)
                if ledger.total > 0.0:
                    yield Busy.from_ledger(ledger)
                if handle.trigger.fired:
                    break
                yield WaitFor(arm, poll_category="poll")
        finally:
            progress.active_depth -= 1
        return handle.result

    # ------------------------------------------------------------------
    # called by AbEngine.preprocess for packets whose AB root is this rank
    # ------------------------------------------------------------------
    def try_absorb(self, env: Envelope, ledger: Ledger) -> bool:
        if env.kind is not TransferKind.EAGER or env.ab is None:
            return False
        key = (env.context_id, env.ab.instance)
        state = self._states.get(key)
        if state is None:
            return False
        ledger.charge(self.costs.ab_descriptor_match_us, "ab")
        self.stats.async_root_children += 1
        self._fold(state, env, ledger)
        return True

    def _fold(self, state: _RootState, env: Envelope,
              ledger: Ledger) -> None:
        seg = env.ab.seg if env.ab is not None else -1
        if state.segments is not None and seg >= 0:
            key = (env.src, seg)
            if key not in state.pending:
                raise AbProtocolError(
                    f"split-phase root got duplicate segment {seg} from "
                    f"child {env.src}")
            s = state.segments[seg]
            ledger.charge(self.costs.op_us(s.count), "op")
            flat = state.acc.reshape(-1)
            state.op.apply(flat[s.offset:s.offset + s.count],
                           env.data.reshape(-1)[:s.count])
            state.pending.discard(key)
            engine = self.engine
            if engine.monitor is not None:
                engine.monitor.on_segment_fold(
                    engine.rank.rank, env.src,
                    state.handle.comm.coll_context,
                    state.handle.instance, seg, self.engine.sim.now)
        else:
            if env.src not in state.pending:
                raise AbProtocolError(
                    f"split-phase root got duplicate child {env.src}")
            ledger.charge(self.costs.op_us(state.acc.size), "op")
            state.op.apply(state.acc, env.data.reshape(state.acc.shape))
            state.pending.discard(env.src)
        if not state.pending:
            key = (state.handle.comm.coll_context, state.handle.instance)
            del self._states[key]
            self.engine.unpin_signals(ledger)
            state.handle.trigger.fire(state.acc)

    @property
    def outstanding_roots(self) -> int:
        return len(self._states)
