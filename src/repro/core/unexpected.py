"""The custom application-bypass unexpected queue (paper Sec. V-A).

Early AB messages — those arriving before the local ``MPI_Reduce`` has built
the matching descriptor — are copied **once** into this queue and later
consumed *directly from it* by the synchronous path, for a total of one copy
instead of the two the default MPICH unexpected path pays (a 50% reduction,
Sec. V-B).  Expected and late AB messages never touch this queue at all and
are combined straight out of the packet buffer (zero copies, a 100%
reduction, Sec. V-C).

Lookups are **dict-indexed**, not scanned: entries are registered under two
indexes at insertion —

* per-sender FIFO (``src_world -> deque``), serving :meth:`take`'s
  oldest-from-sender rule in O(1);
* exact segment identity (``(src_world, instance, seg) -> deque``), serving
  :meth:`take_for`'s segmented match in O(1).

The previous implementation scanned one flat list per lookup; at thousands
of ranks with pipelined windows the scans went quadratic.  An entry taken
through either index is flagged ``consumed`` and lazily skipped by the
other, so the two views never disagree.  Semantics are unchanged: per
sender, entries still come out in exact insertion order.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from ..mpich.message import AbHeader
from ..sim import access


class AbUnexpectedEntry:
    """One buffered early AB message."""

    __slots__ = ("src_world", "header", "data", "arrived_at", "consumed")

    def __init__(self, src_world: int, header: AbHeader, data: np.ndarray,
                 arrived_at: float):
        self.src_world = src_world
        self.header = header
        self.data = data
        self.arrived_at = arrived_at
        #: Set when taken through either index; the other index (and the
        #: insertion-order view) lazily drop flagged entries.
        self.consumed = False


class AbUnexpectedQueue:
    """FIFO of early AB messages, matched by sender.

    Access-traced like :class:`~repro.core.descriptor.DescriptorQueue`:
    the per-sender FIFO take rule makes insertion order meaningful, so
    same-timestamp puts/takes from unordered events are latent schedule
    races the happens-before checker must see.
    """

    __slots__ = ("_by_sender", "_by_key", "_order", "_size",
                 "inserted", "consumed", "max_len", "owner")

    def __init__(self) -> None:
        self._by_sender: dict[int, deque[AbUnexpectedEntry]] = {}
        self._by_key: dict[tuple[int, int, int],
                           deque[AbUnexpectedEntry]] = {}
        #: All entries in insertion order (for diagnostics); consumed
        #: entries are trimmed lazily from the front.
        self._order: deque[AbUnexpectedEntry] = deque()
        self._size = 0
        self.inserted = 0
        self.consumed = 0
        self.max_len = 0
        #: World rank of the owning engine (None in raw unit tests).
        self.owner: Optional[int] = None

    def put(self, src_world: int, header: AbHeader, data: np.ndarray,
            arrived_at: float) -> AbUnexpectedEntry:
        if access.TRACER is not None:
            access.trace(access.WRITE, ("ab_unexpected", self.owner),
                         note=f"put src={src_world} "
                              f"inst={header.instance} seg={header.seg}")
        entry = AbUnexpectedEntry(src_world, header, data, arrived_at)
        sender_q = self._by_sender.get(src_world)
        if sender_q is None:
            sender_q = self._by_sender[src_world] = deque()
        sender_q.append(entry)
        key = (src_world, header.instance, header.seg)
        key_q = self._by_key.get(key)
        if key_q is None:
            key_q = self._by_key[key] = deque()
        key_q.append(entry)
        order = self._order
        order.append(entry)
        while order and order[0].consumed:
            order.popleft()
        self._size += 1
        self.inserted += 1
        if self._size > self.max_len:
            self.max_len = self._size
        return entry

    def _claim(self, entry: AbUnexpectedEntry) -> AbUnexpectedEntry:
        entry.consumed = True
        self._size -= 1
        self.consumed += 1
        return entry

    def take(self, src_world: int) -> Optional[AbUnexpectedEntry]:
        """Oldest entry from ``src_world`` (FIFO per sender)."""
        if access.TRACER is not None:
            access.trace(access.WRITE, ("ab_unexpected", self.owner),
                         note=f"take src={src_world}")
        queue = self._by_sender.get(src_world)
        while queue:
            entry = queue.popleft()
            if not entry.consumed:
                return self._claim(entry)
        return None

    def take_for(self, src_world: int, instance: int,
                 seg: int) -> Optional[AbUnexpectedEntry]:
        """Exact-match take for a segmented entry (repro.pipeline): the
        per-sender FIFO rule cannot tell two buffered segments of the same
        instance apart, so segmented consumers name the segment."""
        if access.TRACER is not None:
            access.trace(access.WRITE, ("ab_unexpected", self.owner),
                         note=f"take_for src={src_world} inst={instance} "
                              f"seg={seg}")
        queue = self._by_key.get((src_world, instance, seg))
        while queue:
            entry = queue.popleft()
            if not entry.consumed:
                return self._claim(entry)
        return None

    def peek_senders(self) -> list[int]:
        return [e.src_world for e in self._order if not e.consumed]

    @property
    def empty(self) -> bool:
        return self._size == 0

    def __len__(self) -> int:
        return self._size
