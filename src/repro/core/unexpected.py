"""The custom application-bypass unexpected queue (paper Sec. V-A).

Early AB messages — those arriving before the local ``MPI_Reduce`` has built
the matching descriptor — are copied **once** into this queue and later
consumed *directly from it* by the synchronous path, for a total of one copy
instead of the two the default MPICH unexpected path pays (a 50% reduction,
Sec. V-B).  Expected and late AB messages never touch this queue at all and
are combined straight out of the packet buffer (zero copies, a 100%
reduction, Sec. V-C).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..mpich.message import AbHeader
from ..sim import access


class AbUnexpectedEntry:
    """One buffered early AB message."""

    __slots__ = ("src_world", "header", "data", "arrived_at")

    def __init__(self, src_world: int, header: AbHeader, data: np.ndarray,
                 arrived_at: float):
        self.src_world = src_world
        self.header = header
        self.data = data
        self.arrived_at = arrived_at


class AbUnexpectedQueue:
    """FIFO of early AB messages, matched by sender.

    Access-traced like :class:`~repro.core.descriptor.DescriptorQueue`:
    the per-sender FIFO take rule makes insertion order meaningful, so
    same-timestamp puts/takes from unordered events are latent schedule
    races the happens-before checker must see.
    """

    __slots__ = ("_entries", "inserted", "consumed", "max_len", "owner")

    def __init__(self) -> None:
        self._entries: list[AbUnexpectedEntry] = []
        self.inserted = 0
        self.consumed = 0
        self.max_len = 0
        #: World rank of the owning engine (None in raw unit tests).
        self.owner: Optional[int] = None

    def put(self, src_world: int, header: AbHeader, data: np.ndarray,
            arrived_at: float) -> AbUnexpectedEntry:
        if access.TRACER is not None:
            access.trace(access.WRITE, ("ab_unexpected", self.owner),
                         note=f"put src={src_world} "
                              f"inst={header.instance} seg={header.seg}")
        entry = AbUnexpectedEntry(src_world, header, data, arrived_at)
        self._entries.append(entry)
        self.inserted += 1
        self.max_len = max(self.max_len, len(self._entries))
        return entry

    def take(self, src_world: int) -> Optional[AbUnexpectedEntry]:
        """Oldest entry from ``src_world`` (FIFO per sender)."""
        if access.TRACER is not None:
            access.trace(access.WRITE, ("ab_unexpected", self.owner),
                         note=f"take src={src_world}")
        for i, entry in enumerate(self._entries):
            if entry.src_world == src_world:
                del self._entries[i]
                self.consumed += 1
                return entry
        return None

    def take_for(self, src_world: int, instance: int,
                 seg: int) -> Optional[AbUnexpectedEntry]:
        """Exact-match take for a segmented entry (repro.pipeline): the
        per-sender FIFO rule cannot tell two buffered segments of the same
        instance apart, so segmented consumers name the segment."""
        if access.TRACER is not None:
            access.trace(access.WRITE, ("ab_unexpected", self.owner),
                         note=f"take_for src={src_world} inst={instance} "
                              f"seg={seg}")
        for i, entry in enumerate(self._entries):
            if (entry.src_world == src_world and entry.header.seg == seg
                    and entry.header.instance == instance):
                del self._entries[i]
                self.consumed += 1
                return entry
        return None

    def peek_senders(self) -> list[int]:
        return [e.src_world for e in self._entries]

    @property
    def empty(self) -> bool:
        return not self._entries

    def __len__(self) -> int:
        return len(self._entries)
