"""Exception hierarchy for the ``repro`` package.

Every error raised by the simulator, the GM/network substrate, the MPICH-like
layer or the application-bypass core derives from :class:`ReproError` so that
callers can catch the whole family with one ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Generic error in the discrete-event simulation core."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked.

    This is the simulation analogue of an MPI program hanging: some rank is
    waiting for a message or trigger that can never fire.
    """

    def __init__(self, blocked: list[str]):
        self.blocked = list(blocked)
        msg = "deadlock: %d process(es) blocked forever: %s" % (
            len(blocked),
            ", ".join(blocked[:8]) + ("..." if len(blocked) > 8 else ""),
        )
        super().__init__(msg)


class ProcessFailed(SimulationError):
    """A simulated process raised an exception; wraps the original error."""

    def __init__(self, name: str, original: BaseException):
        self.process_name = name
        self.original = original
        super().__init__(f"process {name!r} failed: {original!r}")


class ConfigError(ReproError):
    """Invalid or inconsistent configuration parameters."""


class MpiError(ReproError):
    """Error in the MPICH-like message passing layer."""


class MatchError(MpiError):
    """Message matching invariant violated (e.g. malformed envelope)."""


class TruncationError(MpiError):
    """A received message was longer than the posted receive buffer."""


class GmError(ReproError):
    """Error in the GM / NIC substrate."""


class PinError(GmError):
    """Invalid pinned-memory (DMA registration) operation."""


class AbProtocolError(ReproError):
    """Application-bypass reduction protocol invariant violated."""


class InvariantViolation(ReproError):
    """A runtime protocol invariant tracked by
    :class:`repro.analysis.invariants.InvariantMonitor` was violated while
    the monitor ran in ``assert`` mode.

    Carries the monitor's structured report so the failure shows *which*
    paper invariant broke, on which node, at what virtual time.
    """

    def __init__(self, message: str, report: dict | None = None):
        self.report = report or {}
        super().__init__(message)
