"""Per-figure experiment drivers (see DESIGN.md §4 for the index)."""

from . import (ablations, extensions, fig6, fig7, fig8, fig9, fig10,
               fig_faults, fig_pap, fig_pipeline, fig_schedule, fig_tenancy,
               fig_topo, scale)
from .common import (ExperimentOutput, PAPER_ELEMENTS, PAPER_MSG_SIZES,
                     PAPER_SIZES, PAPER_SKEWS)

EXPERIMENTS = {
    "fig6": fig6.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
    "fig9": fig9.main,
    "fig10": fig10.main,
    "fig_topo": fig_topo.main,
    "fig_faults": fig_faults.main,
    "fig_pipeline": fig_pipeline.main,
    "fig_schedule": fig_schedule.main,
    "fig_tenancy": fig_tenancy.main,
    "fig_pap": fig_pap.main,
    "ablations": ablations.main,
    "extensions": extensions.main,
    "scale": scale.main,
}

__all__ = [
    "fig6", "fig7", "fig8", "fig9", "fig10", "fig_topo", "fig_faults",
    "fig_pap", "fig_pipeline", "fig_schedule", "fig_tenancy", "ablations",
    "extensions", "scale",
    "EXPERIMENTS", "ExperimentOutput",
    "PAPER_SIZES", "PAPER_ELEMENTS", "PAPER_SKEWS", "PAPER_MSG_SIZES",
]
