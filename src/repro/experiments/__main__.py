"""CLI dispatcher: ``python -m repro.experiments <experiment> [flags]``."""

from __future__ import annotations

import sys

from . import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        names = ", ".join(sorted(EXPERIMENTS))
        print("usage: python -m repro.experiments <experiment> [flags]")
        print(f"experiments: {names}, all")
        print("common flags: --iterations N --seed N --quick "
              "--jobs N --bench-json [PATH]")
        return 0
    name, rest = argv[0], argv[1:]
    if name == "all":
        for key in ("fig6", "fig7", "fig8", "fig9", "fig10", "fig_topo",
                    "fig_faults", "fig_pipeline", "fig_schedule",
                    "fig_tenancy", "fig_pap", "ablations", "extensions",
                    "scale"):
            EXPERIMENTS[key](rest)
        return 0
    runner = EXPERIMENTS.get(name)
    if runner is None:
        print(f"unknown experiment {name!r}; "
              f"choose from {sorted(EXPERIMENTS)} or 'all'", file=sys.stderr)
        return 2
    runner(rest)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
