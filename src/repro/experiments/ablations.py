"""Ablation studies for the design choices the paper discusses.

1. **Exit-delay heuristic** (Sec. IV-E): none / fixed / log / linear
   policies, measuring skewed and unskewed CPU utilization plus the number
   of signals the window avoided.
2. **Signal cost sensitivity** (Sec. IV-A, interrupt- vs. thread-like
   regimes): sweep the per-signal kernel overhead and watch the factor of
   improvement.
3. **Queue strategy** (Sec. V-A): the shipped custom AB unexpected queue
   vs. the rejected design that reuses MPICH's non-blocking machinery
   (extra copy + management per message).
4. **Eager-limit fallback**: where the ab protocol stops being used and
   the default path takes over.

Every study is a grid of independent simulator runs, so each builds its
points and executes them through the orchestrator — ``--jobs N`` applies
here exactly as it does to the figure sweeps.
"""

from __future__ import annotations

from typing import Optional

from ..bench.report import Table
from ..config import AbParams, NicParams
from ..orchestrate.points import ConfigSpec, SweepPoint
from ..orchestrate.runner import run_points
from .common import (ExperimentOutput, banner, effective_iterations,
                     make_parser, maybe_write_bench_json, print_progress)


def _cpu_point(spec: ConfigSpec, build: str, *, elements: int,
               skew: float, iterations: int,
               experiment: str) -> SweepPoint:
    return SweepPoint(experiment=experiment, kind="cpu_util", config=spec,
                      build=build, elements=elements, max_skew_us=skew,
                      iterations=iterations)


def ablate_exit_delay(*, size: int = 32, iterations: int = 60, seed: int = 1,
                      jobs: int = 1, progress=None,
                      collect=None) -> Table:
    policies = (("none", 0.0), ("fixed", 8.0), ("log", 2.0), ("linear", 0.5))
    table = Table("Ablation: exit-delay policy (32 nodes, 4 elements)",
                  "variant", list(range(len(policies))))
    points = []
    for policy, coeff in policies:
        spec = ConfigSpec("paper", size, seed,
                          ab=AbParams(exit_delay_policy=policy,
                                      exit_delay_coeff_us=coeff))
        points.append(_cpu_point(spec, "ab", elements=4, skew=1000.0,
                                 iterations=iterations,
                                 experiment="ablation_exit_delay"))
        points.append(_cpu_point(spec, "ab", elements=4, skew=0.0,
                                 iterations=iterations,
                                 experiment="ablation_exit_delay"))
    results = run_points(points, jobs=jobs, progress=progress)
    if collect is not None:
        collect.extend(results)
    skewed = [r.metrics["avg_util_us"] for r in results[0::2]]
    unskewed = [r.metrics["avg_util_us"] for r in results[1::2]]
    signals = [r.metrics["signals"] for r in results[1::2]]
    table.add_series("util@skew1000", skewed)
    table.add_series("util@noskew", unskewed)
    table.add_series("signals@noskew", signals)
    labels = [f"{policy}({coeff:g})" for policy, coeff in policies]
    table.title += "  [variants: " + ", ".join(
        f"{i}={lbl}" for i, lbl in enumerate(labels)) + "]"
    return table


def ablate_signal_cost(*, size: int = 32, iterations: int = 60, seed: int = 1,
                       jobs: int = 1, progress=None,
                       collect=None) -> Table:
    overheads = (2.0, 5.0, 10.0, 20.0)
    table = Table("Ablation: per-signal kernel overhead (32 nodes, "
                  "4 elements, skew 1000us)", "signal_us", overheads)
    points = []
    for overhead in overheads:
        spec = ConfigSpec("paper", size, seed,
                          nic=NicParams(signal_overhead_us=overhead))
        for build in ("nab", "ab"):
            points.append(_cpu_point(spec, build, elements=4, skew=1000.0,
                                     iterations=iterations,
                                     experiment="ablation_signal_cost"))
    results = run_points(points, jobs=jobs, progress=progress)
    if collect is not None:
        collect.extend(results)
    nab_utils = [r.metrics["avg_util_us"] for r in results[0::2]]
    ab_utils = [r.metrics["avg_util_us"] for r in results[1::2]]
    table.add_series("ab util", ab_utils)
    table.add_series("factor", [n / a for n, a in zip(nab_utils, ab_utils)])
    return table


def ablate_queue_strategy(*, size: int = 32, iterations: int = 60,
                          seed: int = 1, jobs: int = 1, progress=None,
                          collect=None) -> Table:
    variants = (False, True)
    table = Table("Ablation: custom AB queue vs. reusing MPICH non-blocking "
                  "machinery (32 nodes, 128 elements)", "reuse_mpich",
                  [int(v) for v in variants])
    points = []
    for reuse in variants:
        spec = ConfigSpec("paper", size, seed,
                          ab=AbParams(reuse_mpich_queues=reuse))
        points.append(_cpu_point(spec, "ab", elements=128, skew=1000.0,
                                 iterations=iterations,
                                 experiment="ablation_queue_strategy"))
        points.append(_cpu_point(spec, "ab", elements=128, skew=0.0,
                                 iterations=iterations,
                                 experiment="ablation_queue_strategy"))
    results = run_points(points, jobs=jobs, progress=progress)
    if collect is not None:
        collect.extend(results)
    table.add_series("util@skew1000",
                     [r.metrics["avg_util_us"] for r in results[0::2]])
    table.add_series("util@noskew",
                     [r.metrics["avg_util_us"] for r in results[1::2]])
    return table


def ablate_eager_limit(*, size: int = 16, iterations: int = 40, seed: int = 1,
                       jobs: int = 1, progress=None,
                       collect=None) -> Table:
    """Message sizes straddling a lowered AB eager limit: beyond it the
    protocol must fall back to the default path and the ab advantage
    disappears (but correctness holds)."""
    limit_bytes = 512
    element_sizes = (16, 48, 64, 80, 128)  # 128B .. 1KiB around the limit
    table = Table(f"Ablation: AB eager-limit fallback (limit={limit_bytes}B, "
                  f"{size} nodes, skew 1000us)", "elements", element_sizes)
    limited = ConfigSpec("paper", size, seed,
                         ab=AbParams(eager_limit_bytes=limit_bytes))
    baseline = ConfigSpec("paper", size, seed)
    points = []
    for elements in element_sizes:
        points.append(_cpu_point(limited, "ab", elements=elements,
                                 skew=1000.0, iterations=iterations,
                                 experiment="ablation_eager_limit"))
        points.append(_cpu_point(baseline, "ab", elements=elements,
                                 skew=1000.0, iterations=iterations,
                                 experiment="ablation_eager_limit"))
        points.append(_cpu_point(baseline, "nab", elements=elements,
                                 skew=1000.0, iterations=iterations,
                                 experiment="ablation_eager_limit"))
    results = run_points(points, jobs=jobs, progress=progress)
    if collect is not None:
        collect.extend(results)
    utils = [r.metrics["avg_util_us"] for r in results[0::3]]
    utils_nolimit = [r.metrics["avg_util_us"] for r in results[1::3]]
    nab_utils = [r.metrics["avg_util_us"] for r in results[2::3]]
    table.add_series("ab util (limit 512B)", utils)
    table.add_series("ab util (limit 16K)", utils_nolimit)
    table.add_series("factor vs nab",
                     [n / lim for n, lim in zip(nab_utils, utils)])
    return table


def run(*, iterations: int = 60, seed: int = 1, jobs: int = 1,
        progress=None) -> ExperimentOutput:
    out = ExperimentOutput("ablations")
    out.tables.append(ablate_exit_delay(iterations=iterations, seed=seed,
                                        jobs=jobs, progress=progress,
                                        collect=out.points))
    out.tables.append(ablate_signal_cost(iterations=iterations, seed=seed,
                                         jobs=jobs, progress=progress,
                                         collect=out.points))
    out.tables.append(ablate_queue_strategy(iterations=iterations, seed=seed,
                                            jobs=jobs, progress=progress,
                                            collect=out.points))
    out.tables.append(ablate_eager_limit(iterations=max(20, iterations // 2),
                                         seed=seed, jobs=jobs,
                                         progress=progress,
                                         collect=out.points))
    out.notes.append("exit-delay variants trade signal count against "
                     "lingering CPU; the shipped default is 'none'")
    out.notes.append("past ~384B the 512B-limited build falls back to the "
                     "default path and its factor collapses toward 1.0")
    return out


def main(argv: Optional[list[str]] = None) -> ExperimentOutput:
    parser = make_parser(__doc__.splitlines()[0], default_iterations=60)
    args = parser.parse_args(argv)
    banner("Ablations: design-choice studies")
    out = run(iterations=effective_iterations(args), seed=args.seed,
              jobs=args.jobs, progress=print_progress)
    print(out.render())
    maybe_write_bench_json(out, args)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
