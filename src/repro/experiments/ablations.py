"""Ablation studies for the design choices the paper discusses.

1. **Exit-delay heuristic** (Sec. IV-E): none / fixed / log / linear
   policies, measuring skewed and unskewed CPU utilization plus the number
   of signals the window avoided.
2. **Signal cost sensitivity** (Sec. IV-A, interrupt- vs. thread-like
   regimes): sweep the per-signal kernel overhead and watch the factor of
   improvement.
3. **Queue strategy** (Sec. V-A): the shipped custom AB unexpected queue
   vs. the rejected design that reuses MPICH's non-blocking machinery
   (extra copy + management per message).
4. **Eager-limit fallback**: where the ab protocol stops being used and
   the default path takes over.
"""

from __future__ import annotations

from typing import Optional

from ..bench.cpu_util import cpu_util_benchmark
from ..bench.report import Table
from ..config import AbParams, NicParams, paper_cluster
from ..mpich.rank import MpiBuild
from .common import (ExperimentOutput, banner, effective_iterations,
                     make_parser, print_progress)


def ablate_exit_delay(*, size: int = 32, iterations: int = 60, seed: int = 1,
                      progress=None) -> Table:
    policies = (("none", 0.0), ("fixed", 8.0), ("log", 2.0), ("linear", 0.5))
    table = Table("Ablation: exit-delay policy (32 nodes, 4 elements)",
                  "variant", list(range(len(policies))))
    labels, skewed, unskewed, signals = [], [], [], []
    for policy, coeff in policies:
        ab = AbParams(exit_delay_policy=policy, exit_delay_coeff_us=coeff)
        config = paper_cluster(size, seed=seed, ab=ab)
        r1 = cpu_util_benchmark(config, MpiBuild.AB, elements=4,
                                max_skew_us=1000.0, iterations=iterations)
        r0 = cpu_util_benchmark(config, MpiBuild.AB, elements=4,
                                max_skew_us=0.0, iterations=iterations)
        labels.append(f"{policy}({coeff:g})")
        skewed.append(r1.avg_util_us)
        unskewed.append(r0.avg_util_us)
        signals.append(float(r0.signals))
        if progress:
            progress(f"exit-delay {policy}: skewed={r1.avg_util_us:.2f}us "
                     f"unskewed={r0.avg_util_us:.2f}us signals={r0.signals}")
    table.add_series("util@skew1000", skewed)
    table.add_series("util@noskew", unskewed)
    table.add_series("signals@noskew", signals)
    table.title += "  [variants: " + ", ".join(
        f"{i}={lbl}" for i, lbl in enumerate(labels)) + "]"
    return table


def ablate_signal_cost(*, size: int = 32, iterations: int = 60, seed: int = 1,
                       progress=None) -> Table:
    overheads = (2.0, 5.0, 10.0, 20.0)
    table = Table("Ablation: per-signal kernel overhead (32 nodes, "
                  "4 elements, skew 1000us)", "signal_us", overheads)
    factors, ab_utils = [], []
    for overhead in overheads:
        nic = NicParams(signal_overhead_us=overhead)
        config = paper_cluster(size, seed=seed).with_nic(nic)
        rn = cpu_util_benchmark(config, MpiBuild.DEFAULT, elements=4,
                                max_skew_us=1000.0, iterations=iterations)
        ra = cpu_util_benchmark(config, MpiBuild.AB, elements=4,
                                max_skew_us=1000.0, iterations=iterations)
        factors.append(rn.avg_util_us / ra.avg_util_us)
        ab_utils.append(ra.avg_util_us)
        if progress:
            progress(f"signal={overhead}us: ab={ra.avg_util_us:.2f}us "
                     f"factor={factors[-1]:.2f}")
    table.add_series("ab util", ab_utils)
    table.add_series("factor", factors)
    return table


def ablate_queue_strategy(*, size: int = 32, iterations: int = 60,
                          seed: int = 1, progress=None) -> Table:
    variants = (False, True)
    table = Table("Ablation: custom AB queue vs. reusing MPICH non-blocking "
                  "machinery (32 nodes, 128 elements)", "reuse_mpich",
                  [int(v) for v in variants])
    utils_skew, utils_noskew = [], []
    for reuse in variants:
        ab = AbParams(reuse_mpich_queues=reuse)
        config = paper_cluster(size, seed=seed, ab=ab)
        r1 = cpu_util_benchmark(config, MpiBuild.AB, elements=128,
                                max_skew_us=1000.0, iterations=iterations)
        r0 = cpu_util_benchmark(config, MpiBuild.AB, elements=128,
                                max_skew_us=0.0, iterations=iterations)
        utils_skew.append(r1.avg_util_us)
        utils_noskew.append(r0.avg_util_us)
        if progress:
            progress(f"reuse={reuse}: skewed={r1.avg_util_us:.2f}us "
                     f"unskewed={r0.avg_util_us:.2f}us")
    table.add_series("util@skew1000", utils_skew)
    table.add_series("util@noskew", utils_noskew)
    return table


def ablate_eager_limit(*, size: int = 16, iterations: int = 40, seed: int = 1,
                       progress=None) -> Table:
    """Message sizes straddling a lowered AB eager limit: beyond it the
    protocol must fall back to the default path and the ab advantage
    disappears (but correctness holds)."""
    limit_bytes = 512
    element_sizes = (16, 48, 64, 80, 128)  # 128B .. 1KiB around the limit
    table = Table(f"Ablation: AB eager-limit fallback (limit={limit_bytes}B, "
                  f"{size} nodes, skew 1000us)", "elements", element_sizes)
    ab = AbParams(eager_limit_bytes=limit_bytes)
    config = paper_cluster(size, seed=seed, ab=ab)
    baseline = paper_cluster(size, seed=seed)
    utils, utils_nolimit, factors = [], [], []
    for elements in element_sizes:
        r_lim = cpu_util_benchmark(config, MpiBuild.AB, elements=elements,
                                   max_skew_us=1000.0, iterations=iterations)
        r_free = cpu_util_benchmark(baseline, MpiBuild.AB, elements=elements,
                                    max_skew_us=1000.0, iterations=iterations)
        r_nab = cpu_util_benchmark(baseline, MpiBuild.DEFAULT,
                                   elements=elements, max_skew_us=1000.0,
                                   iterations=iterations)
        utils.append(r_lim.avg_util_us)
        utils_nolimit.append(r_free.avg_util_us)
        factors.append(r_nab.avg_util_us / r_lim.avg_util_us)
        if progress:
            progress(f"elements={elements}: limited={r_lim.avg_util_us:.1f}us "
                     f"unlimited={r_free.avg_util_us:.1f}us "
                     f"factor-vs-nab={factors[-1]:.2f}")
    table.add_series("ab util (limit 512B)", utils)
    table.add_series("ab util (limit 16K)", utils_nolimit)
    table.add_series("factor vs nab", factors)
    return table


def run(*, iterations: int = 60, seed: int = 1,
        progress=None) -> ExperimentOutput:
    out = ExperimentOutput("ablations")
    out.tables.append(ablate_exit_delay(iterations=iterations, seed=seed,
                                        progress=progress))
    out.tables.append(ablate_signal_cost(iterations=iterations, seed=seed,
                                         progress=progress))
    out.tables.append(ablate_queue_strategy(iterations=iterations, seed=seed,
                                            progress=progress))
    out.tables.append(ablate_eager_limit(iterations=max(20, iterations // 2),
                                         seed=seed, progress=progress))
    out.notes.append("exit-delay variants trade signal count against "
                     "lingering CPU; the shipped default is 'none'")
    out.notes.append("past ~384B the 512B-limited build falls back to the "
                     "default path and its factor collapses toward 1.0")
    return out


def main(argv: Optional[list[str]] = None) -> ExperimentOutput:
    parser = make_parser(__doc__.splitlines()[0], default_iterations=60)
    args = parser.parse_args(argv)
    banner("Ablations: design-choice studies")
    out = run(iterations=effective_iterations(args), seed=args.seed,
              progress=print_progress)
    print(out.render())
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
