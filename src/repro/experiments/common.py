"""Shared plumbing for the figure-reproduction drivers.

Every experiment module exposes ``run(**kwargs) -> ExperimentOutput`` plus a
``main(argv)`` that parses the common flags.  The CLI entry point is::

    python -m repro.experiments <fig6|fig7|fig8|fig9|fig10|ablations> [flags]
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass, field
from typing import Optional

from ..bench.report import Table
from ..orchestrate.benchjson import write_bench_json
from ..orchestrate.points import PointResult

#: The paper's node counts (Figs. 7-9) and message sizes (Figs. 6-8).
PAPER_SIZES = (2, 4, 8, 16, 32)
PAPER_ELEMENTS = (4, 32, 128)
#: Fig. 6 skew axis (paper: 0..1000 us).
PAPER_SKEWS = (0.0, 200.0, 400.0, 600.0, 800.0, 1000.0)
#: Fig. 10 message-size axis (paper: 1..128 elements).
PAPER_MSG_SIZES = (1, 8, 16, 32, 48, 64, 96, 128)


@dataclass
class ExperimentOutput:
    """Tables plus free-form findings from one experiment driver."""

    name: str
    tables: list[Table] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Orchestrator point results (key, metrics, wall time) for the sweeps
    #: behind the tables — the payload of BENCH_<name>.json.
    points: list[PointResult] = field(default_factory=list)

    def render(self) -> str:
        parts = []
        for table in self.tables:
            parts.append(table.render())
            parts.append("")
        if self.notes:
            parts.append("Notes:")
            parts.extend(f"  - {n}" for n in self.notes)
        return "\n".join(parts)


def make_parser(description: str, *, default_iterations: int) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--iterations", type=int, default=default_iterations,
                        help="measured iterations per data point "
                             f"(default {default_iterations}; the paper "
                             "used 10,000 on noisy real hardware — virtual "
                             "time needs far fewer)")
    parser.add_argument("--seed", type=int, default=1,
                        help="master RNG seed (default 1)")
    parser.add_argument("--quick", action="store_true",
                        help="cut iterations ~4x for a fast smoke run")
    parser.add_argument("--jobs", type=int,
                        default=int(os.environ.get("REPRO_JOBS", "1")),
                        help="worker processes for the sweep (default "
                             "$REPRO_JOBS or 1; metrics are bit-identical "
                             "for any value)")
    parser.add_argument("--bench-json", nargs="?", const="auto",
                        default=None, metavar="PATH",
                        help="write the sweep's BENCH_<name>.json perf "
                             "record (default path BENCH_<name>.json in "
                             "the current directory)")
    return parser


def effective_iterations(args: argparse.Namespace) -> int:
    iters = args.iterations
    if args.quick:
        iters = max(5, iters // 4)
    return iters


def print_progress(line: str) -> None:
    print(f"    {line}", flush=True)


def maybe_write_bench_json(out: ExperimentOutput,
                           args: argparse.Namespace) -> None:
    """Honour --bench-json: record the sweep for the perf-regression gate
    (``python -m repro.orchestrate.compare OLD NEW``)."""
    if getattr(args, "bench_json", None) is None:
        return
    if not out.points:
        print(f"(no orchestrated points in {out.name}; BENCH json skipped)")
        return
    path = None if args.bench_json == "auto" else args.bench_json
    written = write_bench_json(out.name, out.points, path=path,
                               jobs=getattr(args, "jobs", 1))
    print(f"wrote {written}")


def banner(title: str) -> None:
    print()
    print(f"### {title}")
    print()
