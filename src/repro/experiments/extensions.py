"""Extension experiments (the paper's Sec. VII future work, measured):

1. NIC-based reduction vs. host-side application bypass vs. default —
   refs. [10]/[11]'s trade-off;
2. application-kernel evaluation — where bypass helps real communication
   skeletons, and where synchronizing collectives cap it;
3. pipelined CG with the split-phase reduce — the remedy for case 2.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..apps import cg_pipelined, compare_builds, conjugate_gradient
from ..bench.nicred import nicred_latency
from ..bench.report import Table
from ..config import paper_cluster
from ..mpich.rank import MpiBuild
from ..orchestrate.points import ConfigSpec, SweepPoint
from ..orchestrate.runner import run_points
from ..runtime.program import run_program
from .common import (ExperimentOutput, banner, effective_iterations,
                     make_parser, maybe_write_bench_json, print_progress)


def run_nicred(*, size: int = 16, iterations: int = 30, seed: int = 1,
               jobs: int = 1, progress=None, collect=None) -> Table:
    element_sizes = (4, 32, 128, 512)
    table = Table(f"NIC-based vs host-ab vs nab: CPU util @1000us skew "
                  f"({size} nodes)", "elements", element_sizes)
    spec = ConfigSpec("paper", size, seed)
    points = []
    for elements in element_sizes:
        for build, kind in (("nab", "cpu_util"), ("ab", "cpu_util"),
                            ("ab", "nicred_cpu_util")):
            points.append(SweepPoint(
                experiment="ext_nicred", kind=kind, config=spec,
                build=build, elements=elements, max_skew_us=1000.0,
                iterations=iterations))
    results = run_points(points, jobs=jobs, progress=progress)
    if collect is not None:
        collect.extend(results)
    table.add_series("nab",
                     [r.metrics["avg_util_us"] for r in results[0::3]])
    table.add_series("host-ab",
                     [r.metrics["avg_util_us"] for r in results[1::3]])
    table.add_series("nic-based",
                     [r.metrics["avg_util_us"] for r in results[2::3]])
    return table


def run_apps(*, size: int = 16, seed: int = 1, progress=None) -> Table:
    cases = [
        ("jacobi", dict(iterations=15, imbalance=1.0)),
        ("cg", dict(iterations=10)),
        ("particles", dict(iterations=15)),
        ("particles", dict(iterations=15, rebalance_every=5)),
    ]
    table = Table(f"Application kernels ({size} ranks): non-root us "
                  "blocked in collectives", "case", list(range(len(cases))))
    nab_col, ab_col, factor_col, labels = [], [], [], []
    for kernel, kwargs in cases:
        comp = compare_builds(kernel, paper_cluster(size, seed=seed),
                              **kwargs)
        label = kernel + ("+bcast" if kwargs.get("rebalance_every") else "")
        labels.append(label)
        nab_col.append(comp.nonroot_mean_collective_us(MpiBuild.DEFAULT))
        ab_col.append(comp.nonroot_mean_collective_us(MpiBuild.AB))
        factor_col.append(comp.blocking_improvement)
        if progress:
            progress(comp.summary())
    table.add_series("nab", nab_col)
    table.add_series("ab", ab_col)
    table.add_series("improvement", factor_col)
    table.title += "  [" + ", ".join(f"{i}={l}" for i, l in
                                     enumerate(labels)) + "]"
    return table


def run_pipelined_cg(*, size: int = 16, iterations: int = 12, seed: int = 1,
                     progress=None) -> str:
    blocking = run_program(paper_cluster(size, seed=seed),
                           conjugate_gradient(iterations=iterations),
                           build=MpiBuild.AB)
    pipelined = run_program(paper_cluster(size, seed=seed),
                            cg_pipelined(iterations=iterations),
                            build=MpiBuild.AB)
    b_wall = float(np.mean([s.wall_us for s in blocking.results]))
    p_wall = float(np.mean([s.wall_us for s in pipelined.results]))
    b_coll = float(np.mean([s.collective_us for s in blocking.results]))
    p_coll = float(np.mean([s.collective_us for s in pipelined.results]))
    line = (f"pipelined CG ({size} ranks, {iterations} iters): wall "
            f"{b_wall:.0f} -> {p_wall:.0f}us ({b_wall / p_wall:.2f}x), "
            f"collective blocking {b_coll:.0f} -> {p_coll:.0f}us "
            f"({b_coll / p_coll:.2f}x)")
    if progress:
        progress(line)
    return line


def run(*, iterations: int = 30, seed: int = 1, jobs: int = 1,
        progress=None) -> ExperimentOutput:
    out = ExperimentOutput("extensions")
    out.tables.append(run_nicred(iterations=iterations, seed=seed,
                                 jobs=jobs, progress=progress,
                                 collect=out.points))
    out.tables.append(run_apps(seed=seed, progress=progress))
    out.notes.append(run_pipelined_cg(seed=seed, progress=progress))
    cfg = paper_cluster(16, seed=seed)
    lat_small = nicred_latency(cfg, elements=4, iterations=iterations)
    lat_big = nicred_latency(cfg, elements=512, iterations=iterations)
    out.notes.append(
        f"nicred latency {lat_small:.1f}us @4 elements vs {lat_big:.1f}us "
        "@512 — ref. [11]'s slow-NIC-ALU caveat")
    return out


def main(argv: Optional[list[str]] = None) -> ExperimentOutput:
    parser = make_parser(__doc__.splitlines()[0], default_iterations=30)
    args = parser.parse_args(argv)
    banner("Extensions: NIC-based reduction, application kernels, "
           "pipelined CG")
    out = run(iterations=effective_iterations(args), seed=args.seed,
              jobs=args.jobs, progress=print_progress)
    print(out.render())
    maybe_write_bench_json(out, args)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
