"""Fig. 10 — reduction latency vs. message size, 32 nodes, no injected skew.

Paper headline: both builds' latency grows with message size; the
application-bypass build pays a signal-related latency penalty that
"stabilizes and remains fairly constant as the number of elements
increases".

Beyond the paper, the sweep is routed through a segment-size axis
(``--segment-sizes``): each nonzero entry reruns the grid with that
``PipelineParams.segment_size_bytes`` so the crossover where segmented,
pipelined collectives (repro.pipeline) start beating the whole-message
path becomes visible.  Segment size 0 maps to *no* pipeline override —
not a disarmed block — so the baseline's BENCH variant tags stay
bit-identical to a pipeline-free checkout.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..bench.sweep import latency_vs_message_size
from ..config import PipelineParams
from ..orchestrate.points import ConfigSpec
from .common import (ExperimentOutput, PAPER_MSG_SIZES, banner,
                     effective_iterations, make_parser,
                     maybe_write_bench_json, print_progress)


def run(*, size: int = 32, element_sizes: Sequence[int] = PAPER_MSG_SIZES,
        segment_sizes: Sequence[int] = (0,),
        iterations: int = 120, seed: int = 1, jobs: int = 1,
        progress=None) -> ExperimentOutput:
    tables = []
    points = []
    raw_by_segment = {}
    for seg in segment_sizes:
        pipeline = (PipelineParams(segment_size_bytes=seg)
                    if seg else None)
        sweep = latency_vs_message_size(
            ConfigSpec("paper", size, seed, pipeline=pipeline),
            element_sizes=element_sizes, iterations=iterations, jobs=jobs,
            experiment="fig10", progress=progress)
        table = sweep.table
        table.title = "Fig 10: " + table.title + (
            f" [segment {seg}B]" if seg else "")
        tables.append(table)
        points.extend(sweep.points)
        raw_by_segment[seg] = table
    out = ExperimentOutput("fig10", tables, points=points)

    base = tables[0]
    gaps = np.asarray(base._find("ab-nab gap").values)
    out.notes.append(
        f"ab-nab latency gap across sizes: min {gaps.min():.1f}us, "
        f"max {gaps.max():.1f}us, mean {gaps.mean():.1f}us "
        "(paper: positive and fairly constant)")
    nab = base._find("nab").values
    out.notes.append(
        f"nab latency grows with size: {nab[0]:.1f}us at "
        f"{element_sizes[0]} elements -> {nab[-1]:.1f}us at "
        f"{element_sizes[-1]} elements")
    if 0 in raw_by_segment:
        whole_ab = raw_by_segment[0]._find("ab").values[-1]
        for seg in segment_sizes:
            if not seg:
                continue
            piped_ab = raw_by_segment[seg]._find("ab").values[-1]
            out.notes.append(
                f"segment {seg}B at {element_sizes[-1]} elements: ab "
                f"{piped_ab:.1f}us vs whole-message {whole_ab:.1f}us "
                f"({whole_ab / piped_ab:.2f}x)")
    return out


def main(argv: Optional[list[str]] = None) -> ExperimentOutput:
    parser = make_parser(__doc__.splitlines()[0], default_iterations=120)
    parser.add_argument(
        "--segment-sizes", type=int, nargs="*", default=[0],
        help="PipelineParams.segment_size_bytes values to sweep "
             "(0 = whole-message baseline; e.g. 0 2048)")
    args = parser.parse_args(argv)
    banner("Fig. 10: reduction latency vs. message size (32 nodes)")
    out = run(iterations=effective_iterations(args), seed=args.seed,
              segment_sizes=tuple(args.segment_sizes),
              jobs=args.jobs, progress=print_progress)
    print(out.render())
    maybe_write_bench_json(out, args)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
