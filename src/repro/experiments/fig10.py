"""Fig. 10 — reduction latency vs. message size, 32 nodes, no injected skew.

Paper headline: both builds' latency grows with message size; the
application-bypass build pays a signal-related latency penalty that
"stabilizes and remains fairly constant as the number of elements
increases".
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..bench.sweep import latency_vs_message_size
from ..orchestrate.points import ConfigSpec
from .common import (ExperimentOutput, PAPER_MSG_SIZES, banner,
                     effective_iterations, make_parser,
                     maybe_write_bench_json, print_progress)


def run(*, size: int = 32, element_sizes: Sequence[int] = PAPER_MSG_SIZES,
        iterations: int = 120, seed: int = 1, jobs: int = 1,
        progress=None) -> ExperimentOutput:
    sweep = latency_vs_message_size(ConfigSpec("paper", size, seed),
                                    element_sizes=element_sizes,
                                    iterations=iterations, jobs=jobs,
                                    experiment="fig10", progress=progress)
    table = sweep.table
    table.title = "Fig 10: " + table.title
    out = ExperimentOutput("fig10", [table], points=sweep.points)

    gaps = np.asarray(table._find("ab-nab gap").values)
    out.notes.append(
        f"ab-nab latency gap across sizes: min {gaps.min():.1f}us, "
        f"max {gaps.max():.1f}us, mean {gaps.mean():.1f}us "
        "(paper: positive and fairly constant)")
    nab = table._find("nab").values
    out.notes.append(
        f"nab latency grows with size: {nab[0]:.1f}us at "
        f"{element_sizes[0]} elements -> {nab[-1]:.1f}us at "
        f"{element_sizes[-1]} elements")
    return out


def main(argv: Optional[list[str]] = None) -> ExperimentOutput:
    parser = make_parser(__doc__.splitlines()[0], default_iterations=120)
    args = parser.parse_args(argv)
    banner("Fig. 10: reduction latency vs. message size (32 nodes)")
    out = run(iterations=effective_iterations(args), seed=args.seed,
              jobs=args.jobs, progress=print_progress)
    print(out.render())
    maybe_write_bench_json(out, args)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
