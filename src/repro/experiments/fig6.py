"""Fig. 6 — CPU utilization and factor of improvement vs. process skew.

32 nodes, double-word messages of 4/32/128 elements, maximum skew swept
0..1000 us.  Paper headline: the application-bypass build wins at every
(skew, size) point, with a factor of improvement up to 5.1 at 4 elements
and 1000 us of skew, and the factor is greatest for small messages.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..bench.sweep import cpu_util_vs_skew
from ..orchestrate.points import ConfigSpec
from .common import (ExperimentOutput, PAPER_ELEMENTS, PAPER_SKEWS, banner,
                     effective_iterations, make_parser,
                     maybe_write_bench_json, print_progress)


def run(*, size: int = 32, skews: Sequence[float] = PAPER_SKEWS,
        element_sizes: Sequence[int] = PAPER_ELEMENTS,
        iterations: int = 100, seed: int = 1, jobs: int = 1,
        progress=None) -> ExperimentOutput:
    sweep = cpu_util_vs_skew(ConfigSpec("paper", size, seed), skews=skews,
                             element_sizes=element_sizes,
                             iterations=iterations, jobs=jobs,
                             experiment="fig6", progress=progress)
    table = sweep.table
    out = ExperimentOutput("fig6", [table], points=sweep.points)

    # Headline checks mirrored from the paper's text.
    factors = {
        elements: table._find(f"factor-{elements}").values
        for elements in element_sizes
    }
    peak = max(max(v) for v in factors.values())
    smallest = min(element_sizes)
    peak_small = max(factors[smallest])
    out.notes.append(
        f"max factor of improvement {peak:.2f} (paper: 5.1)")
    out.notes.append(
        f"factor at max skew, {smallest} elements: "
        f"{factors[smallest][-1]:.2f} — paper reports the peak at the "
        f"smallest message size ({peak_small:.2f} here)")
    monotone = all(factors[smallest][i] <= factors[smallest][i + 1] + 0.35
                   for i in range(len(skews) - 1))
    out.notes.append(
        f"factor grows with skew: {'yes' if monotone else 'roughly'}")
    return out


def main(argv: Optional[list[str]] = None) -> ExperimentOutput:
    parser = make_parser(__doc__.splitlines()[0], default_iterations=100)
    args = parser.parse_args(argv)
    banner("Fig. 6: CPU utilization vs. process skew (32 nodes)")
    out = run(iterations=effective_iterations(args), seed=args.seed,
              jobs=args.jobs, progress=print_progress)
    print(out.render())
    maybe_write_bench_json(out, args)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
