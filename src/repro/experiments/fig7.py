"""Fig. 7 — CPU utilization and factor of improvement vs. system size,
at maximal process skew (1000 us).

Paper headline: the factor of improvement *increases with the number of
nodes* (max 5.1 at 32 nodes / 4 elements), demonstrating the enhanced
scalability of the application-bypass implementation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..bench.sweep import cpu_util_vs_nodes
from ..orchestrate.points import ConfigSpec
from .common import (ExperimentOutput, PAPER_ELEMENTS, PAPER_SIZES, banner,
                     effective_iterations, make_parser,
                     maybe_write_bench_json, print_progress)


def run(*, sizes: Sequence[int] = PAPER_SIZES,
        element_sizes: Sequence[int] = PAPER_ELEMENTS,
        max_skew_us: float = 1000.0, iterations: int = 100, seed: int = 1,
        jobs: int = 1, progress=None) -> ExperimentOutput:
    sweep = cpu_util_vs_nodes(
        lambda n: ConfigSpec("paper", n, seed),
        sizes=sizes, element_sizes=element_sizes, max_skew_us=max_skew_us,
        iterations=iterations, jobs=jobs, experiment="fig7",
        progress=progress)
    table = sweep.table
    out = ExperimentOutput("fig7", [table], points=sweep.points)

    smallest = min(element_sizes)
    factors = table._find(f"factor-{smallest}").values
    out.notes.append(
        f"factor at {sizes[-1]} nodes, {smallest} elements: "
        f"{factors[-1]:.2f} (paper: 5.1)")
    grows = factors[-1] > factors[0]
    out.notes.append(
        "factor of improvement increases with system size: "
        f"{'yes' if grows else 'NO'} "
        f"({factors[0]:.2f} at {sizes[0]} nodes -> "
        f"{factors[-1]:.2f} at {sizes[-1]} nodes)")
    return out


def main(argv: Optional[list[str]] = None) -> ExperimentOutput:
    parser = make_parser(__doc__.splitlines()[0], default_iterations=100)
    args = parser.parse_args(argv)
    banner("Fig. 7: CPU utilization vs. nodes (max skew 1000 us)")
    out = run(iterations=effective_iterations(args), seed=args.seed,
              jobs=args.jobs, progress=print_progress)
    print(out.render())
    maybe_write_bench_json(out, args)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
