"""Fig. 8 — CPU utilization and factor of improvement vs. system size,
WITHOUT injected process skew.

Paper headline: this is the worst case for application bypass (all of its
overhead, none of its benefit) — yet naturally occurring skew grows with
system size, so the ab build loses at small node counts (factor ~0.7-0.9),
crosses over, and wins by up to 1.5 at 32 nodes / 128 elements; larger
messages cross over at smaller node counts.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..bench.sweep import cpu_util_vs_nodes
from ..orchestrate.points import ConfigSpec
from .common import (ExperimentOutput, PAPER_ELEMENTS, PAPER_SIZES, banner,
                     effective_iterations, make_parser,
                     maybe_write_bench_json, print_progress)


def crossover_size(sizes: Sequence[int], factors: Sequence[float]) -> Optional[int]:
    """Smallest node count at which ab starts winning (factor >= 1)."""
    for size, factor in zip(sizes, factors):
        if factor >= 1.0:
            return size
    return None


def run(*, sizes: Sequence[int] = PAPER_SIZES,
        element_sizes: Sequence[int] = PAPER_ELEMENTS,
        iterations: int = 150, seed: int = 1, jobs: int = 1,
        progress=None) -> ExperimentOutput:
    sweep = cpu_util_vs_nodes(
        lambda n: ConfigSpec("paper", n, seed),
        sizes=sizes, element_sizes=element_sizes, max_skew_us=0.0,
        iterations=iterations, jobs=jobs, experiment="fig8",
        progress=progress)
    table = sweep.table
    out = ExperimentOutput("fig8", [table], points=sweep.points)

    largest = max(element_sizes)
    f_large = table._find(f"factor-{largest}").values
    out.notes.append(
        f"max factor at {sizes[-1]} nodes / {largest} elements: "
        f"{f_large[-1]:.2f} (paper: 1.5)")
    crossings = {
        e: crossover_size(sizes, table._find(f"factor-{e}").values)
        for e in element_sizes
    }
    out.notes.append(f"crossover node counts (ab starts winning): {crossings} "
                     "— paper: larger messages cross over earlier")
    smallest = min(element_sizes)
    f_small_first = table._find(f"factor-{smallest}").values[0]
    out.notes.append(
        f"factor at {sizes[0]} nodes / {smallest} elements: "
        f"{f_small_first:.2f} (paper: below 1.0 — pure overhead)")
    return out


def main(argv: Optional[list[str]] = None) -> ExperimentOutput:
    parser = make_parser(__doc__.splitlines()[0], default_iterations=150)
    args = parser.parse_args(argv)
    banner("Fig. 8: CPU utilization vs. nodes (no injected skew)")
    out = run(iterations=effective_iterations(args), seed=args.seed,
              jobs=args.jobs, progress=print_progress)
    print(out.render())
    maybe_write_bench_json(out, args)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
