"""Fig. 9 — reduction latency vs. system size, no injected skew,
single-element double-word messages.

(a) the heterogeneous 32-node cluster; (b) the homogeneous 16-node
(700 MHz) cluster.  Paper headline: latencies are nearly identical at small
node counts; past four nodes the application-bypass build pays signal
overhead for naturally late messages and its latency sits above the
default's.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..bench.sweep import latency_vs_nodes
from ..config import homogeneous_cluster, paper_cluster
from .common import (ExperimentOutput, banner, effective_iterations,
                     make_parser, print_progress)

HETERO_SIZES = (2, 4, 8, 16, 32)
HOMO_SIZES = (2, 4, 8, 16)


def run(*, hetero_sizes: Sequence[int] = HETERO_SIZES,
        homo_sizes: Sequence[int] = HOMO_SIZES,
        iterations: int = 150, seed: int = 1,
        progress=None) -> ExperimentOutput:
    table_a, raw_a = latency_vs_nodes(
        lambda n: paper_cluster(n, seed=seed),
        sizes=hetero_sizes, elements=1, iterations=iterations,
        progress=progress)
    table_a.title = "Fig 9a: " + table_a.title + " [heterogeneous]"
    table_b, raw_b = latency_vs_nodes(
        lambda n: homogeneous_cluster(n, seed=seed),
        sizes=homo_sizes, elements=1, iterations=iterations,
        progress=progress)
    table_b.title = "Fig 9b: " + table_b.title + " [homogeneous 700MHz]"
    out = ExperimentOutput("fig9", [table_a, table_b])

    nab_a = table_a._find("nab").values
    ab_a = table_a._find("ab").values
    small_gap = abs(ab_a[0] - nab_a[0])
    big_gap = ab_a[-1] - nab_a[-1]
    out.notes.append(
        f"gap at {hetero_sizes[0]} nodes: {small_gap:.1f}us "
        f"(paper: nearly identical); gap at {hetero_sizes[-1]} nodes: "
        f"{big_gap:.1f}us (paper: ab visibly above nab)")
    out.notes.append(
        "ab latency exceeds nab past small node counts: "
        f"{'yes' if big_gap > small_gap else 'NO'}")
    return out


def main(argv: Optional[list[str]] = None) -> ExperimentOutput:
    parser = make_parser(__doc__.splitlines()[0], default_iterations=150)
    args = parser.parse_args(argv)
    banner("Fig. 9: reduction latency vs. nodes (no skew)")
    out = run(iterations=effective_iterations(args), seed=args.seed,
              progress=print_progress)
    print(out.render())
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
