"""Fig. 9 — reduction latency vs. system size, no injected skew,
single-element double-word messages.

(a) the heterogeneous 32-node cluster; (b) the homogeneous 16-node
(700 MHz) cluster.  Paper headline: latencies are nearly identical at small
node counts; past four nodes the application-bypass build pays signal
overhead for naturally late messages and its latency sits above the
default's.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..bench.sweep import latency_vs_nodes
from ..orchestrate.points import ConfigSpec
from .common import (ExperimentOutput, banner, effective_iterations,
                     make_parser, maybe_write_bench_json, print_progress)

HETERO_SIZES = (2, 4, 8, 16, 32)
HOMO_SIZES = (2, 4, 8, 16)


def run(*, hetero_sizes: Sequence[int] = HETERO_SIZES,
        homo_sizes: Sequence[int] = HOMO_SIZES,
        iterations: int = 150, seed: int = 1, jobs: int = 1,
        progress=None) -> ExperimentOutput:
    sweep_a = latency_vs_nodes(
        lambda n: ConfigSpec("paper", n, seed),
        sizes=hetero_sizes, elements=1, iterations=iterations, jobs=jobs,
        experiment="fig9a", progress=progress)
    table_a = sweep_a.table
    table_a.title = "Fig 9a: " + table_a.title + " [heterogeneous]"
    sweep_b = latency_vs_nodes(
        lambda n: ConfigSpec("homogeneous", n, seed),
        sizes=homo_sizes, elements=1, iterations=iterations, jobs=jobs,
        experiment="fig9b", progress=progress)
    table_b = sweep_b.table
    table_b.title = "Fig 9b: " + table_b.title + " [homogeneous 700MHz]"
    out = ExperimentOutput("fig9", [table_a, table_b],
                           points=sweep_a.points + sweep_b.points)

    nab_a = table_a._find("nab").values
    ab_a = table_a._find("ab").values
    small_gap = abs(ab_a[0] - nab_a[0])
    big_gap = ab_a[-1] - nab_a[-1]
    out.notes.append(
        f"gap at {hetero_sizes[0]} nodes: {small_gap:.1f}us "
        f"(paper: nearly identical); gap at {hetero_sizes[-1]} nodes: "
        f"{big_gap:.1f}us (paper: ab visibly above nab)")
    out.notes.append(
        "ab latency exceeds nab past small node counts: "
        f"{'yes' if big_gap > small_gap else 'NO'}")
    return out


def main(argv: Optional[list[str]] = None) -> ExperimentOutput:
    parser = make_parser(__doc__.splitlines()[0], default_iterations=150)
    args = parser.parse_args(argv)
    banner("Fig. 9: reduction latency vs. nodes (no skew)")
    out = run(iterations=effective_iterations(args), seed=args.seed,
              jobs=args.jobs, progress=print_progress)
    print(out.render())
    maybe_write_bench_json(out, args)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
