"""fig_faults — reduce completion under injected faults (repro.faults).

The paper measures application bypass on a healthy testbed; this
experiment asks what the bypass protocol costs — and whether it still
finishes with the right answer — when the machine misbehaves.  Two
sweeps over the ``repro.faults`` injector registry:

1. burst packet loss at increasing rates, both builds, on the crossbar
   and the two-level fat-tree (the GM go-back-N layer must hide every
   drop bit-exactly);
2. one scenario per remaining injector (link degradation, NIC signal
   suppression, a paused rank, a crashed rank healed out of the tree),
   AB-only where the non-bypass build has no recovery path.

Every point reports the root's final reduction value against the
surviving-rank expectation and the run makespan; the fault counters land
in BENCH_fig_faults.json via ``--bench-json``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import FaultParams, NetParams
from ..orchestrate.points import ConfigSpec, SweepPoint
from ..orchestrate.runner import run_points
from ..bench.report import Table
from .common import (ExperimentOutput, banner, effective_iterations,
                     make_parser, maybe_write_bench_json, print_progress)

#: Burst-loss sweep: probability that any packet starts a 3-packet burst.
RATES = (0.0, 0.01, 0.05)
TOPOLOGIES = ("crossbar", "fattree")

#: One scenario per non-loss injector, on the crossbar.  Crash and
#: suppression are AB-only: the blocking non-bypass reduce would hang on
#: a dead rank and never arms NIC signals (see repro.bench.faulted).
SCENARIOS = (
    ("degrade",
     FaultParams(degrade_start_us=200.0, degrade_end_us=1200.0,
                 degrade_latency_factor=4.0, degrade_bandwidth_factor=3.0),
     ("nab", "ab")),
    ("suppress",
     FaultParams(suppress_node=4, suppress_start_us=0.0,
                 suppress_end_us=1500.0),
     ("ab",)),
    ("pause",
     FaultParams(pause_rank=2, pause_at_us=300.0, pause_duration_us=800.0),
     ("nab", "ab")),
    ("crash+heal",
     FaultParams(crash_rank=6, crash_at_us=400.0, tree_heal=True,
                 descriptor_timeout_us=300.0, timeout_retries=2),
     ("ab",)),
)


def _loss_faults(rate: float) -> Optional[FaultParams]:
    if rate == 0.0:
        return None
    return FaultParams(burst_prob=rate, burst_len=3,
                       descriptor_timeout_us=20000.0, timeout_retries=3)


def _net_for(topo: str) -> NetParams:
    if topo == "fattree":
        # Four hosts per leaf switch so the default 8-node run actually
        # crosses the spine instead of degenerating to one crossbar.
        return NetParams(topology="fattree", fattree_hosts_per_switch=4)
    return NetParams(topology=topo)


def build_points(*, size: int = 8, elements: int = 4,
                 rates: Sequence[float] = RATES,
                 topologies: Sequence[str] = TOPOLOGIES,
                 scenarios: Sequence[tuple] = SCENARIOS,
                 iterations: int = 40, seed: int = 1,
                 collect_invariants: bool = True) -> list[SweepPoint]:
    """The sweep grid, in the deterministic order the result cursor in
    :func:`run` expects: the loss sweep first, then the scenarios."""
    points = [
        SweepPoint(
            experiment="fig_faults", kind="fault_reduce",
            config=ConfigSpec("paper", size, seed,
                              net=_net_for(topo),
                              faults=_loss_faults(rate)),
            build=build, elements=elements, iterations=iterations,
            collect_invariants=collect_invariants)
        for topo in topologies
        for build in ("nab", "ab")
        for rate in rates
    ]
    points += [
        SweepPoint(
            experiment="fig_faults", kind="fault_reduce",
            config=ConfigSpec("paper", size, seed, faults=faults),
            build=build, elements=elements, iterations=iterations,
            collect_invariants=collect_invariants)
        for _label, faults, builds in scenarios
        for build in builds
    ]
    return points


def run(*, size: int = 8, elements: int = 4,
        rates: Sequence[float] = RATES,
        topologies: Sequence[str] = TOPOLOGIES,
        scenarios: Sequence[tuple] = SCENARIOS,
        iterations: int = 40, seed: int = 1, jobs: int = 1,
        progress=None) -> ExperimentOutput:
    points = build_points(size=size, elements=elements, rates=rates,
                          topologies=topologies, scenarios=scenarios,
                          iterations=iterations, seed=seed)
    results = run_points(points, jobs=jobs, progress=progress)

    table = Table(
        f"fig_faults: reduce makespan (us) vs burst loss rate, n={size}",
        "burst_prob", list(rates))
    cursor = iter(results)
    wrong = 0
    retransmissions = 0
    for topo in topologies:
        for build in ("nab", "ab"):
            res = [next(cursor) for _ in rates]
            table.add_series(f"{topo}-{build}",
                             [r.metrics["makespan_us"] for r in res])
            wrong += sum(1 for r in res if not r.metrics["survivor_ok"])
            retransmissions += sum(
                int(r.counters.get("retransmissions", 0)) for r in res)

    out = ExperimentOutput("fig_faults", [table], points=results)
    scenario_lines = []
    for label, _faults, builds in scenarios:
        for build in builds:
            r = next(cursor)
            wrong += 0 if r.metrics["survivor_ok"] else 1
            extras = {k: int(v) for k, v in r.counters.items()
                      if k in ("subtrees_healed", "descriptors_timed_out",
                               "signals_suppressed", "ranks_paused")
                      and v}
            scenario_lines.append(
                f"{label}/{build}: makespan {r.metrics['makespan_us']:.0f}us "
                f"last={r.metrics['last_result']:g} "
                f"faults={int(r.counters.get('faults_injected', 0))}"
                + (f" {extras}" if extras else ""))
    out.notes.extend(scenario_lines)
    out.notes.append(
        f"retransmissions across the loss sweep: {retransmissions}")
    out.notes.append(
        f"points with a wrong surviving-rank result: {wrong}")
    violations = sum((r.invariant_report or {}).get("violation_count", 0)
                     for r in results)
    out.notes.append(
        f"invariant violations across the sweep (incl. INV-FAULT): "
        f"{violations}")
    return out


def main(argv: Optional[list[str]] = None) -> ExperimentOutput:
    parser = make_parser(__doc__.splitlines()[0], default_iterations=40)
    args = parser.parse_args(argv)
    banner("fig_faults: fault type x rate x build x topology sweep")
    out = run(iterations=effective_iterations(args), seed=args.seed,
              jobs=args.jobs, progress=print_progress)
    print(out.render())
    maybe_write_bench_json(out, args)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
