"""fig_pap — allreduce under process-arrival patterns (repro.workload).

Beyond the paper: the reproduction's ab/nab engines finally meet
algorithms *designed* for imbalanced arrivals — Proficz's sorted-arrival
(SRA) and pre-reduced (PRA) PAP-aware allreduce variants
(arXiv:1804.05349), lowered from the workload layer's arrival oracle and
executed through the schedule interpreter.  The sweep crosses arrival
pattern x imbalance (kappa) x algorithm x topology and produces the
crossover: with near-synchronous arrivals (constant pattern, kappa ~ 0)
the collective dominates and application-bypass wins — PRA's O(n)
arrival chain loses badly; once one straggler group dominates (bursty,
kappa >> 1), SRA/PRA overlap almost the whole reduction with the
stragglers' delay and overtake ab.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import NetParams, WorkloadParams
from ..orchestrate.points import ConfigSpec, SweepPoint
from ..orchestrate.runner import run_points
from ..bench.report import Table
from .common import (ExperimentOutput, banner, effective_iterations,
                     make_parser, maybe_write_bench_json, print_progress)

#: (pattern tag, WorkloadParams) — the kappa axis: constant arrivals are
#: perfectly balanced (kappa = 0); the bursty straggler group pushes the
#: mean spread far past one collective latency (kappa >> 1).
PATTERNS = (
    ("constant", WorkloadParams(pattern="constant", scale_us=25.0)),
    ("bursty", WorkloadParams(pattern="bursty", scale_us=1500.0,
                              jitter_us=50.0, straggler_frac=0.25)),
)
ALGOS = ("nab", "ab", "pipelined", "sra", "pra")
#: Topology axis: the ideal crossbar and a 4-hosts-per-switch fat tree.
TOPOLOGIES = (
    ("crossbar", None),
    ("fattree", NetParams(topology="fattree", fattree_hosts_per_switch=4)),
)


def build_points(*, size: int = 16, elements: int = 512,
                 patterns: Sequence = PATTERNS,
                 topologies: Sequence = TOPOLOGIES,
                 iterations: int = 8, seed: int = 1,
                 collect_invariants: bool = True) -> list[SweepPoint]:
    """The grid, in the deterministic order :func:`run`'s cursor expects:
    topology-major, then pattern, then algorithm.  The pipelined variant
    arms PipelineParams (512 doubles -> two 2 KiB segments); the
    schedule-driven variants execute whole-message by design."""
    from ..config import PipelineParams
    points = []
    for _topo_tag, net in topologies:
        for tag, workload in patterns:
            for algo in ALGOS:
                pipeline = (PipelineParams(segment_size_bytes=2048,
                                           max_inflight_segments=3)
                            if algo == "pipelined" else None)
                points.append(SweepPoint(
                    experiment=f"fig_pap-{tag}-{algo}", kind="pap",
                    config=ConfigSpec("quiet", size, seed, net=net,
                                      workload=workload, pipeline=pipeline),
                    build="ab" if algo in ("ab", "pipelined") else "nab",
                    elements=elements, iterations=iterations, warmup=1,
                    options={"algo": algo},
                    collect_invariants=collect_invariants))
    return points


def run(*, size: int = 16, elements: int = 512,
        patterns: Sequence = PATTERNS, topologies: Sequence = TOPOLOGIES,
        iterations: int = 8, seed: int = 1, jobs: int = 1,
        progress=None) -> ExperimentOutput:
    points = build_points(size=size, elements=elements, patterns=patterns,
                          topologies=topologies, iterations=iterations,
                          seed=seed)
    results = run_points(points, jobs=jobs, progress=progress)

    tables = []
    headline = []
    cursor = iter(results)
    pattern_tags = [tag for tag, _w in patterns]
    for topo_tag, _net in topologies:
        cells = {}
        for tag in pattern_tags:
            for algo in ALGOS:
                cells[(tag, algo)] = next(cursor)
        # X axis is the measured imbalance factor of each pattern (same
        # for every algorithm of a pattern — it describes the trace).
        kappas = [round(cells[(tag, "ab")].metrics.get("arrival_kappa",
                                                       0.0), 2)
                  for tag in pattern_tags]
        table = Table(
            f"fig_pap: allreduce makespan (us) vs arrival imbalance "
            f"kappa ({', '.join(pattern_tags)}), {topo_tag}, n={size}, "
            f"{elements} elements", "kappa", kappas)
        for algo in ALGOS:
            table.add_series(
                algo, [cells[(tag, algo)].metrics["avg_makespan_us"]
                       for tag in pattern_tags])
        for algo in ("sra", "pra"):
            table.factor_series(f"ab/{algo}", "ab", algo)
        tables.append(table)

        for tag in pattern_tags:
            ab = cells[(tag, "ab")].metrics["avg_makespan_us"]
            best_algo = min(("sra", "pra"),
                            key=lambda a, _tag=tag:
                            cells[(_tag, a)].metrics["avg_makespan_us"])
            best = cells[(tag, best_algo)].metrics["avg_makespan_us"]
            kappa = cells[(tag, "ab")].metrics.get("arrival_kappa", 0.0)
            winner = ("ab" if ab <= best else best_algo)
            headline.append(
                f"{topo_tag}/{tag} (kappa={kappa:.2f}): ab {ab:.1f}us vs "
                f"best PAP-aware ({best_algo}) {best:.1f}us -> "
                f"{winner} wins ({ab / best:.2f}x)")

    out = ExperimentOutput("fig_pap", tables, points=results)
    out.notes.extend(headline)
    violations = sum((r.invariant_report or {}).get("violation_count", 0)
                     for r in results)
    out.notes.append(
        f"invariant violations across the sweep: {violations}")
    return out


def main(argv: Optional[list[str]] = None) -> ExperimentOutput:
    parser = make_parser(__doc__.splitlines()[0], default_iterations=8)
    args = parser.parse_args(argv)
    banner("fig_pap: arrival patterns x PAP-aware allreduce crossover")
    out = run(iterations=effective_iterations(args), seed=args.seed,
              jobs=args.jobs, progress=print_progress)
    print(out.render())
    maybe_write_bench_json(out, args)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
