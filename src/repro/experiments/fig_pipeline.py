"""fig_pipeline — segmented, pipelined collectives (repro.pipeline).

Beyond the paper: its AB reduce is eager and whole-message, so an
internal node folds a child's contribution only once the entire message
has arrived.  ``repro.pipeline`` cuts large messages into segments and
runs one AB reduce per segment (cut-through reduction; DESIGN.md §11).
This sweep maps where that pays: segment size x message size x build x
tree shape, reporting reduction latency plus the pipeline effort
counters (``segments_sent``, ``segments_folded_async``,
``pipeline_stalls``, ``inflight_hwm``) in BENCH_fig_pipeline.json.

Headline: on large messages the pipelined AB build beats whole-message
AB on every shape, deepest trees (chain) gaining the most; small
messages are untouched because single-chunk plans decline bit-exactly.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import MpiParams, PipelineParams
from ..orchestrate.points import ConfigSpec, SweepPoint
from ..orchestrate.runner import run_points
from ..bench.report import Table
from .common import (ExperimentOutput, banner, effective_iterations,
                     make_parser, maybe_write_bench_json, print_progress)

#: Segment-size axis in bytes; 0 = whole-message baseline (no override,
#: so its BENCH variant tag matches a pipeline-free checkout).
SEGMENT_SIZES = (0, 1024, 2048)
#: Message-size axis in 8-byte elements: 1 KiB stays single-chunk at
#: every armed segment size above; 4/8 KiB segment into 2..8 chunks.
MSG_SIZES = (128, 512, 1024)
TREE_SHAPES = ("binomial", "chain")
BUILDS = ("nab", "ab")


def _spec(size: int, seed: int, shape: str, seg: int) -> ConfigSpec:
    pipeline = PipelineParams(segment_size_bytes=seg) if seg else None
    mpi = MpiParams(tree_shape=shape) if shape != "binomial" else None
    return ConfigSpec("paper", size, seed, mpi=mpi, pipeline=pipeline)


def build_points(*, size: int = 16,
                 segment_sizes: Sequence[int] = SEGMENT_SIZES,
                 msg_sizes: Sequence[int] = MSG_SIZES,
                 shapes: Sequence[str] = TREE_SHAPES,
                 iterations: int = 60, seed: int = 1,
                 collect_invariants: bool = True) -> list[SweepPoint]:
    """The grid, in the deterministic order :func:`run`'s cursor expects."""
    return [
        SweepPoint(
            experiment="fig_pipeline", kind="latency",
            config=_spec(size, seed, shape, seg),
            build=build, elements=elements, iterations=iterations,
            collect_invariants=collect_invariants)
        for shape in shapes
        for build in BUILDS
        for seg in segment_sizes
        for elements in msg_sizes
    ]


def run(*, size: int = 16, segment_sizes: Sequence[int] = SEGMENT_SIZES,
        msg_sizes: Sequence[int] = MSG_SIZES,
        shapes: Sequence[str] = TREE_SHAPES,
        iterations: int = 60, seed: int = 1, jobs: int = 1,
        progress=None) -> ExperimentOutput:
    points = build_points(size=size, segment_sizes=segment_sizes,
                          msg_sizes=msg_sizes, shapes=shapes,
                          iterations=iterations, seed=seed)
    results = run_points(points, jobs=jobs, progress=progress)

    tables = []
    cursor = iter(results)
    headline = []
    effort = {"segments_sent": 0, "segments_folded_async": 0,
              "pipeline_stalls": 0, "inflight_hwm": 0}
    for shape in shapes:
        table = Table(
            f"fig_pipeline: reduce latency (us) vs message size, "
            f"{shape} tree, n={size}", "elements", list(msg_sizes))
        series = {}
        for build in BUILDS:
            for seg in segment_sizes:
                cell = [next(cursor) for _ in msg_sizes]
                tag = f"{build}-seg{seg}" if seg else f"{build}-whole"
                series[(build, seg)] = cell
                table.add_series(
                    tag, [r.metrics["avg_latency_us"] for r in cell])
                for r in cell:
                    for key in effort:
                        val = int(r.counters.get(key, 0))
                        effort[key] = (max(effort[key], val)
                                       if key == "inflight_hwm"
                                       else effort[key] + val)
        for seg in segment_sizes:
            if seg:
                table.factor_series(f"ab speedup seg{seg}",
                                    "ab-whole", f"ab-seg{seg}")
        tables.append(table)
        whole = series[("ab", 0)][-1].metrics["avg_latency_us"]
        best_seg = min((s for s in segment_sizes if s),
                       key=lambda s:
                       series[("ab", s)][-1].metrics["avg_latency_us"])
        best = series[("ab", best_seg)][-1].metrics["avg_latency_us"]
        headline.append(
            f"{shape}: {msg_sizes[-1]} elements, ab whole {whole:.1f}us -> "
            f"seg{best_seg} {best:.1f}us ({whole / best:.2f}x)")

    out = ExperimentOutput("fig_pipeline", tables, points=results)
    out.notes.extend(headline)
    out.notes.append(
        f"pipeline effort: {effort['segments_sent']} segments sent, "
        f"{effort['segments_folded_async']} folded asynchronously, "
        f"{effort['pipeline_stalls']} window stalls, "
        f"in-flight high-water mark {effort['inflight_hwm']}")
    violations = sum((r.invariant_report or {}).get("violation_count", 0)
                     for r in results)
    out.notes.append(
        f"invariant violations across the sweep (incl. INV-SEGMENT): "
        f"{violations}")
    return out


def main(argv: Optional[list[str]] = None) -> ExperimentOutput:
    parser = make_parser(__doc__.splitlines()[0], default_iterations=60)
    args = parser.parse_args(argv)
    banner("fig_pipeline: segment size x message size x build x tree shape")
    out = run(iterations=effective_iterations(args), seed=args.seed,
              jobs=args.jobs, progress=print_progress)
    print(out.render())
    maybe_write_bench_json(out, args)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
