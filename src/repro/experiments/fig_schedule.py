"""fig_schedule — collective schedules as data (repro.schedule).

Beyond the paper: collectives become first-class Schedule IR values that
rewrite passes transform and an interpreter executes through the
unmodified NIC/fabric machinery (DESIGN.md §15).  This sweep shows both
halves of the story:

1. **Crossover** — pass-off (lowered whole-message) vs pass-on (the
   ``pipeline_segments`` rewrite produces the segmentation) across
   schedule x message size x tree shape, both builds: small messages
   stay single-chunk and identical, large messages cross over hard in
   the rewrite's favor (deep chains gain the most).
2. **Autotune** — ``tree_shape="auto"`` / ``segment_size_bytes="auto"``
   configs consulting the persisted tuning table
   (``benchmarks/tuned/smoke.json``) against the static binomial
   default, per (message size, topology) cell through the legacy bench
   path — the table picks different winners for different cells, and the
   notes name each cell's resolved (shape, segmentation).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..config import MpiParams, NetParams, PipelineParams
from ..orchestrate.points import ConfigSpec, SweepPoint
from ..orchestrate.runner import run_points
from ..bench.report import Table
from .common import (ExperimentOutput, banner, effective_iterations,
                     make_parser, maybe_write_bench_json, print_progress)

#: Message-size axis in 8-byte elements: 128 stays single-chunk at the
#: armed segment size below; 512/1024 segment into 2/4 chunks.
MSG_SIZES = (128, 512, 1024)
TREE_SHAPES = ("binomial", "chain")
BUILDS = ("nab", "ab")
#: Per-build reduce lowerings (the schedule the build would execute).
LOWERINGS = {"nab": "reduce.nab", "ab": "reduce.ab"}
#: (tag, pipeline override or None, passes) — pass-off vs pass-on.
VARIANTS = (
    ("whole", None, ()),
    ("pass",
     PipelineParams(segment_size_bytes=2048, max_inflight_segments=3),
     ("pipeline_segments",)),
)
#: Autotune cells: (topology, elements); must overlap the tuned table's
#: (topology, nranks, size-bucket) coverage for "auto" to bite.
AUTO_CELLS = (("crossbar", 128), ("crossbar", 1024),
              ("torus", 128), ("torus", 1024))


def build_points(*, size: int = 8, msg_sizes: Sequence[int] = MSG_SIZES,
                 shapes: Sequence[str] = TREE_SHAPES,
                 iterations: int = 40, seed: int = 1,
                 collect_invariants: bool = True) -> list[SweepPoint]:
    """The grid, in the deterministic order :func:`run`'s cursor expects:
    the crossover block first, then the autotune block."""
    points = [
        SweepPoint(
            experiment=f"fig_schedule-{tag}", kind="schedule",
            config=ConfigSpec("paper", size, seed,
                              mpi=MpiParams(tree_shape=shape),
                              pipeline=pipeline),
            build=build, elements=elements, iterations=iterations,
            # Single-chunk sizes decline segmentation bit-exactly, so the
            # pass-on variant drops the rewrite there (nothing to pipeline)
            # and the crossover plot shows identical small-message cells.
            options={"lowering": LOWERINGS[build],
                     "passes": (list(passes) if pipeline is None
                                or elements * 8
                                > pipeline.segment_size_bytes else [])},
            collect_invariants=collect_invariants)
        for shape in shapes
        for build in BUILDS
        for tag, pipeline, passes in VARIANTS
        for elements in msg_sizes
    ]
    for topo, elements in AUTO_CELLS:
        net = NetParams(topology=topo) if topo != "crossbar" else None
        for tag, mpi, pipeline in (
                ("static", None, None),
                ("auto", MpiParams(tree_shape="auto"),
                 PipelineParams(segment_size_bytes="auto"))):
            points.append(SweepPoint(
                experiment=f"fig_schedule-{tag}", kind="latency",
                config=ConfigSpec("paper", size, seed, net=net, mpi=mpi,
                                  pipeline=pipeline),
                build="ab", elements=elements, iterations=iterations,
                collect_invariants=collect_invariants))
    return points


def run(*, size: int = 8, msg_sizes: Sequence[int] = MSG_SIZES,
        shapes: Sequence[str] = TREE_SHAPES, iterations: int = 40,
        seed: int = 1, jobs: int = 1, progress=None) -> ExperimentOutput:
    from ..schedule.table import (clear_table_cache, resolve_pipeline_params,
                                  resolve_tree_shape)
    points = build_points(size=size, msg_sizes=msg_sizes, shapes=shapes,
                          iterations=iterations, seed=seed)
    results = run_points(points, jobs=jobs, progress=progress)

    tables = []
    cursor = iter(results)
    headline = []
    for shape in shapes:
        table = Table(
            f"fig_schedule: scheduled reduce latency (us) vs message "
            f"size, {shape} tree, n={size}", "elements", list(msg_sizes))
        series = {}
        for build in BUILDS:
            for tag, _pipeline, _passes in VARIANTS:
                cell = [next(cursor) for _ in msg_sizes]
                series[(build, tag)] = cell
                table.add_series(
                    f"{build}-{tag}",
                    [r.metrics["avg_latency_us"] for r in cell])
        for build in BUILDS:
            table.factor_series(f"{build} pass speedup",
                                f"{build}-whole", f"{build}-pass")
        tables.append(table)
        whole = series[("ab", "whole")][-1].metrics["avg_latency_us"]
        best = series[("ab", "pass")][-1].metrics["avg_latency_us"]
        headline.append(
            f"{shape}: {msg_sizes[-1]} elements, ab whole {whole:.1f}us "
            f"-> pipeline_segments pass {best:.1f}us "
            f"({whole / best:.2f}x)")

    auto_elems = sorted({elems for _topo, elems in AUTO_CELLS})
    auto_topos = tuple(dict.fromkeys(topo for topo, _e in AUTO_CELLS))
    auto_table = Table(
        f"fig_schedule: auto vs static-binomial AB latency (us), n={size}",
        "elements", auto_elems)
    rows: dict = {(topo, tag): [] for topo in auto_topos
                  for tag in ("static", "auto")}
    resolved = []
    clear_table_cache()
    for topo, elems in AUTO_CELLS:
        rows[(topo, "static")].append(next(cursor))
        auto_r = next(cursor)
        rows[(topo, "auto")].append(auto_r)
        cfg = auto_r.point.config.build()
        tshape = resolve_tree_shape(cfg, elems * 8)
        pparams = resolve_pipeline_params(cfg, elems * 8)
        seg = (f"seg={pparams.segment_size_bytes}"
               f"w{pparams.max_inflight_segments}"
               if pparams.armed else "whole")
        resolved.append((topo, elems, tshape.name, seg))
    for topo in auto_topos:
        for tag in ("static", "auto"):
            auto_table.add_series(
                f"{topo}-{tag}",
                [r.metrics["avg_latency_us"] for r in rows[(topo, tag)]])
        auto_table.factor_series(f"{topo} auto speedup",
                                 f"{topo}-static", f"{topo}-auto")
    tables.append(auto_table)

    winners = {(name, seg) for _t, _e, name, seg in resolved}
    headline.append(
        f"tuned table resolves {len(winners)} distinct winner(s) "
        f"across {len(resolved)} (topology, msgsize) cells: "
        + "; ".join(f"{t}/{e * 8}B -> {name} {seg}"
                    for t, e, name, seg in resolved))

    out = ExperimentOutput("fig_schedule", tables, points=results)
    out.notes.extend(headline)
    violations = sum((r.invariant_report or {}).get("violation_count", 0)
                     for r in results)
    out.notes.append(
        f"invariant violations across the sweep: {violations}")
    return out


def main(argv: Optional[list[str]] = None) -> ExperimentOutput:
    parser = make_parser(__doc__.splitlines()[0], default_iterations=40)
    args = parser.parse_args(argv)
    banner("fig_schedule: schedule IR crossover + persisted autotuning")
    out = run(iterations=effective_iterations(args), seed=args.seed,
              jobs=args.jobs, progress=print_progress)
    print(out.render())
    maybe_write_bench_json(out, args)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
