"""fig_tenancy — per-job latency degradation and fairness vs. co-tenant
count on one shared fabric (beyond-the-paper exploration).

The paper's benchmarks own the whole machine; real clusters are
multi-tenant.  This experiment submits 1/2/4/8 independent 4-rank
collective jobs through ``repro.tenancy`` onto one shared 32-host
cluster — an oversubscribed two-level fat-tree and a 2D torus — with the
adversarial ``spread`` placement, and measures each job against its solo
baseline (same slots, same seed, idle cluster).  Two curves per
(topology, build): mean contention slowdown and min-max fairness, for
the nab and ab builds.  The question is the paper's selling point under
a workload it never saw: co-tenants are exactly a generator of late,
skewed arrivals, so does application-bypass degrade more gracefully as
neighbours pile on?
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..bench.report import Table
from ..orchestrate.points import SweepPoint
from ..orchestrate.runner import run_points
from ..tenancy import ClusterSpec, JobSpec
from .common import (ExperimentOutput, banner, effective_iterations,
                     make_parser, maybe_write_bench_json, print_progress)

#: Swept axes: jobs contending, on which interconnect, which build.
CO_TENANTS = (1, 2, 4, 8)
TOPOLOGIES = ("fattree", "torus")
BUILDS = ("nab", "ab")

#: Fixed per-job shape: 4 ranks, alternating reduce/allreduce, large
#: payload, modest injected skew, staggered arrivals.
JOB_RANKS = 4
COLLECTIVES = ("reduce", "allreduce")


def _cluster_spec(topology: str, *, hosts: int, seed: int) -> ClusterSpec:
    if topology == "fattree":
        # 4 hosts per edge switch, 4:1 oversubscribed uplinks — the
        # contended regime (full bisection would hide the co-tenants).
        return ClusterSpec(hosts=hosts, factory="quiet", seed=seed,
                           topology="fattree",
                           fattree_hosts_per_switch=4,
                           fattree_oversubscription=4.0)
    return ClusterSpec(hosts=hosts, factory="quiet", seed=seed,
                       topology=topology)


def _jobs(njobs: int, build: str, *, elements: int,
          iterations: int) -> list[JobSpec]:
    return [
        JobSpec(name=f"t{i}", nranks=JOB_RANKS,
                collective=COLLECTIVES[i % len(COLLECTIVES)],
                elements=elements, build=build, iterations=iterations,
                warmup=1, max_skew_us=100.0, arrival_us=25.0 * i,
                placement="spread")
        for i in range(njobs)
    ]


def build_points(*, hosts: int = 32, elements: int = 2048,
                 co_tenants: Sequence[int] = CO_TENANTS,
                 topologies: Sequence[str] = TOPOLOGIES,
                 iterations: int = 10, seed: int = 1,
                 collect_invariants: bool = True) -> list[SweepPoint]:
    """The sweep grid (topology x build x co-tenant count), in the
    deterministic order the result cursor below expects.  The co-tenant
    count rides in the experiment tag — SweepPoint.key() does not cover
    executor options."""
    points = []
    for topo in topologies:
        cluster = _cluster_spec(topo, hosts=hosts, seed=seed)
        for build in BUILDS:
            for njobs in co_tenants:
                jobs = _jobs(njobs, build, elements=elements,
                             iterations=iterations)
                points.append(SweepPoint(
                    experiment=f"fig_tenancy-{njobs}j", kind="tenancy",
                    config=cluster.to_config_spec(),
                    build=build, elements=elements, max_skew_us=100.0,
                    iterations=iterations, warmup=1,
                    collect_invariants=collect_invariants,
                    options={"cluster": cluster.to_dict(),
                             "jobs": [j.to_dict() for j in jobs],
                             "solo": True}))
    return points


def run(*, hosts: int = 32, elements: int = 2048,
        co_tenants: Sequence[int] = CO_TENANTS,
        topologies: Sequence[str] = TOPOLOGIES,
        iterations: int = 10, seed: int = 1, jobs: int = 1,
        progress=None) -> ExperimentOutput:
    points = build_points(hosts=hosts, elements=elements,
                          co_tenants=co_tenants, topologies=topologies,
                          iterations=iterations, seed=seed)
    results = run_points(points, jobs=jobs, progress=progress)

    slowdown_table = Table(
        f"fig_tenancy: mean contention slowdown vs co-tenant count "
        f"(hosts={hosts}, {JOB_RANKS}-rank jobs, {elements} elements, "
        f"spread placement)",
        "co_tenants", list(co_tenants))
    fairness_table = Table(
        "fig_tenancy: min-max fairness of slowdown vs co-tenant count",
        "co_tenants", list(co_tenants))
    cursor = iter(results)
    degradation_at_max: dict[str, float] = {}
    for topo in topologies:
        for build in BUILDS:
            res = [next(cursor) for _ in co_tenants]
            slowdowns = [r.metrics["mean_slowdown"] for r in res]
            fairness = [r.metrics["fairness_minmax"] for r in res]
            slowdown_table.add_series(f"{topo}-{build}", slowdowns)
            fairness_table.add_series(f"{topo}-{build}", fairness)
            degradation_at_max[f"{topo}-{build}"] = slowdowns[-1]

    out = ExperimentOutput("fig_tenancy", [slowdown_table, fairness_table],
                           points=results)
    worst = max(degradation_at_max.items(), key=lambda kv: kv[1])
    out.notes.append(
        f"worst mean slowdown at {co_tenants[-1]} co-tenants: "
        f"{worst[1]:.3f}x on {worst[0]}")
    for topo in topologies:
        nab = degradation_at_max[f"{topo}-nab"]
        ab = degradation_at_max[f"{topo}-ab"]
        out.notes.append(
            f"{topo}: contention tax at {co_tenants[-1]} co-tenants "
            f"nab {nab:.3f}x vs ab {ab:.3f}x")
    violations = sum((r.invariant_report or {}).get("violation_count", 0)
                     for r in results)
    out.notes.append(
        f"invariant violations across the sweep "
        f"(job-tagged, incl. INV-FIFO): {violations}")
    return out


def main(argv: Optional[list[str]] = None) -> ExperimentOutput:
    parser = make_parser(__doc__.splitlines()[0], default_iterations=10)
    args = parser.parse_args(argv)
    banner("fig_tenancy: co-tenant jobs sharing one fabric")
    out = run(iterations=effective_iterations(args), seed=args.seed,
              jobs=args.jobs, progress=print_progress)
    print(out.render())
    maybe_write_bench_json(out, args)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
