"""fig_topo — CPU utilization across interconnect topologies and
reduction-tree shapes (beyond-the-paper exploration).

The paper's testbed is one 32-port crossbar and a binomial tree; this
experiment sweeps the ``repro.topo`` registries instead: every topology
(crossbar, two-level fat-tree, 2D torus) crossed with the registered tree
shapes, both builds, at zero and maximal injected skew.  The question is
whether the application-bypass advantage (paper Figs. 6-7) survives when
the network has real hop counts and hot spots, and how much a tree
shape's locality changes the picture.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import MpiParams, NetParams
from ..orchestrate.points import ConfigSpec, SweepPoint
from ..orchestrate.runner import run_points
from ..bench.report import Table
from .common import (ExperimentOutput, banner, effective_iterations,
                     make_parser, maybe_write_bench_json, print_progress)

#: The swept registries: every topology, and a spread of tree shapes from
#: flattest (knomial radix 4) to deepest (chain).
TOPOLOGIES = ("crossbar", "fattree", "torus")
TREE_SHAPES = (("binomial", 2), ("knomial", 4), ("chain", 2), ("bine", 2))
SKEWS = (0.0, 1000.0)


def _shape_label(shape: str, radix: int) -> str:
    return f"knomial{radix}" if shape == "knomial" else shape


def build_points(*, size: int = 16, elements: int = 4,
                 topologies: Sequence[str] = TOPOLOGIES,
                 shapes: Sequence[tuple] = TREE_SHAPES,
                 skews: Sequence[float] = SKEWS,
                 iterations: int = 60, seed: int = 1,
                 collect_invariants: bool = True) -> list[SweepPoint]:
    """The sweep grid (topology x tree shape x build x skew), in the
    deterministic order the result cursor below expects."""
    return [
        SweepPoint(
            experiment="fig_topo", kind="cpu_util",
            config=ConfigSpec(
                "paper", size, seed,
                net=NetParams(topology=topo),
                mpi=MpiParams(tree_shape=shape, tree_radix=radix)),
            build=build, elements=elements, max_skew_us=skew,
            iterations=iterations,
            collect_invariants=collect_invariants)
        for topo in topologies
        for shape, radix in shapes
        for build in ("nab", "ab")
        for skew in skews
    ]


def run(*, size: int = 16, elements: int = 4,
        topologies: Sequence[str] = TOPOLOGIES,
        shapes: Sequence[tuple] = TREE_SHAPES,
        skews: Sequence[float] = SKEWS,
        iterations: int = 60, seed: int = 1, jobs: int = 1,
        progress=None) -> ExperimentOutput:
    points = build_points(size=size, elements=elements,
                          topologies=topologies, shapes=shapes, skews=skews,
                          iterations=iterations, seed=seed)
    results = run_points(points, jobs=jobs, progress=progress)

    table = Table(
        f"fig_topo: CPU util (us) vs skew, n={size}, {elements} elements",
        "skew_us", list(skews))
    cursor = iter(results)
    max_util: dict[str, float] = {}
    hot: dict[str, float] = {}
    factors: list[tuple[str, float]] = []
    for topo in topologies:
        for shape, radix in shapes:
            label = f"{topo}/{_shape_label(shape, radix)}"
            by_build = {}
            for build in ("nab", "ab"):
                res = [next(cursor) for _ in skews]
                values = [r.metrics["avg_util_us"] for r in res]
                table.add_series(f"{label}-{build}", values)
                by_build[build] = values
                for r in res:
                    hot[label] = max(
                        hot.get(label, 0.0),
                        float(r.counters.get("net_max_port_utilization",
                                             0.0)))
            # AB improvement factor at maximal skew for this combination.
            factors.append(
                (label, by_build["nab"][-1] / by_build["ab"][-1]))

    out = ExperimentOutput("fig_topo", [table], points=results)
    best = max(factors, key=lambda kv: kv[1])
    worst = min(factors, key=lambda kv: kv[1])
    out.notes.append(
        f"AB factor of improvement at skew {skews[-1]:g}us: "
        f"best {best[1]:.2f} on {best[0]}, "
        f"worst {worst[1]:.2f} on {worst[0]}")
    if hot:
        hottest = max(hot.items(), key=lambda kv: kv[1])
        out.notes.append(
            f"hottest network port utilization: {hottest[1]:.3f} "
            f"({hottest[0]})")
    violations = sum((r.invariant_report or {}).get("violation_count", 0)
                     for r in results)
    out.notes.append(
        f"invariant violations across the sweep (incl. INV-FIFO): "
        f"{violations}")
    return out


def main(argv: Optional[list[str]] = None) -> ExperimentOutput:
    parser = make_parser(__doc__.splitlines()[0], default_iterations=60)
    args = parser.parse_args(argv)
    banner("fig_topo: topology x tree shape x skew sweep")
    out = run(iterations=effective_iterations(args), seed=args.seed,
              jobs=args.jobs, progress=print_progress)
    print(out.render())
    maybe_write_bench_json(out, args)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
