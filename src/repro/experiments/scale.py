"""Scalability extrapolation beyond the paper's testbed.

The paper's conclusion: "the factor of improvement increases with system
size, indicating that the skew-tolerant benefits of our application-bypass
implementation will lead to better scalability ... on larger clusters",
and its future work begins with "we intend to evaluate the performance of
application-bypass operations on large-scale clusters."

The authors had 32 nodes; the simulator does not.  This experiment tiles
the same interlaced machine mix out to 256 nodes and re-runs the Fig. 7
protocol (CPU utilization at 1000 us max skew), checking that the factor
keeps climbing — the trend the whole paper is arguing for.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..bench.report import Table
from ..bench.sweep import cpu_util_vs_nodes
from ..orchestrate.points import ConfigSpec
from .common import (ExperimentOutput, banner, effective_iterations,
                     make_parser, maybe_write_bench_json, print_progress)

SCALE_SIZES = (16, 32, 64, 128, 256)


def run(*, sizes: Sequence[int] = SCALE_SIZES, elements: int = 4,
        max_skew_us: float = 1000.0, iterations: int = 20, seed: int = 1,
        jobs: int = 1, progress=None) -> ExperimentOutput:
    sweep = cpu_util_vs_nodes(
        lambda n: ConfigSpec("extrapolated", n, seed),
        sizes=sizes, element_sizes=(elements,), max_skew_us=max_skew_us,
        iterations=iterations, jobs=jobs, experiment="scale",
        progress=progress)
    table = Table(
        f"Scalability extrapolation: factor of improvement vs. nodes "
        f"(skew {max_skew_us:.0f}us, {elements} elements)",
        "nodes", sizes)
    table.add_series("nab", sweep.table._find(f"nab-{elements}").values)
    table.add_series("ab", sweep.table._find(f"ab-{elements}").values)
    table.factor_series("factor", "nab", "ab")

    out = ExperimentOutput("scale", [table], points=sweep.points)
    factors = table._find("factor").values
    grows = all(b > a for a, b in zip(factors, factors[1:]))
    out.notes.append(
        f"factor keeps increasing beyond the paper's 32 nodes: "
        f"{'yes' if grows else 'NO'} "
        f"({', '.join(f'{s}:{f:.2f}' for s, f in zip(sizes, factors))})")
    out.notes.append(
        "mechanism: the default build's average utilization saturates near "
        "E[max skew] x tree-shape while the bypass build's per-node cost "
        "keeps falling as leaves dominate the population")
    return out


def main(argv: Optional[list[str]] = None) -> ExperimentOutput:
    parser = make_parser(__doc__.splitlines()[0], default_iterations=20)
    args = parser.parse_args(argv)
    banner("Scalability extrapolation (16..256 nodes)")
    out = run(iterations=effective_iterations(args), seed=args.seed,
              jobs=args.jobs, progress=print_progress)
    print(out.render())
    maybe_write_bench_json(out, args)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
