"""repro.faults — deterministic, seeded fault injection (see DESIGN.md §10).

Public surface:

- :class:`FaultSchedule` — compiled from ``config.faults``; installs armed
  injectors into a cluster and doubles as the deterministic crash oracle.
- ``INJECTORS`` / :func:`register_injector` — the extension registry
  (mirrors ``repro.topo``).
- :class:`FaultInjector` — base class for new injectors.

With ``FaultParams`` at defaults nothing here is ever imported by the
runtime, and a fault-free run is bit-identical to one without this package.
"""

from .base import (FaultInjector, FaultSchedule, INJECTORS, injector_names,
                   register_injector)
from . import injectors as _builtin_injectors  # noqa: F401  (registration)

__all__ = [
    "FaultInjector",
    "FaultSchedule",
    "INJECTORS",
    "injector_names",
    "register_injector",
]
