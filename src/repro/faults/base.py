"""Fault-injection framework: injector registry and the FaultSchedule.

A :class:`FaultSchedule` is compiled from a :class:`repro.config.FaultParams`
block.  It instantiates every *armed* injector (sorted by registry name so the
installation order — and therefore event insertion order — is deterministic)
and installs them into a :class:`repro.cluster.Cluster`.  Injectors hook into
existing simulation components (fabric, NIC, host CPU) through small, explicit
extension points; when no injector is armed the schedule is never built and
the simulation is bit-identical to a fault-free run.

Extension guide (mirrors ``repro.topo``): subclass :class:`FaultInjector`,
decorate with :func:`register_injector`, implement ``armed``/``install`` and
optionally ``counters``.  See DESIGN.md §10.
"""

from __future__ import annotations

from ..errors import ConfigError

INJECTORS: dict = {}


def register_injector(name):
    """Class decorator registering a :class:`FaultInjector` under ``name``."""

    def deco(cls):
        if name in INJECTORS:
            raise ConfigError(f"duplicate fault injector name: {name!r}")
        INJECTORS[name] = cls
        cls.name = name
        return cls

    return deco


def injector_names():
    """Sorted names of all registered injectors."""
    return sorted(INJECTORS)


class FaultInjector:
    """Base class for pluggable fault injectors.

    Subclasses implement:

    - ``armed(params)`` (classmethod): whether this injector is active for the
      given :class:`FaultParams` block.
    - ``install(cluster)``: hook into the cluster (schedule events, install
      fabric/NIC/CPU hooks).  Called once, before any process runs.
    - ``counters()``: dict of injector-local counters merged into the
      schedule's counter source.
    """

    name = "?"

    def __init__(self, params):
        self.params = params
        self.injected = 0

    @classmethod
    def armed(cls, params):  # pragma: no cover - interface
        raise NotImplementedError

    def install(self, cluster):  # pragma: no cover - interface
        raise NotImplementedError

    def counters(self):
        return {}


class FaultSchedule:
    """All armed injectors for one cluster, plus the crash oracle.

    The schedule doubles as the (deterministic, omniscient) failure detector
    assumed by the recovery layer: because faults are injected from a seeded
    schedule, every component may consult :meth:`is_crashed` instead of
    running a heartbeat protocol.  This is the standard "perfect failure
    detector" simplification from the fault-tolerance literature and is
    documented in DESIGN.md §10.
    """

    def __init__(self, params):
        self.params = params
        self.cluster = None
        self.injectors = [INJECTORS[name](params)
                          for name in sorted(INJECTORS)
                          if INJECTORS[name].armed(params)]

    def install(self, cluster):
        self.cluster = cluster
        for node in cluster.nodes:
            node.crash_oracle = self.is_crashed
        for injector in self.injectors:
            injector.install(cluster)

    # -- crash oracle -----------------------------------------------------

    def is_crashed(self, rank, now):
        p = self.params
        return p.crash_rank >= 0 and rank == p.crash_rank and now >= p.crash_at_us

    def crashed_ranks(self, now):
        p = self.params
        if p.crash_rank >= 0 and now >= p.crash_at_us:
            return {p.crash_rank}
        return set()

    # -- counters ---------------------------------------------------------

    def counters(self):
        out = {"faults_injected": sum(i.injected for i in self.injectors)}
        for injector in self.injectors:
            out.update(injector.counters())
        # Signals swallowed *by the injector* only — the NIC's own
        # ``signals_suppressed`` stat also counts benign coalescing and
        # disabled-window drops, which are not faults.
        out["signals_suppressed"] = sum(
            i.injected for i in self.injectors
            if i.name == "nic_signal_suppress")
        retransmissions = 0
        descriptors_timed_out = 0
        subtrees_healed = 0
        if self.cluster is not None:
            for node in self.cluster.nodes:
                if node.nic.reliable is not None:
                    retransmissions += node.nic.reliable.stats.retransmissions
                engine = getattr(node, "ab_engine", None)
                if engine is not None:
                    descriptors_timed_out += engine.stats.descriptors_timed_out
                    subtrees_healed += engine.stats.subtrees_healed
        out["retransmissions"] = retransmissions
        out["descriptors_timed_out"] = descriptors_timed_out
        out["subtrees_healed"] = subtrees_healed
        return out
