"""The five built-in fault injectors.

Each hooks one existing extension point:

=====================  ====================================================
``packet_loss_burst``  ``Fabric.drop_hook`` — correlated drop bursts
``link_degrade``       ``Fabric.transit_penalty`` — windowed slow-down
``nic_signal_suppress``  ``Nic.signal_suppressor`` — swallow AB signals
``rank_pause``         ``HostCpu.freeze`` — straggler window
``rank_crash``         ``HostCpu.crash`` + ``Nic.crash`` — fail-stop
=====================  ====================================================

All randomness goes through a dedicated named stream
(``faults.<injector>``) so arming an injector never perturbs the baseline
streams, and all timing goes through the simulation clock (no stdlib
``random``/``time`` — enforced by simlint SIM008).
"""

from __future__ import annotations

from .base import FaultInjector, register_injector


@register_injector("packet_loss_burst")
class PacketLossBurst(FaultInjector):
    """Correlated loss: one trigger drop destroys the next burst_len-1 too.

    Layered on top of the independent Bernoulli ``NetParams.drop_prob``;
    arming it forces the GM reliable-delivery protocol on (the Node passes
    ``force_reliable`` to every NIC) so the traffic survives.
    """

    def __init__(self, params):
        super().__init__(params)
        self._rng = None
        self._remaining = 0

    @classmethod
    def armed(cls, params):
        return params.burst_prob > 0.0

    def install(self, cluster):
        self._rng = cluster.rng.stream("faults.burst")
        cluster.fabric.drop_hook = self._should_drop

    def _should_drop(self, packet, src, dst):
        if self._remaining > 0:
            self._remaining -= 1
            self.injected += 1
            return True
        if float(self._rng.random()) < self.params.burst_prob:
            self._remaining = self.params.burst_len - 1
            self.injected += 1
            return True
        return False

    def counters(self):
        return {"burst_packets_dropped": self.injected}


@register_injector("link_degrade")
class LinkDegrade(FaultInjector):
    """Time-windowed bandwidth/latency degradation in fabric transit.

    The penalty is added to the topology's arrival time *before* the
    per-(src,dst) FIFO clamp, so INV-FIFO still holds.  ``degrade_links``
    restricts the fault to specific source nodes (empty = every link).
    """

    @classmethod
    def armed(cls, params):
        return params.degrade_armed

    def install(self, cluster):
        self._net = cluster.config.net
        cluster.fabric.transit_penalty = self._penalty

    def _penalty(self, at, src, dst, wire_bytes):
        p = self.params
        if not (p.degrade_start_us <= at < p.degrade_end_us):
            return 0.0
        if p.degrade_links and src not in p.degrade_links:
            return 0.0
        net = self._net
        extra = ((wire_bytes / net.link_bytes_per_us)
                 * (p.degrade_bandwidth_factor - 1.0)
                 + (net.switch_latency_us + net.cable_latency_us)
                 * (p.degrade_latency_factor - 1.0))
        if extra > 0.0:
            self.injected += 1
        return extra

    def counters(self):
        return {"degraded_packets": self.injected}


@register_injector("nic_signal_suppress")
class NicSignalSuppress(FaultInjector):
    """Swallow AB collective signals on one NIC for a time window.

    The AB engine must make progress on the Fig.-3 synchronous path alone
    (descriptors drained from inside blocking MPI calls).  At window end the
    NIC is kicked so a signal suppressed *after* the rank's last blocking
    call cannot strand packets in the RX queue forever.
    """

    @classmethod
    def armed(cls, params):
        return params.suppress_armed

    def install(self, cluster):
        p = self.params
        node = cluster.nodes[p.suppress_node]
        node.nic.signal_suppressor = self._suppress
        self._sim = cluster.sim
        cluster.sim.at(p.suppress_end_us, node.nic.kick_signals)

    def _suppress(self):
        p = self.params
        if p.suppress_start_us <= self._sim.now < p.suppress_end_us:
            self.injected += 1
            return True
        return False

    def counters(self):
        return {"suppress_windows_hit": self.injected}


@register_injector("rank_pause")
class RankPause(FaultInjector):
    """Freeze one rank's CPU for a window (generalized straggler)."""

    @classmethod
    def armed(cls, params):
        return params.pause_rank >= 0

    def install(self, cluster):
        p = self.params
        cpu = cluster.nodes[p.pause_rank].cpu
        cluster.sim.at(p.pause_at_us, self._pause, cpu)

    def _pause(self, cpu):
        self.injected += 1
        cpu.freeze(self.params.pause_duration_us)

    def counters(self):
        return {"ranks_paused": self.injected}


@register_injector("rank_crash")
class RankCrash(FaultInjector):
    """Permanent fail-stop of one rank mid-run.

    Crashes both the host CPU (process never resumes, pending handlers are
    discarded) and the NIC (arrivals dropped, reliable-channel timers
    cancelled).  Every *other* rank's reliable channel marks the crashed
    peer dead so go-back-N retransmit timers do not spin forever against a
    silent NIC.
    """

    @classmethod
    def armed(cls, params):
        return params.crash_rank >= 0

    def install(self, cluster):
        self._cluster = cluster
        cluster.sim.at(self.params.crash_at_us, self._crash)

    def _crash(self):
        self.injected += 1
        victim = self.params.crash_rank
        node = self._cluster.nodes[victim]
        node.cpu.crash()
        node.nic.crash()
        for other in self._cluster.nodes:
            if other.id != victim and other.nic.reliable is not None:
                other.nic.reliable.mark_peer_dead(victim)

    def counters(self):
        return {"ranks_crashed": self.injected}
