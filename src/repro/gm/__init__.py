"""GM / Myrinet NIC substrate: packets, pinned memory, the NIC model and
its NIC-to-host signal path (the paper's GM 1.5.2.1 modification)."""

from .memory import PAGE_BYTES, PinnedMemoryManager, Registration
from .nic import Nic, NicStats, SignalHandler
from .packet import Packet, PacketType

__all__ = [
    "Packet", "PacketType",
    "Nic", "NicStats", "SignalHandler",
    "PinnedMemoryManager", "Registration", "PAGE_BYTES",
]
