"""Pinned (DMA-registered) memory model.

GM can only DMA to/from memory registered with the kernel driver.  MPICH over
GM therefore runs small messages through pre-pinned bounce buffers (*eager*
mode, one copy each side) and pins large buffers in place (*rendezvous* mode,
zero copy but an expensive registration syscall) — paper Sec. III.

This module charges realistic pin/unpin costs and tracks registrations so
tests can assert that every pin is eventually released.
"""

from __future__ import annotations

import itertools

from ..config import NicParams
from ..errors import PinError
from ..sim.cpu import Ledger

PAGE_BYTES = 4096


class Registration:
    """A live DMA registration."""

    __slots__ = ("handle", "nbytes", "released")

    def __init__(self, handle: int, nbytes: int):
        self.handle = handle
        self.nbytes = nbytes
        self.released = False


class PinnedMemoryManager:
    """Per-node registry of pinned regions with cost accounting."""

    def __init__(self, params: NicParams, host_scale: float):
        self.params = params
        self.host_scale = host_scale
        self._handles = itertools.count(1)
        self._live: dict[int, Registration] = {}
        self.pins = 0
        self.unpins = 0
        self.pinned_bytes = 0
        self.peak_pinned_bytes = 0

    @staticmethod
    def pages(nbytes: int) -> int:
        """Number of 4 KiB pages covering ``nbytes`` (at least one)."""
        if nbytes <= 0:
            return 1
        return -(-nbytes // PAGE_BYTES)

    def pin(self, nbytes: int, ledger: Ledger) -> Registration:
        """Register ``nbytes`` for DMA; charges the syscall to ``ledger``."""
        if nbytes < 0:
            raise PinError("cannot pin a negative-size region")
        cost = (self.params.pin_base_us +
                self.params.pin_per_page_us * self.pages(nbytes))
        ledger.charge(cost * self.host_scale, "pin")
        reg = Registration(next(self._handles), nbytes)
        self._live[reg.handle] = reg
        self.pins += 1
        self.pinned_bytes += nbytes
        self.peak_pinned_bytes = max(self.peak_pinned_bytes, self.pinned_bytes)
        return reg

    def unpin(self, reg: Registration, ledger: Ledger) -> None:
        """Release a registration; charges the syscall to ``ledger``."""
        if reg.released or reg.handle not in self._live:
            raise PinError(f"double unpin of handle {reg.handle}")
        ledger.charge(self.params.unpin_base_us * self.host_scale, "pin")
        reg.released = True
        del self._live[reg.handle]
        self.unpins += 1
        self.pinned_bytes -= reg.nbytes

    @property
    def live_registrations(self) -> int:
        return len(self._live)
