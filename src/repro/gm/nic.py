"""The GM network interface model (LANai control program + DMA engines).

Timeline of one eager message A → B:

1. Host A's MPI layer charges its own send overhead and the eager copy into a
   pre-pinned bounce buffer (that cost is on the *host* ledger, not here),
   then calls :meth:`Nic.send` with a launch offset equal to the host work
   already accumulated.
2. NIC A serializes the send: DMA from host memory plus LANai packet staging
   (one packet at a time → ``tx_free_at``).
3. The fabric computes wire transit including switch contention and enforces
   per-pair FIFO (see :mod:`repro.network.fabric`).
4. NIC B receives: LANai processing plus DMA into the host receive region
   (``rx_free_at``), then appends the packet to the **host receive queue**
   and notifies any poller.
5. *The paper's modification:* if the packet is of the AB collective type
   and the host currently has signals enabled, the NIC raises a host signal
   after a short dispatch latency.  The signal preempts application compute
   (see :class:`repro.sim.cpu.HostCpu`) and runs the registered handler —
   normally the MPICH progress engine with the application-bypass hook.

Lost-wakeup guard: :meth:`enable_signals` re-raises a signal if AB packets
are already sitting in the receive queue.  The real GM modification closes
the same race inside the control program; without this, a packet landing
between the final synchronous drain and the enable call (paper Fig. 3) would
sleep forever.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from ..config import NicParams
from ..sim import access
from ..sim.cpu import HostCpu, Ledger
from ..sim.process import Notifier
from ..sim.trace import Tracer
from .packet import Packet, PacketType

#: Host signal entry point.  Receives the CPU ledger and the kernel-delivery
#: overhead (already scaled for this host).  The handler charges the overhead
#: itself *unless* it ignores the signal because progress is already underway
#: — in that case the blocked-polling interval already bills that wall time,
#: and charging again would double-count the CPU.
SignalHandler = Callable[[Ledger, float], None]


class NicStats:
    """Counters exposed for tests and reports."""

    __slots__ = ("packets_sent", "packets_received", "bytes_sent",
                 "bytes_received", "signals_raised", "signals_suppressed",
                 "signal_toggles", "send_token_stalls", "recv_token_stalls",
                 "crash_drops", "segment_packets_sent",
                 "segment_packets_received", "segment_bytes_sent")

    def __init__(self) -> None:
        self.packets_sent = 0
        self.packets_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.signals_raised = 0
        self.signals_suppressed = 0
        self.signal_toggles = 0
        #: Sends delayed waiting for a GM send token (flow control).
        self.send_token_stalls = 0
        #: Arrivals delayed waiting for a host receive buffer.
        self.recv_token_stalls = 0
        #: Arrivals discarded because this NIC is crashed (repro.faults).
        self.crash_drops = 0
        #: Segment-tagged collective traffic (repro.pipeline; zero unless
        #: the pipeline subsystem is armed).
        self.segment_packets_sent = 0
        self.segment_packets_received = 0
        self.segment_bytes_sent = 0


class Nic:
    """One node's network interface card."""

    def __init__(self, sim, node_id: int, params: NicParams, *,
                 lanai_scale: float, host_scale: float,
                 dma_bytes_per_us: float, fabric, cpu: HostCpu,
                 tracer: Optional[Tracer] = None,
                 net_params=None, force_reliable: bool = False):
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.lanai_scale = lanai_scale
        self.host_scale = host_scale
        self.dma_bytes_per_us = dma_bytes_per_us
        self.fabric = fabric
        self.cpu = cpu
        self.tracer = tracer or Tracer()

        self.tx_free_at = 0.0
        self.rx_free_at = 0.0
        #: Packets DMA-complete and visible to the host progress engine.
        self.rx_queue: deque[Packet] = deque()
        self.rx_notifier = Notifier()
        # GM flow control: finish times of in-flight sends (send tokens)
        # and free host receive buffers (receive tokens).
        self._send_inflight: deque[float] = deque()
        self._recv_tokens_free = params.recv_tokens
        self._rx_backlog: deque[tuple[Packet, float]] = deque()

        self.signals_enabled = False
        self._signal_handler: Optional[SignalHandler] = None
        #: NIC-resident collective unit (see repro.core.nic_reduce); when
        #: installed, NIC_COLLECTIVE packets are combined on the LANai and
        #: never DMA'd to this host.
        self.collective_unit = None
        #: GM reliable delivery, engaged when the fabric is lossy (or a
        #: fault injector that destroys packets forces it on).
        self.reliable = None
        if net_params is not None and (net_params.drop_prob > 0.0
                                       or force_reliable):
            from .reliability import ReliableChannel
            self.reliable = ReliableChannel(
                self, net_params.retransmit_timeout_us)
        #: Fail-stop flag (repro.faults rank_crash): a crashed NIC drops
        #: every arrival and never raises another signal.
        self.crashed = False
        #: Fault hook (nic_signal_suppress): zero-arg callable; True means
        #: "swallow this signal".  None on a fault-free NIC.
        self.signal_suppressor = None
        #: True while a raised signal has not yet been delivered; further
        #: raises coalesce into it (Unix signal semantics — one pending
        #: SIGIO, the handler drains everything that arrived meanwhile).
        self._signal_pending = False
        self.stats = NicStats()
        #: Invariant monitor notified on signal-enable transitions (see
        #: repro.analysis.invariants); None in production runs.
        self.monitor = None

        fabric.attach(node_id, self._on_wire_arrival)

    # ------------------------------------------------------------------
    # host-facing API
    # ------------------------------------------------------------------
    def register_signal_handler(self, handler: SignalHandler) -> None:
        """Install the host routine a NIC signal invokes (progress engine)."""
        self._signal_handler = handler

    def send(self, packet: Packet, launch_offset: float = 0.0) -> None:
        """Queue ``packet`` for transmission.

        ``launch_offset`` positions the hand-off relative to ``sim.now`` so
        that instantaneous host logic (ledger-based) can interleave multiple
        sends at their true times.
        """
        ready = self.sim.now + launch_offset
        # GM send-token flow control: at most `send_tokens` sends may be
        # outstanding; a further send waits for the oldest to finish.
        inflight = self._send_inflight
        while inflight and inflight[0] <= ready:
            inflight.popleft()
        if len(inflight) >= self.params.send_tokens:
            token_at = inflight[len(inflight) - self.params.send_tokens]
            if token_at > ready:
                ready = token_at
                self.stats.send_token_stalls += 1
        start = max(ready, self.tx_free_at)
        duration = (self.params.dma_setup_us +
                    packet.nbytes / self.dma_bytes_per_us +
                    self.params.lanai_send_us * self.lanai_scale)
        finish = start + duration
        self.tx_free_at = finish
        inflight.append(finish)
        self.stats.packets_sent += 1
        self.stats.bytes_sent += packet.nbytes
        if packet.seg >= 0:
            self.stats.segment_packets_sent += 1
            self.stats.segment_bytes_sent += packet.nbytes
        if self.reliable is not None:
            self.reliable.register_send(packet)
        self.tracer.emit("nic.send", node=self.node_id, pkt=packet.seq,
                         dst=packet.dst, ptype=packet.ptype.value,
                         nbytes=packet.nbytes, wire_at=finish)
        self.fabric.inject(packet, self.node_id, packet.dst, finish)

    def retransmit(self, packet: Packet) -> None:
        """Resend a buffered (already-sequenced) packet after a timeout."""
        start = max(self.sim.now, self.tx_free_at)
        duration = (self.params.dma_setup_us +
                    packet.nbytes / self.dma_bytes_per_us +
                    self.params.lanai_send_us * self.lanai_scale)
        self.tx_free_at = start + duration
        self.tracer.emit("nic.retransmit", node=self.node_id,
                         pkt=packet.seq, dst=packet.dst, gseq=packet.gseq)
        self.fabric.inject(packet, self.node_id, packet.dst,
                           self.tx_free_at)

    def transmit_control(self, packet: Packet) -> None:
        """Send a zero-payload control packet (ACKs) at NIC priority."""
        start = max(self.sim.now, self.tx_free_at)
        self.tx_free_at = start + self.params.lanai_send_us * self.lanai_scale
        self.fabric.inject(packet, self.node_id, packet.dst,
                           self.tx_free_at)

    def enable_signals(self, ledger: Ledger) -> None:
        """Ask the NIC to raise signals for AB packets (paper Fig. 3)."""
        ledger.charge(self.params.signal_toggle_us * self.host_scale, "signal")
        self.stats.signal_toggles += 1
        if self.signals_enabled:
            return
        self.signals_enabled = True
        if self.monitor is not None:
            self.monitor.on_signal_toggle(self.node_id, True, self.sim.now)
        # Close the enable/arrival race: if AB packets already landed, the
        # modified control program raises the signal immediately.
        if any(p.ptype is PacketType.AB_COLLECTIVE for p in self.rx_queue):
            self._schedule_signal()

    def disable_signals(self, ledger: Ledger) -> None:
        """Stop signal generation (descriptor queue drained, Fig. 5)."""
        ledger.charge(self.params.signal_toggle_us * self.host_scale, "signal")
        self.stats.signal_toggles += 1
        if self.signals_enabled and self.monitor is not None:
            self.monitor.on_signal_toggle(self.node_id, False, self.sim.now)
        self.signals_enabled = False

    # ------------------------------------------------------------------
    # fault-injection entry points (repro.faults)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop this NIC: drop all future arrivals, cancel timers."""
        self.crashed = True
        if self.reliable is not None:
            self.reliable.shutdown()

    def kick_signals(self) -> None:
        """Re-raise a signal if AB packets are pending (suppression-window
        end): a signal swallowed after the rank's last blocking MPI call
        would otherwise strand those packets in the RX queue forever."""
        if self.crashed or not self.signals_enabled:
            return
        if self._signal_handler is None:
            return
        if any(p.ptype is PacketType.AB_COLLECTIVE for p in self.rx_queue):
            self._schedule_signal()

    # ------------------------------------------------------------------
    # wire-facing internals
    # ------------------------------------------------------------------
    def pop_rx(self) -> Packet:
        """Dequeue one host-visible packet, releasing its receive token.

        The progress engine must use this (not the raw queue) so that GM
        receive-buffer flow control stays balanced.
        """
        if access.TRACER is not None:
            access.trace(access.WRITE, ("nic_rx", self.node_id),
                         note="pop_rx")
        packet = self.rx_queue.popleft()
        self._recv_tokens_free += 1
        if self._rx_backlog:
            backlog_packet, backlog_arrival = self._rx_backlog.popleft()
            self._start_rx(backlog_packet, max(backlog_arrival, self.sim.now))
        return packet

    def _on_wire_arrival(self, packet: Packet, arrival: float) -> None:
        if self.crashed:
            self.stats.crash_drops += 1
            return
        if self.reliable is not None and not self.reliable.accept(packet):
            return  # ACK handled, duplicate, or out-of-order (go-back-N)
        if self._recv_tokens_free <= 0:
            # No host receive buffer: the packet waits at the NIC (real GM
            # NACKs and the sender retransmits; the timing effect is the
            # same backpressure).
            self.stats.recv_token_stalls += 1
            self._rx_backlog.append((packet, arrival))
            return
        self._start_rx(packet, arrival)

    def _start_rx(self, packet: Packet, arrival: float) -> None:
        if (packet.ptype is PacketType.NIC_COLLECTIVE
                and self.collective_unit is not None):
            # NIC-resident path: LANai header processing only — the payload
            # stays in NIC SRAM, no host DMA, no receive token consumed.
            done = (max(arrival, self.rx_free_at) +
                    self.params.lanai_recv_us * self.lanai_scale)
            self.rx_free_at = done
            self.stats.packets_received += 1
            self.stats.bytes_received += packet.nbytes
            self.sim.at(done, self.collective_unit.on_packet, packet)
            return
        self._recv_tokens_free -= 1
        start = max(arrival, self.rx_free_at)
        duration = (self.params.lanai_recv_us * self.lanai_scale +
                    self.params.dma_setup_us +
                    packet.nbytes / self.dma_bytes_per_us)
        if (packet.ptype is PacketType.AB_COLLECTIVE and
                self.signals_enabled):
            # Interrupt-raising path in the modified control program is
            # slower than the plain deposit path (see NicParams).
            duration += self.params.ab_rx_extra_us * self.lanai_scale
        done = start + duration
        self.rx_free_at = done
        self.sim.at(done, self._rx_complete, packet)

    def _rx_complete(self, packet: Packet) -> None:
        if self.crashed:
            self.stats.crash_drops += 1
            return
        if access.TRACER is not None:
            # RX-queue order is meaningful: the progress engine preprocesses
            # packets in queue order and the AB descriptor match is
            # FIFO-by-sender, so two same-timestamp unordered deposits are
            # a latent schedule race.
            access.trace(access.WRITE, ("nic_rx", self.node_id),
                         note=f"rx src={packet.src} pkt={packet.seq}")
        self.rx_queue.append(packet)
        self.stats.packets_received += 1
        self.stats.bytes_received += packet.nbytes
        if packet.seg >= 0:
            self.stats.segment_packets_received += 1
        self.tracer.emit("nic.recv", node=self.node_id, pkt=packet.seq,
                         src=packet.src, ptype=packet.ptype.value)
        self.rx_notifier.notify(packet)
        if packet.ptype is PacketType.AB_COLLECTIVE:
            if self.signals_enabled and self._signal_handler is not None:
                self._schedule_signal()
            else:
                self.stats.signals_suppressed += 1

    def _schedule_signal(self) -> None:
        if self.signal_suppressor is not None and self.signal_suppressor():
            self.stats.signals_suppressed += 1
            return
        if self._signal_pending:
            # Coalesce: one pending signal covers every packet that lands
            # before it is delivered (Unix pending-signal semantics).
            self.stats.signals_suppressed += 1
            return
        self._signal_pending = True
        self.sim.schedule(self.params.signal_dispatch_us, self._raise_signal)

    def _raise_signal(self) -> None:
        self._signal_pending = False
        if self.crashed:
            return
        # Re-check: the host may have disabled signals while the dispatch
        # was in flight (e.g. the synchronous path consumed everything).
        if not self.signals_enabled or self._signal_handler is None:
            self.stats.signals_suppressed += 1
            return
        if self.signal_suppressor is not None and self.signal_suppressor():
            self.stats.signals_suppressed += 1
            return
        self.stats.signals_raised += 1
        self.tracer.emit("nic.signal", node=self.node_id)
        handler = self._signal_handler
        overhead = self.params.signal_overhead_us * self.host_scale
        self.cpu.run_handler(lambda ledger: handler(ledger, overhead))
