"""GM packet types and the wire-level packet object.

The payload carried by a :class:`Packet` is opaque to the GM layer (the MPI
layer above puts its message envelope there).  The one GM-visible distinction
the paper adds is the **collective packet type** (``AB_COLLECTIVE``): the
modified NIC control program raises a host signal *only* for packets of this
type, and only while the host has signals enabled (paper Sec. V-A).
"""

from __future__ import annotations

import enum
import itertools
from typing import Any


class PacketType(enum.Enum):
    """GM packet classes used by the MPICH-over-GM protocol."""

    #: Small message: data travels with the envelope (copied through
    #: pre-pinned bounce buffers on both ends).
    EAGER = "eager"
    #: Rendezvous request-to-send (envelope only).
    RNDV_RTS = "rndv_rts"
    #: Rendezvous clear-to-send (receiver pinned its buffer).
    RNDV_CTS = "rndv_cts"
    #: Rendezvous bulk data (lands directly in the pinned user buffer).
    RNDV_DATA = "rndv_data"
    #: The paper's new collective packet type for application-bypass
    #: reduction (and the broadcast extension).
    AB_COLLECTIVE = "ab_collective"
    #: NIC-resident collective (the future-work extension, refs. [10]/[11]):
    #: combined by the LANai control program, never DMA'd to intermediate
    #: hosts.
    NIC_COLLECTIVE = "nic_collective"
    #: GM-internal control traffic.
    CONTROL = "control"


_packet_seq = itertools.count(1)


class Packet:
    """One packet in flight between two NICs."""

    __slots__ = ("src", "dst", "ptype", "nbytes", "payload", "seq", "gseq",
                 "seg")

    def __init__(self, src: int, dst: int, ptype: PacketType, nbytes: int,
                 payload: Any, seg: int = -1):
        if nbytes < 0:
            raise ValueError("negative payload size")
        self.src = src
        self.dst = dst
        self.ptype = ptype
        self.nbytes = nbytes
        self.payload = payload
        self.seq = next(_packet_seq)
        #: Per-(src, dst) reliable-delivery sequence number; stamped by the
        #: sending NIC when the fabric is lossy (see gm.reliability).
        self.gseq: int = -1
        #: Segment tag for pipelined collectives (repro.pipeline): the
        #: AbHeader's segment index, mirrored at the GM layer so the NIC can
        #: count segment traffic.  -1 on whole-message packets.  Segment
        #: packets are ordinary AB_COLLECTIVE packets otherwise — they ride
        #: the same go-back-N reliability window and per-pair FIFO.
        self.seg: int = seg

    def wire_bytes(self, header_bytes: int) -> int:
        """Bytes occupying the wire: payload plus GM header/CRC."""
        return self.nbytes + header_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Packet #{self.seq} {self.src}->{self.dst} "
                f"{self.ptype.value} {self.nbytes}B>")
