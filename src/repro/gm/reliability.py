"""GM reliable delivery: go-back-N with ACKs and retransmit timers.

Myrinet links are nearly lossless, but GM still runs a reliability protocol
in the control program — which is what lets the layers above (and the
paper's application-bypass machinery, which leans on per-pair FIFO
delivery) treat the network as ordered and reliable.  This module models
that protocol so the test suite can inject faults
(``NetParams.drop_prob``) and verify that everything above survives:

* every data packet carries a per-``(src, dst)`` sequence number;
* the receiving NIC delivers strictly in order: duplicates and
  out-of-order arrivals (implying an earlier loss) are discarded and the
  last in-order sequence is re-ACKed;
* the sending NIC buffers unacknowledged packets and retransmits the whole
  window on timeout (go-back-N), which also covers lost ACKs.

The machinery is only engaged when ``drop_prob > 0``: on a loss-free
fabric the protocol is invisible except for ACK traffic, so the default
configuration bypasses it entirely (DESIGN.md §6.8).
"""

from __future__ import annotations

from collections import deque

from ..sim.events import PRIORITY_TIMER
from .packet import Packet, PacketType


class _Ack:
    """ACK payload: cumulative sequence acknowledgement."""

    __slots__ = ("acked_seq",)

    def __init__(self, acked_seq: int):
        self.acked_seq = acked_seq


class _PeerTx:
    """Sender-side state toward one destination."""

    __slots__ = ("next_seq", "unacked", "timer")

    def __init__(self) -> None:
        self.next_seq = 0
        #: (gseq, packet, last_sent_at)
        self.unacked: deque[list] = deque()
        self.timer = None


class ReliabilityStats:
    __slots__ = ("acks_sent", "acks_received", "retransmissions",
                 "duplicates_discarded", "gaps_discarded", "timer_fires",
                 "max_window")

    def __init__(self) -> None:
        self.acks_sent = 0
        self.acks_received = 0
        self.retransmissions = 0
        self.duplicates_discarded = 0
        self.gaps_discarded = 0
        self.timer_fires = 0
        #: High-water mark of the unacked (go-back-N) window, any peer.
        self.max_window = 0


class ReliableChannel:
    """Per-NIC reliable-delivery engine (active only on lossy fabrics)."""

    def __init__(self, nic, rto_us: float):
        self.nic = nic
        self.sim = nic.sim
        self.rto_us = rto_us
        self._tx: dict[int, _PeerTx] = {}
        self._rx_expected: dict[int, int] = {}
        #: Peers known crashed (repro.faults): sends toward them are still
        #: sequenced but never buffered, so no timer spins against a
        #: silent NIC.
        self._dead_peers: set[int] = set()
        self.stats = ReliabilityStats()

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def register_send(self, packet: Packet) -> None:
        """Stamp a sequence number and buffer the packet until ACKed."""
        peer = self._tx.setdefault(packet.dst, _PeerTx())
        packet.gseq = peer.next_seq
        peer.next_seq += 1
        if packet.dst in self._dead_peers:
            return  # sequenced for the wire, but no ACK will ever come
        peer.unacked.append([packet.gseq, packet, self.sim.now])
        if len(peer.unacked) > self.stats.max_window:
            self.stats.max_window = len(peer.unacked)
        if peer.timer is None:
            # TIMER class: an RTO due exactly when the ACK lands must see
            # the ACK applied first — otherwise the go-back-N window
            # retransmits or not depending on the same-instant tiebreak
            # (a schedule race the perturbation harness flagged).
            peer.timer = self.sim.schedule(self.rto_us, self._check_timer,
                                           packet.dst,
                                           priority=PRIORITY_TIMER)

    def handle_ack(self, src: int, acked_seq: int) -> None:
        self.stats.acks_received += 1
        peer = self._tx.get(src)
        if peer is None:
            return
        while peer.unacked and peer.unacked[0][0] <= acked_seq:
            peer.unacked.popleft()

    def _check_timer(self, dst: int) -> None:
        peer = self._tx.get(dst)
        if peer is None:
            return
        peer.timer = None
        if not peer.unacked:
            return
        oldest_sent = peer.unacked[0][2]
        due = oldest_sent + self.rto_us
        if self.sim.now + 1e-9 < due:
            peer.timer = self.sim.at(due, self._check_timer, dst,
                                     priority=PRIORITY_TIMER)
            return
        # Timeout: go-back-N — retransmit the whole outstanding window.
        self.stats.timer_fires += 1
        for entry in peer.unacked:
            entry[2] = self.sim.now
            self.stats.retransmissions += 1
            self.nic.retransmit(entry[1])
        peer.timer = self.sim.schedule(self.rto_us, self._check_timer, dst,
                                       priority=PRIORITY_TIMER)

    # ------------------------------------------------------------------
    # fault-injection entry points (repro.faults rank_crash)
    # ------------------------------------------------------------------
    def mark_peer_dead(self, dst: int) -> None:
        """Stop retransmitting toward a crashed peer: cancel its timer and
        discard the outstanding window (those packets are undeliverable)."""
        self._dead_peers.add(dst)
        peer = self._tx.get(dst)
        if peer is None:
            return
        if peer.timer is not None:
            self.sim.cancel(peer.timer)
            peer.timer = None
        peer.unacked.clear()

    def shutdown(self) -> None:
        """This NIC crashed: cancel every timer, drop every window."""
        for peer in self._tx.values():
            if peer.timer is not None:
                self.sim.cancel(peer.timer)
                peer.timer = None
            peer.unacked.clear()

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def accept(self, packet: Packet) -> bool:
        """In-order filter; returns True if the packet should be delivered.

        Always (re-)ACKs the highest in-order sequence so the sender's
        window drains even when packets or previous ACKs were lost.
        """
        if packet.ptype is PacketType.CONTROL:
            ack: _Ack = packet.payload
            self.handle_ack(packet.src, ack.acked_seq)
            return False
        expected = self._rx_expected.get(packet.src, 0)
        gseq = packet.gseq
        if gseq == expected:
            self._rx_expected[packet.src] = expected + 1
            self._send_ack(packet.src, gseq)
            return True
        if gseq < expected:
            self.stats.duplicates_discarded += 1
        else:
            self.stats.gaps_discarded += 1
        self._send_ack(packet.src, expected - 1)
        return False

    def _send_ack(self, dst: int, acked_seq: int) -> None:
        if acked_seq < 0:
            return
        self.stats.acks_sent += 1
        ack = Packet(self.nic.node_id, dst, PacketType.CONTROL, 0,
                     _Ack(acked_seq))
        ack.gseq = -1
        self.nic.transmit_control(ack)
