"""MPICH-over-GM message passing layer.

Progress engine, matching queues, point-to-point (eager + rendezvous) and
binomial-tree collectives — the substrate the paper's application-bypass
reduction (:mod:`repro.core`) plugs into.
"""

from .communicator import Communicator, world_communicator
from .datatypes import BYTE, DOUBLE, FLOAT, INT, LONG, Datatype, from_array
from .message import (ANY_SOURCE, ANY_TAG, TAG_BARRIER, TAG_BCAST,
                      TAG_NOTIFY, TAG_REDUCE, AbHeader, Envelope,
                      TransferKind)
from .operations import (BAND, BOR, BUILTIN_OPS, BXOR, MAX, MIN, PROD, SUM,
                         Op, user_op)
from .progress import ProgressEngine
from .rank import MpiBuild, MpiRank
from .requests import Request, Status

__all__ = [
    "MpiRank", "MpiBuild", "ProgressEngine",
    "Communicator", "world_communicator",
    "Request", "Status",
    "Envelope", "AbHeader", "TransferKind",
    "ANY_SOURCE", "ANY_TAG",
    "TAG_REDUCE", "TAG_BCAST", "TAG_BARRIER", "TAG_NOTIFY",
    "Op", "SUM", "PROD", "MIN", "MAX", "BAND", "BOR", "BXOR",
    "BUILTIN_OPS", "user_op",
    "Datatype", "DOUBLE", "FLOAT", "INT", "LONG", "BYTE", "from_array",
]
