"""Collective algorithms over the binomial tree and dissemination patterns."""

from . import tree
from .allreduce import allreduce_reduce_bcast
from .barrier import barrier_dissemination
from .bcast import bcast_binomial
from .gather import gather_linear
from .reduce import reduce_nab
from .scatter import allgather_ring, scatter

__all__ = [
    "tree",
    "reduce_nab",
    "bcast_binomial",
    "barrier_dissemination",
    "allreduce_reduce_bcast",
    "gather_linear",
    "scatter",
    "allgather_ring",
]
