"""All-reduce as reduce-to-zero plus broadcast (the MPICH 1.2.x approach
for general communicator sizes)."""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..communicator import Communicator
from ..datatypes import from_array
from ..operations import Op


def allreduce_reduce_bcast(rank, sendbuf: np.ndarray, op: Op,
                           comm: Communicator) -> Generator:
    """Reduce to comm rank 0, then broadcast; every rank returns the total."""
    result = yield from rank.reduce(sendbuf, op=op, root=0, comm=comm)
    me = comm.rank_of_world(rank.rank)
    if me == 0:
        out = yield from rank.bcast(result, root=0, comm=comm)
    else:
        out = yield from rank.bcast(None, root=0, comm=comm,
                                    count=sendbuf.size,
                                    dtype=from_array(sendbuf))
        out = out.reshape(sendbuf.shape)
    return out
