"""All-reduce as reduce-to-zero plus broadcast (the MPICH 1.2.x approach
for general communicator sizes).

On the AB build with the pipeline subsystem armed (repro.pipeline),
eligible messages take the Träff-style pipelined path instead: the root
broadcasts each segment as soon as its fold completes, overlapping the
reduce of later segments with the broadcast of earlier ones.  On the
default build the plain composition below already pipelines, because both
``reduce`` and ``bcast`` segment internally when armed.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..communicator import Communicator
from ..datatypes import from_array
from ..operations import Op


def allreduce_reduce_bcast(rank, sendbuf: np.ndarray, op: Op,
                           comm: Communicator) -> Generator:
    """Reduce to comm rank 0, then broadcast; every rank returns the total."""
    ab = getattr(rank, "ab", None)
    pipeline = getattr(ab, "pipeline", None) if ab is not None else None
    if pipeline is not None and comm.size > 1:
        segments = pipeline.plan_for(sendbuf)
        if segments is not None:
            result = yield from pipeline.allreduce(sendbuf, op, comm,
                                                   segments)
            return result

    result = yield from rank.reduce(sendbuf, op=op, root=0, comm=comm)
    me = comm.rank_of_world(rank.rank)
    if me == 0:
        out = yield from rank.bcast(result, root=0, comm=comm)
    else:
        out = yield from rank.bcast(None, root=0, comm=comm,
                                    count=sendbuf.size,
                                    dtype=from_array(sendbuf))
        out = out.reshape(sendbuf.shape)
    return out
