"""Dissemination barrier.

``ceil(log2 n)`` rounds; in round *k* each rank sends a zero-byte token to
``(me + 2^k) mod n`` and waits for one from ``(me - 2^k) mod n``.  All
distances are distinct modulo ``n``, and per-pair FIFO delivery keeps
back-to-back barriers correctly paired without per-round tags.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..communicator import Communicator
from ..message import TAG_BARRIER

_TOKEN = np.empty(0, dtype=np.uint8)


def barrier_dissemination(rank, comm: Communicator,
                          tag: int = TAG_BARRIER) -> Generator:
    """Block until every rank in ``comm`` has entered the barrier."""
    size = comm.size
    if size == 1:
        return
    me = comm.rank_of_world(rank.rank)
    rounds = (size - 1).bit_length()
    for k in range(rounds):
        dist = 1 << k
        dst = (me + dist) % size
        src = (me - dist) % size
        recv_req = yield from rank.irecv(None, src, tag, comm,
                                         _context=comm.coll_context)
        send_req = yield from rank.isend(_TOKEN, dst, tag, comm,
                                         _context=comm.coll_context)
        yield from rank.progress.wait(send_req)
        yield from rank.progress.wait(recv_req)
