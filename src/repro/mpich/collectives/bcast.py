"""Tree broadcast (binomial is the default MPICH algorithm).

Each non-root rank receives from its tree parent, then forwards to its
children in *reverse* combine order (for the binomial shape that is
decreasing-mask order: deepest subtree first, which maximizes pipelining
down the tree).  The tree comes from the rank's configured
:class:`repro.topo.TreeShape`; the default binomial shape reproduces the
original mask-walk algorithm bit for bit.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ...errors import MpiError
from ...sim.cpu import Ledger
from ...sim.process import Busy
from ..communicator import Communicator
from ..datatypes import DOUBLE, Datatype
from ..message import TAG_BCAST
from . import tree


def bcast_binomial(rank, data: Optional[np.ndarray], root: int,
                   comm: Communicator, *, count: Optional[int] = None,
                   dtype: Optional[Datatype] = None,
                   tag: int = TAG_BCAST) -> Generator:
    """Broadcast ``data`` from ``root``; every rank returns the array.

    Non-root ranks either pass a pre-sized ``data`` buffer or give
    ``count`` (and optionally ``dtype``, default double) for allocation.
    """
    size = comm.size
    me = comm.rank_of_world(rank.rank)
    if not (0 <= root < size):
        raise ValueError(f"root {root} outside communicator of size {size}")
    rel = tree.relative_rank(me, root, size)

    costs = rank.costs
    ledger = Ledger()
    ledger.charge(costs.call_overhead_us, "mpi")
    ledger.charge(costs.tree_setup_us, "mpi")

    if rel == 0:
        if data is None:
            raise MpiError("bcast root must supply data")
        buf = np.array(data, copy=True)
    else:
        if data is not None:
            buf = np.asarray(data)
        elif count is not None:
            buf = (dtype or DOUBLE).buffer(count)
        else:
            raise MpiError("non-root bcast needs a buffer or a count")
    yield Busy.from_ledger(ledger)

    shape = rank.tree_shape_for(buf.nbytes)
    pparams = rank.node.pipeline_params_for(buf.nbytes)
    if pparams is not None and pparams.armed:
        from ...pipeline.segmenter import plan_segments
        segments = plan_segments(pparams, buf)
        if segments is not None:
            # Segmented pipelined bcast (repro.pipeline): receive, then
            # forward, one segment at a time — a node's children start
            # receiving segment k while the node still waits for k+1.
            # The plan depends only on (config, count, itemsize), so every
            # rank segments identically; a non-contiguous user buffer is
            # staged through a contiguous copy.
            contiguous = buf.flags.c_contiguous
            flat = (buf if contiguous else np.ascontiguousarray(buf)
                    ).reshape(-1)
            kid_ranks = [tree.absolute_rank(c, root, size)
                         for c in reversed(shape.children(rel, size))]
            parent = (tree.absolute_rank(shape.parent(rel, size), root,
                                         size) if rel != 0 else None)
            for s in segments:
                chunk = flat[s.offset:s.offset + s.count]
                if parent is not None:
                    yield from rank.recv(chunk, parent, tag, comm,
                                         _context=comm.coll_context)
                for child in kid_ranks:
                    yield from rank.send(chunk, child, tag, comm,
                                         _context=comm.coll_context)
            if not contiguous:
                buf[...] = flat.reshape(buf.shape)
            return buf

    # Receive phase: wait for the parent's copy.
    if rel != 0:
        parent = tree.absolute_rank(shape.parent(rel, size), root, size)
        yield from rank.recv(buf, parent, tag, comm,
                             _context=comm.coll_context)

    # Forward phase: reverse combine order (deepest subtree first).
    for child_rel in reversed(shape.children(rel, size)):
        child = tree.absolute_rank(child_rel, root, size)
        yield from rank.send(buf, child, tag, comm,
                             _context=comm.coll_context)
    return buf
