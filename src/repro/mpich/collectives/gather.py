"""Linear gather (root receives one message per rank).

Sufficient for result collection in the benchmarks; not on any timing-
critical path of the paper's evaluation.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ..communicator import Communicator
from ..message import TAG_GATHER


def gather_linear(rank, senddata: np.ndarray, root: int,
                  comm: Communicator, tag: int = TAG_GATHER) -> Generator:
    """Root returns ``[array from rank 0, array from rank 1, ...]``;
    everyone else returns None."""
    size = comm.size
    me = comm.rank_of_world(rank.rank)
    if not (0 <= root < size):
        raise ValueError(f"root {root} outside communicator of size {size}")

    if me != root:
        yield from rank.send(senddata, root, tag, comm,
                             _context=comm.coll_context)
        return None

    results: list[Optional[np.ndarray]] = [None] * size
    results[root] = np.array(senddata, copy=True)
    buf = np.empty_like(senddata)
    for src in range(size):
        if src == root:
            continue
        yield from rank.recv(buf, src, tag, comm,
                             _context=comm.coll_context)
        results[src] = np.array(buf, copy=True)
    return results
