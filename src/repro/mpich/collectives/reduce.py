"""Default (non-application-bypass) tree reduction.

This is the paper's baseline: every rank enters ``MPI_Reduce``; internal
nodes perform a *blocking* receive from each child in combine order,
combining as results arrive, then send the accumulated partial result to
their parent.  Any time spent waiting for a late child is spent spinning
the progress engine — CPU time the application cannot use (paper Fig. 2a).

The tree comes from the rank's configured :class:`repro.topo.TreeShape`
(``MpiParams.tree_shape``); the default binomial shape reproduces the
original MPICH algorithm bit for bit.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ...sim.cpu import Ledger
from ...sim.process import Busy
from ..communicator import Communicator
from ..message import TAG_REDUCE
from ..operations import Op
from . import tree


def reduce_nab(rank, sendbuf: np.ndarray, op: Op, root: int,
               comm: Communicator, recvbuf: Optional[np.ndarray] = None,
               tag: int = TAG_REDUCE) -> Generator:
    """Blocking tree reduction; returns the result array at the root."""
    size = comm.size
    me = comm.rank_of_world(rank.rank)
    if not (0 <= root < size):
        raise ValueError(f"root {root} outside communicator of size {size}")

    costs = rank.costs
    ledger = Ledger()
    ledger.charge(costs.call_overhead_us, "mpi")

    if size == 1:
        result = _finish_root(sendbuf, recvbuf)
        yield Busy.from_ledger(ledger)
        return result

    ledger.charge(costs.tree_setup_us, "mpi")
    nbytes = np.asarray(sendbuf).nbytes
    shape = rank.tree_shape_for(nbytes)
    rel = tree.relative_rank(me, root, size)
    kids = shape.children(rel, size)

    pparams = rank.node.pipeline_params_for(nbytes)
    if pparams is not None and pparams.armed:
        from ...pipeline.segmenter import plan_segments
        segments = plan_segments(pparams, np.asarray(sendbuf))
        if segments is not None:
            result = yield from _reduce_nab_segmented(
                rank, np.asarray(sendbuf), op, root, comm, recvbuf, tag,
                segments, ledger, shape, rel, kids)
            return result

    if not kids:
        # Leaf: nothing to combine — send the application buffer directly.
        yield Busy.from_ledger(ledger)
        parent = tree.absolute_rank(shape.parent(rel, size), root, size)
        yield from rank.send(np.asarray(sendbuf), parent, tag, comm,
                             _context=comm.coll_context)
        return None

    # Accumulate into a private buffer (MPICH copies the send buffer so the
    # combine can run in place).
    acc = np.array(sendbuf, copy=True)
    ledger.charge(costs.copy_us(acc.nbytes), "copy")
    yield Busy.from_ledger(ledger)

    tmp = np.empty_like(acc)
    for child_rel in kids:
        child = tree.absolute_rank(child_rel, root, size)
        yield from rank.recv(tmp, child, tag, comm,
                             _context=comm.coll_context)
        op_ledger = Ledger()
        op_ledger.charge(costs.op_us(acc.size), "op")
        op.apply(acc, tmp)
        yield Busy.from_ledger(op_ledger)

    if rel != 0:
        parent = tree.absolute_rank(shape.parent(rel, size), root, size)
        yield from rank.send(acc, parent, tag, comm,
                             _context=comm.coll_context)
        return None
    return _finish_root(acc, recvbuf)


def _reduce_nab_segmented(rank, sendbuf: np.ndarray, op: Op, root: int,
                          comm: Communicator,
                          recvbuf: Optional[np.ndarray], tag: int,
                          segments, ledger: Ledger, shape, rel: int,
                          kids) -> Generator:
    """Segmented store-and-forward tree reduce (repro.pipeline, NAB build).

    Internal nodes receive, fold, and forward segment *k* before touching
    segment *k+1*, so the message streams through the tree instead of
    being staged whole at every level.  Per element the fold order (own
    contribution, then children in combine order) is identical to the
    unsegmented algorithm, so results match bit for bit."""
    size = comm.size
    costs = rank.costs

    if not kids:
        yield Busy.from_ledger(ledger)
        flat = np.ascontiguousarray(sendbuf).reshape(-1)
        parent = tree.absolute_rank(shape.parent(rel, size), root, size)
        for s in segments:
            yield from rank.send(flat[s.offset:s.offset + s.count], parent,
                                 tag, comm, _context=comm.coll_context)
        return None

    acc = np.ascontiguousarray(sendbuf).reshape(-1).copy()
    ledger.charge(costs.copy_us(acc.nbytes), "copy")
    yield Busy.from_ledger(ledger)

    tmp = np.empty(max(s.count for s in segments), dtype=acc.dtype)
    parent = (tree.absolute_rank(shape.parent(rel, size), root, size)
              if rel != 0 else None)
    for s in segments:
        chunk = acc[s.offset:s.offset + s.count]
        for child_rel in kids:
            child = tree.absolute_rank(child_rel, root, size)
            yield from rank.recv(tmp[:s.count], child, tag, comm,
                                 _context=comm.coll_context)
            op_ledger = Ledger()
            op_ledger.charge(costs.op_us(s.count), "op")
            op.apply(chunk, tmp[:s.count])
            yield Busy.from_ledger(op_ledger)
        if parent is not None:
            yield from rank.send(chunk, parent, tag, comm,
                                 _context=comm.coll_context)
    if parent is not None:
        return None
    return _finish_root(acc.reshape(sendbuf.shape), recvbuf)


def _finish_root(acc: np.ndarray, recvbuf: Optional[np.ndarray]) -> np.ndarray:
    if recvbuf is not None:
        recvbuf[...] = acc.reshape(recvbuf.shape)
        return recvbuf
    return np.array(acc, copy=True)
