"""Default (non-application-bypass) tree reduction.

This is the paper's baseline: every rank enters ``MPI_Reduce``; internal
nodes perform a *blocking* receive from each child in combine order,
combining as results arrive, then send the accumulated partial result to
their parent.  Any time spent waiting for a late child is spent spinning
the progress engine — CPU time the application cannot use (paper Fig. 2a).

The tree comes from the rank's configured :class:`repro.topo.TreeShape`
(``MpiParams.tree_shape``); the default binomial shape reproduces the
original MPICH algorithm bit for bit.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ...sim.cpu import Ledger
from ...sim.process import Busy
from ..communicator import Communicator
from ..message import TAG_REDUCE
from ..operations import Op
from . import tree


def reduce_nab(rank, sendbuf: np.ndarray, op: Op, root: int,
               comm: Communicator, recvbuf: Optional[np.ndarray] = None,
               tag: int = TAG_REDUCE) -> Generator:
    """Blocking tree reduction; returns the result array at the root."""
    size = comm.size
    me = comm.rank_of_world(rank.rank)
    if not (0 <= root < size):
        raise ValueError(f"root {root} outside communicator of size {size}")

    costs = rank.costs
    ledger = Ledger()
    ledger.charge(costs.call_overhead_us, "mpi")

    if size == 1:
        result = _finish_root(sendbuf, recvbuf)
        yield Busy.from_ledger(ledger)
        return result

    ledger.charge(costs.tree_setup_us, "mpi")
    shape = rank.tree_shape
    rel = tree.relative_rank(me, root, size)
    kids = shape.children(rel, size)

    if not kids:
        # Leaf: nothing to combine — send the application buffer directly.
        yield Busy.from_ledger(ledger)
        parent = tree.absolute_rank(shape.parent(rel, size), root, size)
        yield from rank.send(np.asarray(sendbuf), parent, tag, comm,
                             _context=comm.coll_context)
        return None

    # Accumulate into a private buffer (MPICH copies the send buffer so the
    # combine can run in place).
    acc = np.array(sendbuf, copy=True)
    ledger.charge(costs.copy_us(acc.nbytes), "copy")
    yield Busy.from_ledger(ledger)

    tmp = np.empty_like(acc)
    for child_rel in kids:
        child = tree.absolute_rank(child_rel, root, size)
        yield from rank.recv(tmp, child, tag, comm,
                             _context=comm.coll_context)
        op_ledger = Ledger()
        op_ledger.charge(costs.op_us(acc.size), "op")
        op.apply(acc, tmp)
        yield Busy.from_ledger(op_ledger)

    if rel != 0:
        parent = tree.absolute_rank(shape.parent(rel, size), root, size)
        yield from rank.send(acc, parent, tag, comm,
                             _context=comm.coll_context)
        return None
    return _finish_root(acc, recvbuf)


def _finish_root(acc: np.ndarray, recvbuf: Optional[np.ndarray]) -> np.ndarray:
    if recvbuf is not None:
        recvbuf[...] = acc.reshape(recvbuf.shape)
        return recvbuf
    return np.array(acc, copy=True)
