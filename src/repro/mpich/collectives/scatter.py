"""Linear scatter and ring allgather.

Not on the paper's critical path but part of a complete MPICH-class
substrate; the application kernels use them for setup/exchange phases.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ...errors import MpiError
from ..communicator import Communicator

TAG_SCATTER = 1_000_006
TAG_ALLGATHER = 1_000_007


def scatter(rank, senddata: Optional[np.ndarray], recvbuf: np.ndarray,
            root: int, comm: Communicator,
            tag: int = TAG_SCATTER) -> Generator:
    """Scatter with an explicit receive buffer on every non-root rank."""
    size = comm.size
    me = comm.rank_of_world(rank.rank)
    if not (0 <= root < size):
        raise MpiError(f"root {root} outside communicator of size {size}")
    if me == root:
        if senddata is None:
            raise MpiError("scatter root must supply data")
        senddata = np.asarray(senddata)
        if senddata.shape[0] != size:
            raise MpiError(
                f"scatter data first axis {senddata.shape[0]} != size {size}")
        for dst in range(size):
            if dst == root:
                continue
            yield from rank.send(senddata[dst], dst, tag, comm,
                                 _context=comm.coll_context)
        recvbuf[...] = senddata[root]
        return recvbuf
    yield from rank.recv(recvbuf, root, tag, comm,
                         _context=comm.coll_context)
    return recvbuf


def allgather_ring(rank, senddata: np.ndarray, comm: Communicator,
                   tag: int = TAG_ALLGATHER) -> Generator:
    """Ring allgather: size-1 steps, each forwarding the slice received in
    the previous step; returns an array indexed by comm rank."""
    size = comm.size
    me = comm.rank_of_world(rank.rank)
    senddata = np.asarray(senddata)
    out = np.empty((size,) + senddata.shape, dtype=senddata.dtype)
    out[me] = senddata
    if size == 1:
        return out
    right = (me + 1) % size
    left = (me - 1) % size
    current = me
    for _ in range(size - 1):
        incoming = (current - 1) % size
        recv_req = yield from rank.irecv(out[incoming], left, tag, comm,
                                         _context=comm.coll_context)
        send_req = yield from rank.isend(out[current], right, tag, comm,
                                         _context=comm.coll_context)
        yield from rank.progress.wait(send_req)
        yield from rank.progress.wait(recv_req)
        current = incoming
    return out
