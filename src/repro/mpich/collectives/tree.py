"""Binomial-tree rank arithmetic (paper Fig. 1).

MPICH computes everything on *relative* ranks ``rel = (rank - root) % size``
so that any rank can be the root of the same tree shape.  A node's parent
clears the lowest set bit of its relative rank; its children set each bit
above its lowest set bit (bounded by ``size``), in increasing-mask order —
that order is also the order the default reduction receives and combines
child contributions.
"""

from __future__ import annotations


def relative_rank(rank: int, root: int, size: int) -> int:
    """Rank relative to ``root`` (root itself maps to 0)."""
    _check(rank, size)
    _check(root, size)
    return (rank - root) % size


def absolute_rank(rel: int, root: int, size: int) -> int:
    """Inverse of :func:`relative_rank`."""
    _check(rel, size)
    _check(root, size)
    return (rel + root) % size


def parent(rel: int) -> int:
    """Parent of a non-root node: clear the lowest set bit."""
    if rel == 0:
        raise ValueError("root has no parent")
    return rel & (rel - 1)


def children(rel: int, size: int) -> list[int]:
    """Children of ``rel`` in increasing-mask (combine) order."""
    _check(rel, size)
    result = []
    mask = 1
    while mask < size:
        if rel & mask:
            break
        child = rel | mask
        if child < size:
            result.append(child)
        mask <<= 1
    return result


def is_leaf(rel: int, size: int) -> bool:
    """A leaf has no children in a tree of ``size`` nodes."""
    return not children(rel, size)


def depth(rel: int) -> int:
    """Hops to the root: the number of set bits (each hop clears one)."""
    return bin(rel).count("1")


def max_depth(size: int) -> int:
    """Deepest level of the binomial tree over ``size`` nodes."""
    return max(depth(r) for r in range(size))


def deepest_relative_rank(size: int) -> int:
    """The relative rank farthest from the root (paper's "last node").

    Ties broken toward the largest rank, which is also the node whose
    contribution enters the root last under the mask-order combine.
    """
    best = 0
    best_depth = 0
    for rel in range(size):
        d = depth(rel)
        if d >= best_depth:
            best = rel
            best_depth = d
    return best


def subtree_size(rel: int, size: int) -> int:
    """Number of nodes (including ``rel``) in ``rel``'s subtree."""
    _check(rel, size)
    total = 1
    for child in children(rel, size):
        total += subtree_size(child, size)
    return total


def tree_edges(size: int) -> list[tuple[int, int]]:
    """All (parent, child) relative-rank pairs — used by tests/diagrams."""
    return [(parent(rel), rel) for rel in range(1, size)]


def _check(value: int, size: int) -> None:
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    if not (0 <= value < size):
        raise ValueError(f"rank {value} outside 0..{size - 1}")
