"""Communicators: rank translation and context isolation.

Each communicator owns two context ids, MPICH-style: one for point-to-point
traffic and one for collectives, so user messages can never match collective
internals.  Sub-communicators (``dup`` / ``split``) let tests run concurrent
reductions over disjoint or identical rank sets without cross-talk.
"""

from __future__ import annotations

import itertools

from ..errors import MpiError

_context_ids = itertools.count(100, step=2)


def _fresh_context() -> int:
    return next(_context_ids)


class Communicator:
    """A group of world ranks with private matching contexts."""

    __slots__ = ("world_ranks", "_rank_of", "context_id", "name", "_derived")

    def __init__(self, world_ranks: tuple[int, ...], name: str = "comm"):
        if len(set(world_ranks)) != len(world_ranks):
            raise MpiError("duplicate ranks in communicator group")
        self.world_ranks = tuple(world_ranks)
        self._rank_of = {w: i for i, w in enumerate(world_ranks)}
        self.context_id = _fresh_context()
        self.name = name
        # Cache of derived communicators.  Communicator derivation is a
        # collective operation: every rank calling dup()/split() with equal
        # arguments must end up with the *same* context ids, which in this
        # in-process simulation means the same object.
        self._derived: dict = {}

    # -- structure -------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.world_ranks)

    @property
    def pt2pt_context(self) -> int:
        return self.context_id

    @property
    def coll_context(self) -> int:
        return self.context_id + 1

    def rank_of_world(self, world_rank: int) -> int:
        """Translate a world rank into this communicator's rank."""
        try:
            return self._rank_of[world_rank]
        except KeyError:
            raise MpiError(f"world rank {world_rank} not in {self.name}")

    def world_rank(self, comm_rank: int) -> int:
        """Translate a communicator rank into a world rank."""
        if not (0 <= comm_rank < self.size):
            raise MpiError(f"rank {comm_rank} outside {self.name} "
                           f"(size {self.size})")
        return self.world_ranks[comm_rank]

    def contains_world(self, world_rank: int) -> bool:
        return world_rank in self._rank_of

    # -- derivation --------------------------------------------------------
    # Derivations are collective: the per-parent cache guarantees that all
    # ranks calling with equal arguments receive identical context ids.

    def dup(self, name: str = "") -> "Communicator":
        """Same group, fresh contexts (isolates concurrent collectives).

        Calls with the same ``name`` (from any rank) return the same
        communicator; use distinct names for independent duplicates.
        """
        key = ("dup", name)
        if key not in self._derived:
            self._derived[key] = Communicator(self.world_ranks,
                                              name or f"{self.name}.dup")
        return self._derived[key]

    def split(self, colors: dict[int, int], name: str = "") -> dict[int, "Communicator"]:
        """Partition by color; returns ``color -> sub-communicator``.

        ``colors`` maps every world rank in this communicator to a color.
        Rank order within each sub-communicator follows world-rank order.
        Every rank must pass the same mapping (it is a collective call).
        """
        missing = [w for w in self.world_ranks if w not in colors]
        if missing:
            raise MpiError(f"split colors missing ranks {missing}")
        key = ("split", tuple(sorted(colors.items())), name)
        if key not in self._derived:
            groups: dict[int, list[int]] = {}
            for w in self.world_ranks:
                groups.setdefault(colors[w], []).append(w)
            self._derived[key] = {
                color: Communicator(tuple(ws),
                                    name or f"{self.name}.split{color}")
                for color, ws in groups.items()
            }
        return self._derived[key]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator {self.name} size={self.size} ctx={self.context_id}>"


def world_communicator(size: int) -> Communicator:
    """``MPI_COMM_WORLD`` over ranks ``0..size-1``."""
    if size < 1:
        raise MpiError("world size must be >= 1")
    return Communicator(tuple(range(size)), name="world")
