"""MPI datatypes (the small subset the reduction benchmarks exercise).

The paper reports message sizes in *double-word elements* — IEEE-754 doubles.
We keep a handful of basic types so the pt2pt layer and the property tests
can exercise more than one element size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Datatype:
    """An MPI basic datatype bound to its numpy representation."""

    name: str
    nbytes: int
    np_dtype: np.dtype

    def buffer(self, count: int) -> np.ndarray:
        """Allocate an uninitialized buffer of ``count`` elements."""
        return np.empty(count, dtype=self.np_dtype)

    def zeros(self, count: int) -> np.ndarray:
        return np.zeros(count, dtype=self.np_dtype)


DOUBLE = Datatype("double", 8, np.dtype(np.float64))
FLOAT = Datatype("float", 4, np.dtype(np.float32))
INT = Datatype("int", 4, np.dtype(np.int32))
LONG = Datatype("long", 8, np.dtype(np.int64))
BYTE = Datatype("byte", 1, np.dtype(np.uint8))

_BY_DTYPE = {t.np_dtype: t for t in (DOUBLE, FLOAT, INT, LONG, BYTE)}


def from_array(array: np.ndarray) -> Datatype:
    """Infer the MPI datatype of a numpy array."""
    try:
        return _BY_DTYPE[array.dtype]
    except KeyError:
        raise TypeError(f"unsupported dtype for MPI transfer: {array.dtype}")
