"""MPICH message matching: the posted-receive and unexpected queues.

Semantics follow the paper's Sec. III description of MPICH over GM:

* an arriving message is first matched against *posted* receives; on a match
  the payload is copied straight into the application buffer (**one** copy);
* otherwise MPICH allocates a temporary buffer, copies the message in, and
  appends it to the **unexpected queue**; when a matching receive is later
  posted the payload is copied again into the user buffer (**two** copies).

Copy counts and copied bytes are tracked explicitly because the paper's
50% / 100% copy-reduction claims for the application-bypass queues are
assertions our tests verify rather than take on faith.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import TruncationError
from .message import ANY_SOURCE, ANY_TAG, Envelope
from .requests import Request


class PostedRecv:
    """One posted (pending) receive."""

    __slots__ = ("source", "tag", "context_id", "buffer", "request",
                 "posted_at")

    def __init__(self, source: int, tag: int, context_id: int,
                 buffer: Optional[np.ndarray], request: Request,
                 posted_at: float):
        self.source = source
        self.tag = tag
        self.context_id = context_id
        self.buffer = buffer
        self.request = request
        self.posted_at = posted_at

    def accepts(self, env: Envelope) -> bool:
        if self.context_id != env.context_id:
            return False
        if self.source != ANY_SOURCE and self.source != env.src:
            return False
        if self.tag != ANY_TAG and self.tag != env.tag:
            return False
        return True


class UnexpectedEntry:
    """One buffered early arrival (data already copied once)."""

    __slots__ = ("envelope", "arrived_at")

    def __init__(self, envelope: Envelope, arrived_at: float):
        self.envelope = envelope
        self.arrived_at = arrived_at


class MatchStats:
    """Counters for queue activity and copy accounting."""

    __slots__ = ("expected_msgs", "unexpected_msgs", "copies", "copied_bytes",
                 "max_unexpected_len", "max_posted_len")

    def __init__(self) -> None:
        self.expected_msgs = 0
        self.unexpected_msgs = 0
        self.copies = 0
        self.copied_bytes = 0
        self.max_unexpected_len = 0
        self.max_posted_len = 0

    def count_copy(self, nbytes: int) -> None:
        self.copies += 1
        self.copied_bytes += nbytes


class MatchingEngine:
    """Per-rank posted/unexpected queues with MPICH matching order."""

    def __init__(self) -> None:
        self.posted: list[PostedRecv] = []
        self.unexpected: list[UnexpectedEntry] = []
        self.stats = MatchStats()

    # -- arrival side ---------------------------------------------------
    def find_posted(self, env: Envelope) -> Optional[PostedRecv]:
        """Oldest posted receive matching ``env`` (removed on match)."""
        for i, posted in enumerate(self.posted):
            if posted.accepts(env):
                del self.posted[i]
                return posted
        return None

    def store_unexpected(self, env: Envelope, now: float) -> UnexpectedEntry:
        entry = UnexpectedEntry(env, now)
        self.unexpected.append(entry)
        self.stats.unexpected_msgs += 1
        self.stats.max_unexpected_len = max(self.stats.max_unexpected_len,
                                            len(self.unexpected))
        return entry

    # -- posting side ----------------------------------------------------
    def take_unexpected(self, source: int, tag: int,
                        context_id: int) -> Optional[UnexpectedEntry]:
        """Oldest unexpected message matching the receive criteria."""
        for i, entry in enumerate(self.unexpected):
            if entry.envelope.matches(source, tag, context_id):
                del self.unexpected[i]
                return entry
        return None

    def add_posted(self, posted: PostedRecv) -> None:
        self.posted.append(posted)
        self.stats.max_posted_len = max(self.stats.max_posted_len,
                                        len(self.posted))

    def remove_posted(self, request: Request) -> bool:
        """Withdraw a posted receive by its request (for cancel)."""
        for i, posted in enumerate(self.posted):
            if posted.request is request:
                del self.posted[i]
                return True
        return False

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def copy_payload(dst: np.ndarray, data: np.ndarray, nbytes: int) -> None:
        """Copy ``data`` into ``dst`` (flat byte-compatible views required)."""
        if data.nbytes > dst.nbytes:
            raise TruncationError(
                f"message of {data.nbytes} B overflows {dst.nbytes} B buffer")
        flat = dst.reshape(-1)
        flat[: data.size] = data.reshape(-1)
