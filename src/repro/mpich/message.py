"""Message envelopes.

An :class:`Envelope` is the MPI-layer view of one message: the matching
triple ``(source, tag, context_id)``, the transfer kind (eager / rendezvous
phases), the payload, and — for application-bypass traffic — the
:class:`AbHeader` the paper's collective packet type carries so that the
receiving progress engine can (a) detect AB packets, (b) route root-bound
packets to the default synchronous path, and (c) sanity-check descriptor
matching against the reduction *instance*.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Wildcards (match any source / any tag).
ANY_SOURCE = -1
ANY_TAG = -1

#: Reserved tags used by the collective algorithms (kept far from user tags).
TAG_REDUCE = 1_000_001
TAG_BCAST = 1_000_002
TAG_BARRIER = 1_000_003
TAG_GATHER = 1_000_004
TAG_NOTIFY = 1_000_005


class TransferKind(enum.Enum):
    EAGER = "eager"
    RNDV_RTS = "rts"
    RNDV_CTS = "cts"
    RNDV_DATA = "rdata"


@dataclass(frozen=True)
class AbHeader:
    """Application-bypass metadata carried by the collective packet type."""

    #: Absolute rank of the reduction's root.
    root: int
    #: Per-communicator AB-collective instance number.  All ranks call
    #: collectives in the same order, so instance numbers agree globally.
    instance: int
    #: Which collective this belongs to ("reduce" or "bcast" extension).
    kind: str = "reduce"
    #: Segment index within a pipelined collective (repro.pipeline); -1
    #: marks a whole-message packet, keeping the legacy path untouched.
    #: Segmented packets are matched *exactly* by (instance, seg) instead
    #: of the FIFO sender rule, because an in-flight window may hold
    #: descriptors for several segments of the same instance at once.
    seg: int = -1
    #: Total segments of the instance this packet belongs to (1 = whole).
    nseg: int = 1


_seq = itertools.count(1)


class Envelope:
    """One MPI message in flight (or queued)."""

    __slots__ = ("src", "dst", "tag", "context_id", "kind", "data", "nbytes",
                 "ab", "seq", "rndv_seq", "rndv_bytes")

    def __init__(self, src: int, dst: int, tag: int, context_id: int,
                 kind: TransferKind, data: Optional[np.ndarray], nbytes: int,
                 ab: Optional[AbHeader] = None,
                 rndv_seq: Optional[int] = None,
                 rndv_bytes: Optional[int] = None):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.context_id = context_id
        self.kind = kind
        self.data = data
        self.nbytes = nbytes
        self.ab = ab
        self.seq = next(_seq)
        #: Pairs the three rendezvous phases of one transfer.
        self.rndv_seq = rndv_seq
        #: Total transfer size advertised by a rendezvous RTS.
        self.rndv_bytes = rndv_bytes

    def matches(self, source: int, tag: int, context_id: int) -> bool:
        """Does this envelope satisfy a receive for (source, tag, context)?"""
        if context_id != self.context_id:
            return False
        if source != ANY_SOURCE and source != self.src:
            return False
        if tag != ANY_TAG and tag != self.tag:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        abtag = f" ab(root={self.ab.root},inst={self.ab.instance})" if self.ab else ""
        return (f"<Envelope #{self.seq} {self.src}->{self.dst} tag={self.tag} "
                f"ctx={self.context_id} {self.kind.value} {self.nbytes}B{abtag}>")
