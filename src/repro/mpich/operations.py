"""MPI reduction operations.

Each :class:`Op` wraps a numpy binary ufunc applied element-wise,
accumulating in place (``acc = op(acc, operand)``).  The paper's workloads
are SUM over doubles, but the implementation and tests cover the standard
commutative set plus user-defined operations.

The binomial-tree algorithms combine children in *mask order* (the MPICH
convention); for non-commutative user ops that order is part of the
contract, and the property tests pin it down.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


class Op:
    """A reduction operator."""

    __slots__ = ("name", "fn", "commutative", "ufunc")

    def __init__(self, name: str, fn: Callable[[np.ndarray, np.ndarray, np.ndarray], None],
                 commutative: bool = True, ufunc=None):
        self.name = name
        self.fn = fn
        self.commutative = commutative
        #: Raw numpy binary ufunc, when the op *is* one (all built-ins).
        #: ``apply`` then folds with a single C-level call instead of
        #: going through the ``fn`` wrapper — the fold kernel is the
        #: inner loop of every segmented reduce, so the extra Python
        #: frame per segment is measurable at large scale.
        self.ufunc = ufunc

    def apply(self, acc: np.ndarray, operand: np.ndarray) -> None:
        """In-place ``acc = acc (op) operand``."""
        if acc.shape != operand.shape:
            raise ValueError(
                f"operand shape {operand.shape} != accumulator {acc.shape}")
        u = self.ufunc
        if u is not None:
            u(acc, operand, out=acc)
        else:
            self.fn(acc, operand, acc)

    def identity_like(self, array: np.ndarray) -> np.ndarray:
        """Identity element buffer (only defined for the built-in ops)."""
        ident = _IDENTITIES.get(self.name)
        if ident is None:
            raise ValueError(f"no identity for op {self.name!r}")
        out = np.empty_like(array)
        out[...] = ident(array.dtype)
        return out

    def __repr__(self) -> str:
        return f"<Op {self.name}>"


def _ufunc(u) -> Callable[[np.ndarray, np.ndarray, np.ndarray], None]:
    def apply(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
        u(a, b, out=out)
    return apply


SUM = Op("sum", _ufunc(np.add), ufunc=np.add)
PROD = Op("prod", _ufunc(np.multiply), ufunc=np.multiply)
MIN = Op("min", _ufunc(np.minimum), ufunc=np.minimum)
MAX = Op("max", _ufunc(np.maximum), ufunc=np.maximum)
BAND = Op("band", _ufunc(np.bitwise_and), ufunc=np.bitwise_and)
BOR = Op("bor", _ufunc(np.bitwise_or), ufunc=np.bitwise_or)
BXOR = Op("bxor", _ufunc(np.bitwise_xor), ufunc=np.bitwise_xor)

_IDENTITIES = {
    "sum": lambda dt: np.zeros((), dtype=dt)[()],
    "prod": lambda dt: np.ones((), dtype=dt)[()],
    "min": lambda dt: (np.iinfo(dt).max if np.issubdtype(dt, np.integer)
                       else np.inf),
    "max": lambda dt: (np.iinfo(dt).min if np.issubdtype(dt, np.integer)
                       else -np.inf),
}

BUILTIN_OPS = (SUM, PROD, MIN, MAX)


def user_op(name: str, fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
            commutative: bool = True) -> Op:
    """Wrap a plain ``f(a, b) -> array`` into an :class:`Op`."""

    def apply(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
        out[...] = fn(a, b)

    return Op(name, apply, commutative)
