"""The MPICH communication progress engine.

By default MPICH makes progress only when the application is inside an MPI
call (paper Sec. IV-A): blocking operations spin this engine until their
request completes, charging the spun wall-time to the host CPU — that is the
polling cost the application-bypass design eliminates for internal tree
nodes.

The engine also exposes the two integration points the paper adds:

* a **pre-processing hook** consulted for every dequeued packet before the
  default matching logic (Fig. 4, gray boxes) — the application-bypass
  reduction installs itself here;
* a **signal entry point** (:meth:`ProgressEngine.on_signal`): when the NIC
  raises a signal for an AB collective packet, this triggers a progress run
  outside any application MPI call.  If progress is already underway the
  signal is simply ignored (Fig. 4 note), and in that case its kernel
  overhead is *not* charged because the spinning interval already bills that
  wall time.

All matching/copy/rendezvous logic is written as *instantaneous* functions
that tally their would-be CPU cost on a :class:`~repro.sim.cpu.Ledger`.
Process-context callers then yield ``Busy.from_ledger``; signal-context
callers let the CPU's preemption machinery apply the cost.  This keeps a
single implementation for both execution contexts (the paper achieves the
same by routing both through the progress engine).
"""

from __future__ import annotations

import itertools
from typing import Generator, Optional, Protocol

import numpy as np

from ..errors import MatchError
from ..gm.packet import Packet, PacketType
from ..sim.cpu import Ledger
from ..sim.process import Busy, WaitFor
from .matching import MatchingEngine, PostedRecv
from .message import AbHeader, Envelope, TransferKind
from .requests import Request, Status


class ProgressHook(Protocol):
    """Interface of the application-bypass pre-processing hook."""

    def preprocess(self, env: Envelope, ledger: Ledger) -> bool:
        """Return True if the packet was consumed by the hook."""
        ...


class _RndvSend:
    __slots__ = ("data", "request", "tag", "context_id", "dest")

    def __init__(self, data: np.ndarray, request: Request, tag: int,
                 context_id: int, dest: int):
        self.data = data
        self.request = request
        self.tag = tag
        self.context_id = context_id
        self.dest = dest


class _RndvRecv:
    __slots__ = ("posted", "registration")

    def __init__(self, posted: PostedRecv, registration):
        self.posted = posted
        self.registration = registration


class ProgressStats:
    __slots__ = ("drains", "packets_processed", "signals_ignored",
                 "signal_progress_runs", "sends_eager", "sends_rndv",
                 "send_copies", "send_copied_bytes", "self_sends")

    def __init__(self) -> None:
        self.drains = 0
        self.packets_processed = 0
        self.signals_ignored = 0
        self.signal_progress_runs = 0
        self.sends_eager = 0
        self.sends_rndv = 0
        self.send_copies = 0
        self.send_copied_bytes = 0
        self.self_sends = 0


_rndv_seq = itertools.count(1)


class ProgressEngine:
    """Per-rank progress engine bound to one node's NIC and cost table."""

    def __init__(self, node) -> None:
        self.node = node
        self.nic = node.nic
        self.costs = node.costs
        self.sim = node.sim
        self.matching = MatchingEngine()
        self.stats = ProgressStats()
        #: >0 while some blocking MPI call (or a signal-triggered run) is
        #: actively making progress on this rank.
        self.active_depth = 0
        self.hook: Optional[ProgressHook] = None
        self._rndv_sends: dict[int, _RndvSend] = {}
        self._rndv_recvs: dict[int, _RndvRecv] = {}
        node.nic.register_signal_handler(self.on_signal)

    # ------------------------------------------------------------------
    # instantaneous core: drain the NIC receive queue
    # ------------------------------------------------------------------
    def drain(self, ledger: Ledger) -> int:
        """Process every packet in the host receive queue; returns count."""
        self.stats.drains += 1
        handled = 0
        queue = self.nic.rx_queue
        hook = self.hook
        while queue:
            packet = self.nic.pop_rx()
            env: Envelope = packet.payload
            handled += 1
            self.stats.packets_processed += 1
            if hook is not None:
                # The AB build checks every packet (constant added cost).
                ledger.charge(self.costs.ab_hook_us, "ab_hook")
                if hook.preprocess(env, ledger):
                    continue
            self._deliver(env, ledger)
        if handled == 0:
            ledger.charge(self.costs.poll_empty_us, "poll")
        return handled

    def _deliver(self, env: Envelope, ledger: Ledger) -> None:
        kind = env.kind
        if kind is TransferKind.EAGER:
            self._deliver_eager(env, ledger)
        elif kind is TransferKind.RNDV_RTS:
            self._deliver_rts(env, ledger)
        elif kind is TransferKind.RNDV_CTS:
            self._deliver_cts(env, ledger)
        elif kind is TransferKind.RNDV_DATA:
            self._deliver_rdata(env, ledger)
        else:  # pragma: no cover - enum is closed
            raise MatchError(f"unknown transfer kind {kind}")

    def _deliver_eager(self, env: Envelope, ledger: Ledger) -> None:
        ledger.charge(self.costs.match_us, "match")
        posted = self.matching.find_posted(env)
        if posted is not None:
            # Expected: one copy, packet buffer -> user buffer.
            if posted.buffer is not None and env.data is not None:
                self.matching.copy_payload(posted.buffer, env.data, env.nbytes)
                ledger.charge(self.costs.copy_us(env.nbytes), "copy")
                self.matching.stats.count_copy(env.nbytes)
            self.matching.stats.expected_msgs += 1
            posted.request.complete(Status(env.src, env.tag, env.nbytes))
            return
        # Unexpected: copy into a temporary buffer and queue (first of the
        # two copies the default path pays).
        if env.data is not None:
            env.data = np.array(env.data, copy=True)
            ledger.charge(self.costs.copy_us(env.nbytes), "copy")
            self.matching.stats.count_copy(env.nbytes)
        ledger.charge(self.costs.unexpected_insert_us, "match")
        self.matching.store_unexpected(env, self.sim.now)

    def _deliver_rts(self, env: Envelope, ledger: Ledger) -> None:
        ledger.charge(self.costs.match_us, "match")
        posted = self.matching.find_posted(env)
        if posted is None:
            ledger.charge(self.costs.unexpected_insert_us, "match")
            self.matching.store_unexpected(env, self.sim.now)
            return
        self._setup_rndv_recv(env, posted, ledger)

    def _setup_rndv_recv(self, rts: Envelope, posted: PostedRecv,
                         ledger: Ledger) -> None:
        """Receiver side of the rendezvous handshake: pin + CTS."""
        registration = self.node.pinned.pin(rts.rndv_bytes or 0, ledger)
        self._rndv_recvs[rts.rndv_seq] = _RndvRecv(posted, registration)
        cts = Envelope(src=self.node.id, dst=rts.src, tag=rts.tag,
                       context_id=rts.context_id, kind=TransferKind.RNDV_CTS,
                       data=None, nbytes=0, rndv_seq=rts.rndv_seq)
        ledger.charge(self.costs.host_send_overhead_us, "send")
        self._transmit(cts, PacketType.RNDV_CTS, ledger)

    def _deliver_cts(self, env: Envelope, ledger: Ledger) -> None:
        state = self._rndv_sends.pop(env.rndv_seq, None)
        if state is None:
            raise MatchError(f"CTS for unknown rendezvous transfer "
                             f"{env.rndv_seq} at rank {self.node.id}")
        # Pin the send buffer in place, stream it, then release.
        registration = self.node.pinned.pin(state.data.nbytes, ledger)
        data_env = Envelope(src=self.node.id, dst=env.src, tag=state.tag,
                            context_id=state.context_id,
                            kind=TransferKind.RNDV_DATA,
                            data=np.array(state.data, copy=True),
                            nbytes=state.data.nbytes,
                            rndv_seq=env.rndv_seq)
        ledger.charge(self.costs.host_send_overhead_us, "send")
        self._transmit(data_env, PacketType.RNDV_DATA, ledger)
        self.node.pinned.unpin(registration, ledger)
        state.request.complete(Status(self.node.id, state.tag,
                                      state.data.nbytes))

    def _deliver_rdata(self, env: Envelope, ledger: Ledger) -> None:
        state = self._rndv_recvs.pop(env.rndv_seq, None)
        if state is None:
            raise MatchError(f"rendezvous data for unknown transfer "
                             f"{env.rndv_seq} at rank {self.node.id}")
        # DMA placed the payload directly in the pinned user buffer: no host
        # copy is charged (that's the entire point of rendezvous mode).
        if state.posted.buffer is not None and env.data is not None:
            self.matching.copy_payload(state.posted.buffer, env.data,
                                       env.nbytes)
        self.node.pinned.unpin(state.registration, ledger)
        self.matching.stats.expected_msgs += 1
        state.posted.request.complete(Status(env.src, env.tag, env.nbytes))

    # ------------------------------------------------------------------
    # instantaneous send/recv entry points
    # ------------------------------------------------------------------
    def start_send(self, data: np.ndarray, dest: int, tag: int,
                   context_id: int, ledger: Ledger, *,
                   ab: Optional[AbHeader] = None,
                   eager_limit: Optional[int] = None) -> Request:
        """Begin a send; returns its request (eager completes immediately)."""
        nbytes = data.nbytes
        limit = self.costs.eager_limit_bytes if eager_limit is None else eager_limit
        if nbytes <= limit:
            return self._start_eager(data, dest, tag, context_id, ledger, ab)
        if ab is not None:
            raise MatchError("application-bypass messages must be eager "
                             "(the paper falls back to the default path "
                             "beyond the eager limit)")
        return self._start_rndv(data, dest, tag, context_id, ledger)

    def _start_eager(self, data: np.ndarray, dest: int, tag: int,
                     context_id: int, ledger: Ledger,
                     ab: Optional[AbHeader]) -> Request:
        ledger.charge(self.costs.host_send_overhead_us, "send")
        snapshot = np.array(data, copy=True)
        nbytes = snapshot.nbytes
        # Eager mode: copy into the pre-pinned GM bounce buffer.
        ledger.charge(self.costs.copy_us(nbytes), "copy")
        self.stats.send_copies += 1
        self.stats.send_copied_bytes += nbytes
        env = Envelope(src=self.node.id, dst=dest, tag=tag,
                       context_id=context_id, kind=TransferKind.EAGER,
                       data=snapshot, nbytes=nbytes, ab=ab)
        ptype = (PacketType.AB_COLLECTIVE if ab is not None
                 else PacketType.EAGER)
        self._transmit(env, ptype, ledger)
        request = Request("send")
        request.complete(Status(self.node.id, tag, nbytes))
        self.stats.sends_eager += 1
        return request

    def _start_rndv(self, data: np.ndarray, dest: int, tag: int,
                    context_id: int, ledger: Ledger) -> Request:
        request = Request("send")
        seq = next(_rndv_seq)
        self._rndv_sends[seq] = _RndvSend(np.array(data, copy=True), request,
                                          tag, context_id, dest)
        rts = Envelope(src=self.node.id, dst=dest, tag=tag,
                       context_id=context_id, kind=TransferKind.RNDV_RTS,
                       data=None, nbytes=0, rndv_seq=seq,
                       rndv_bytes=data.nbytes)
        ledger.charge(self.costs.host_send_overhead_us, "send")
        self._transmit(rts, PacketType.RNDV_RTS, ledger)
        self.stats.sends_rndv += 1
        return request

    def _transmit(self, env: Envelope, ptype: PacketType,
                  ledger: Ledger) -> None:
        if env.dst == self.node.id:
            # Self-send: deliver locally without touching the fabric.
            self.stats.self_sends += 1
            self._deliver(env, ledger)
            return
        seg = env.ab.seg if env.ab is not None else -1
        packet = Packet(self.node.id, env.dst, ptype, env.nbytes, env,
                        seg=seg)
        self.nic.send(packet, launch_offset=ledger.total)

    def post_recv(self, buffer: Optional[np.ndarray], source: int, tag: int,
                  context_id: int, ledger: Ledger) -> Request:
        """Post a receive; consumes a queued unexpected message if one
        matches (the second copy of the default unexpected path)."""
        ledger.charge(self.costs.post_recv_us, "match")
        request = Request("recv")
        entry = self.matching.take_unexpected(source, tag, context_id)
        if entry is None:
            self.matching.add_posted(PostedRecv(source, tag, context_id,
                                                buffer, request, self.sim.now))
            return request
        env = entry.envelope
        if env.kind is TransferKind.EAGER:
            if buffer is not None and env.data is not None:
                self.matching.copy_payload(buffer, env.data, env.nbytes)
                ledger.charge(self.costs.copy_us(env.nbytes), "copy")
                self.matching.stats.count_copy(env.nbytes)
            request.complete(Status(env.src, env.tag, env.nbytes))
        elif env.kind is TransferKind.RNDV_RTS:
            posted = PostedRecv(source, tag, context_id, buffer, request,
                                self.sim.now)
            self._setup_rndv_recv(env, posted, ledger)
        else:  # pragma: no cover - only EAGER/RTS are ever queued
            raise MatchError(f"unexpected queue held {env.kind}")
        return request

    # ------------------------------------------------------------------
    # blocking (process-context) helpers
    # ------------------------------------------------------------------
    def wait(self, request: Request) -> Generator:
        """Spin the progress engine until ``request`` completes.

        The spun interval is charged to the CPU (category ``poll``) — this
        is the synchronous waiting cost of default MPICH.
        """
        if request.done:
            return request.status
        self.active_depth += 1
        try:
            while True:
                trigger = self.nic.rx_notifier.wait()
                ledger = Ledger()
                self.drain(ledger)
                if ledger.total > 0.0:
                    yield Busy.from_ledger(ledger)
                if request.done:
                    return request.status
                yield WaitFor(trigger, poll_category="poll")
        finally:
            self.active_depth -= 1

    def wait_all(self, requests: list[Request]) -> Generator:
        """Wait for every request in ``requests``."""
        for request in requests:
            yield from self.wait(request)
        return [r.status for r in requests]

    # ------------------------------------------------------------------
    # signal entry (the paper's NIC-to-host path, Fig. 4)
    # ------------------------------------------------------------------
    def on_signal(self, ledger: Ledger, overhead_us: float) -> None:
        if self.active_depth > 0:
            # Progress already underway: the handler returns without doing
            # anything (paper Fig. 4 note), but the kernel delivery still
            # stole the CPU — the interrupted poll/work segment resumes
            # late by that much (the paper's latency penalty, Sec. VI-B).
            self.stats.signals_ignored += 1
            self.node.cpu.add_interrupt_penalty(overhead_us)
            return
        ledger.charge(overhead_us, "signal")
        self.stats.signal_progress_runs += 1
        self.active_depth += 1
        try:
            self.drain(ledger)
        finally:
            self.active_depth -= 1
