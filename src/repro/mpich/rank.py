"""Per-rank MPI library instance.

:class:`MpiRank` is what "the MPICH library linked into the process on node
i" is in the real system: it owns the rank's progress engine and matching
state and exposes blocking/non-blocking point-to-point plus the collectives.
All communication methods are generator coroutines (drive them with
``yield from`` inside a simulated process).

Two *builds* exist, mirroring the paper's experimental setup:

* ``MpiBuild.DEFAULT`` — unmodified MPICH-over-GM semantics;
* ``MpiBuild.AB`` — the application-bypass build: an
  :class:`~repro.core.engine.AbEngine` installs itself as the progress
  engine's pre-processing hook and takes over eligible ``MPI_Reduce`` calls.
  The AB build pays the paper's infrastructure overheads (per-packet hook
  check, per-call decision logic) even when an operation falls back to the
  default path — which is exactly why the paper's Fig. 8(b) shows factors
  below 1.0 at small node counts.
"""

from __future__ import annotations

import enum
from typing import Generator, Optional

import numpy as np

from ..errors import MpiError
from ..sim.cpu import Ledger
from ..sim.process import Busy
from .communicator import Communicator
from .message import ANY_TAG, AbHeader
from .operations import SUM, Op
from .progress import ProgressEngine
from .requests import Request, Status


class MpiBuild(enum.Enum):
    DEFAULT = "default"
    AB = "ab"


class MpiRank:
    """One rank's MPI library state."""

    def __init__(self, node, comm_world: Communicator,
                 build: MpiBuild = MpiBuild.DEFAULT):
        self.node = node
        self.sim = node.sim
        self.costs = node.costs
        self.tree_shape = node.tree_shape
        self.rank = node.id
        self.comm_world = comm_world
        self.build = build
        self.progress = ProgressEngine(node)
        self.ab = None  # AbEngine, installed by install_ab()

    def tree_shape_for(self, nbytes: int):
        """Per-message tree shape ("auto" configs consult the tuning table)."""
        return self.node.tree_shape_for(nbytes)

    def install_ab(self, ab_engine) -> None:
        """Attach the application-bypass engine (AB build only)."""
        if self.build is not MpiBuild.AB:
            raise MpiError("install_ab on a DEFAULT build")
        self.ab = ab_engine
        self.progress.hook = ab_engine

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def isend(self, data: np.ndarray, dest: int, tag: int = 0,
              comm: Optional[Communicator] = None, *,
              _context: Optional[int] = None,
              _ab: Optional[AbHeader] = None) -> Generator:
        """Non-blocking send; returns the send :class:`Request`."""
        comm = comm or self.comm_world
        world_dest = comm.world_rank(dest)
        context = comm.pt2pt_context if _context is None else _context
        ledger = Ledger()
        ledger.charge(self.costs.call_overhead_us, "mpi")
        request = self.progress.start_send(np.asarray(data), world_dest, tag,
                                           context, ledger, ab=_ab)
        yield Busy.from_ledger(ledger)
        return request

    def send(self, data: np.ndarray, dest: int, tag: int = 0,
             comm: Optional[Communicator] = None, *,
             _context: Optional[int] = None) -> Generator:
        """Blocking send (completes when the transfer is locally done)."""
        request = yield from self.isend(data, dest, tag, comm,
                                        _context=_context)
        status = yield from self.progress.wait(request)
        return status

    def irecv(self, buffer: Optional[np.ndarray], source: int,
              tag: int = ANY_TAG, comm: Optional[Communicator] = None, *,
              _context: Optional[int] = None) -> Generator:
        """Non-blocking receive into ``buffer``; returns the request."""
        comm = comm or self.comm_world
        world_source = comm.world_rank(source) if source >= 0 else source
        context = comm.pt2pt_context if _context is None else _context
        ledger = Ledger()
        ledger.charge(self.costs.call_overhead_us, "mpi")
        request = self.progress.post_recv(buffer, world_source, tag, context,
                                          ledger)
        yield Busy.from_ledger(ledger)
        return request

    def recv(self, buffer: Optional[np.ndarray], source: int,
             tag: int = ANY_TAG, comm: Optional[Communicator] = None, *,
             _context: Optional[int] = None) -> Generator:
        """Blocking receive; returns the :class:`Status`."""
        request = yield from self.irecv(buffer, source, tag, comm,
                                        _context=_context)
        status = yield from self.progress.wait(request)
        return status

    def wait(self, request: Request) -> Generator:
        """Block until a previously returned request completes."""
        status = yield from self.progress.wait(request)
        return status

    def test(self, request: Request) -> Generator:
        """``MPI_Test``: one progress poll; returns the status if the
        request completed, else None (never blocks)."""
        ledger = Ledger()
        ledger.charge(self.costs.call_overhead_us, "mpi")
        self.progress.active_depth += 1
        try:
            self.progress.drain(ledger)
        finally:
            self.progress.active_depth -= 1
        yield Busy.from_ledger(ledger)
        return request.status if request.done else None

    def iprobe(self, source: int, tag: int = ANY_TAG,
               comm: Optional[Communicator] = None) -> Generator:
        """``MPI_Iprobe``: poll once; True if a matching message is queued
        (unexpected) or arrives during the poll."""
        comm = comm or self.comm_world
        world_source = comm.world_rank(source) if source >= 0 else source
        ledger = Ledger()
        ledger.charge(self.costs.call_overhead_us, "mpi")
        self.progress.active_depth += 1
        try:
            self.progress.drain(ledger)
        finally:
            self.progress.active_depth -= 1
        yield Busy.from_ledger(ledger)
        for entry in self.progress.matching.unexpected:
            if entry.envelope.matches(world_source, tag, comm.pt2pt_context):
                return True
        return False

    def sendrecv(self, senddata: np.ndarray, dest: int,
                 recvbuf: Optional[np.ndarray], source: int,
                 tag: int = 0, comm: Optional[Communicator] = None) -> Generator:
        """Combined send+receive (deadlock-free: send first, then wait)."""
        recv_req = yield from self.irecv(recvbuf, source, tag, comm)
        send_req = yield from self.isend(senddata, dest, tag, comm)
        yield from self.progress.wait(send_req)
        status = yield from self.progress.wait(recv_req)
        return status

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def reduce(self, sendbuf: np.ndarray, op: Op = SUM, root: int = 0,
               comm: Optional[Communicator] = None,
               recvbuf: Optional[np.ndarray] = None) -> Generator:
        """``MPI_Reduce``.  Returns the result array at the root, else None.

        On the AB build, eligible calls run the paper's application-bypass
        protocol; root/leaf ranks and messages beyond the eager limit fall
        back to the default implementation (paper Sec. V-B).
        """
        from .collectives.reduce import reduce_nab
        comm = comm or self.comm_world
        sendbuf = np.asarray(sendbuf)
        if self.ab is not None:
            result = yield from self.ab.reduce(sendbuf, op, root, comm,
                                               recvbuf)
        else:
            result = yield from reduce_nab(self, sendbuf, op, root, comm,
                                           recvbuf)
        return result

    def bcast(self, data: Optional[np.ndarray], root: int = 0,
              comm: Optional[Communicator] = None,
              count: Optional[int] = None,
              dtype=None) -> Generator:
        """``MPI_Bcast``; returns the broadcast array on every rank."""
        from .collectives.bcast import bcast_binomial
        comm = comm or self.comm_world
        result = yield from bcast_binomial(self, data, root, comm,
                                           count=count, dtype=dtype)
        return result

    def barrier(self, comm: Optional[Communicator] = None) -> Generator:
        """``MPI_Barrier`` (dissemination algorithm)."""
        from .collectives.barrier import barrier_dissemination
        comm = comm or self.comm_world
        yield from barrier_dissemination(self, comm)

    def allreduce(self, sendbuf: np.ndarray, op: Op = SUM,
                  comm: Optional[Communicator] = None) -> Generator:
        """``MPI_Allreduce`` (reduce-to-0 + broadcast, MPICH 1.2.x style)."""
        from .collectives.allreduce import allreduce_reduce_bcast
        comm = comm or self.comm_world
        result = yield from allreduce_reduce_bcast(self, np.asarray(sendbuf),
                                                   op, comm)
        return result

    def gather(self, senddata: np.ndarray, root: int = 0,
               comm: Optional[Communicator] = None) -> Generator:
        """``MPI_Gather``; root returns a list indexed by comm rank."""
        from .collectives.gather import gather_linear
        comm = comm or self.comm_world
        result = yield from gather_linear(self, np.asarray(senddata), root,
                                          comm)
        return result

    def scatter(self, senddata: Optional[np.ndarray], recvbuf: np.ndarray,
                root: int = 0,
                comm: Optional[Communicator] = None) -> Generator:
        """``MPI_Scatter`` with an explicit receive buffer."""
        from .collectives.scatter import scatter
        comm = comm or self.comm_world
        result = yield from scatter(self, senddata, recvbuf, root, comm)
        return result

    def allgather(self, senddata: np.ndarray,
                  comm: Optional[Communicator] = None) -> Generator:
        """``MPI_Allgather`` (ring); returns an array indexed by rank."""
        from .collectives.scatter import allgather_ring
        comm = comm or self.comm_world
        result = yield from allgather_ring(self, np.asarray(senddata), comm)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MpiRank {self.rank} build={self.build.value}>"
