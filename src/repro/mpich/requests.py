"""Request objects for non-blocking operations.

A :class:`Request` completes exactly once, records a :class:`Status`, and
fires a trigger so that blocking waits (which spin the progress engine) can
also be woken by completion that happens *inside* a signal handler.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from ..sim.process import Trigger


@dataclass(frozen=True)
class Status:
    """Completion information (the useful subset of ``MPI_Status``)."""

    source: int
    tag: int
    count_bytes: int


_req_seq = itertools.count(1)


class Request:
    """Handle for an in-flight send or receive."""

    __slots__ = ("kind", "done", "status", "completion", "seq", "cancelled")

    def __init__(self, kind: str):
        if kind not in ("send", "recv"):
            raise ValueError(f"bad request kind: {kind}")
        self.kind = kind
        self.done = False
        self.status: Optional[Status] = None
        self.completion = Trigger()
        self.seq = next(_req_seq)
        self.cancelled = False

    def complete(self, status: Status) -> None:
        if self.done:
            raise RuntimeError(f"request #{self.seq} completed twice")
        self.done = True
        self.status = status
        self.completion.fire(status)

    def cancel(self) -> None:
        """Mark cancelled (caller must also remove any posted entry)."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "pending"
        return f"<Request #{self.seq} {self.kind} {state}>"
