"""Myrinet-2000 network substrate: links, crossbar switch, fabric."""

from .fabric import Fabric
from .link import Link
from .switch import CrossbarSwitch

__all__ = ["Fabric", "Link", "CrossbarSwitch"]
