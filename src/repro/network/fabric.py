"""Fabric: wires host NICs through a pluggable interconnect topology.

Responsibilities:

* compute, for every packet, the time its last byte arrives at the
  destination NIC by delegating the hop-by-hop cut-through timing to the
  configured :class:`repro.topo.Topology` (``NetParams.topology``; the
  default single crossbar is bit-identical to the pre-registry fabric);
* enforce **per-(source, destination) FIFO ordering** — Myrinet/GM delivers
  in order between a pair of endpoints, and the application-bypass protocol
  relies on this when matching late messages to reduce descriptors by
  sender (paper Sec. IV-D); topologies keep routes deterministic per pair
  so multi-hop paths compose into the same guarantee, and the runtime
  invariant monitor (INV-FIFO) checks it on every delivery;
* invoke a delivery callback registered by the destination NIC;
* arbitrate same-instant port contention deterministically: injections
  are buffered per simulation instant and granted links at the end of the
  instant in sorted ``(src, dst)`` order (stable, so per-pair FIFO is the
  injection order).  Without this, which of two simultaneous senders wins
  a shared switch port — and therefore every downstream queueing delay —
  would depend on the arbitrary event tiebreak, a schedule race the
  perturbation harness (:mod:`repro.analysis.races`) flags.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..config import NetParams
from ..sim.events import PRIORITY_ARBITRATE

DeliveryFn = Callable[[object, float], None]


class Fabric:
    """The cluster interconnect."""

    #: Minimal spacing used to enforce FIFO between same-pair packets that
    #: would otherwise compute identical delivery times.
    FIFO_EPSILON = 1e-9

    def __init__(self, sim, params: NetParams, nodes: int, rng=None):
        if nodes < 1:
            raise ValueError("fabric needs at least one node")
        if params.drop_prob > 0.0 and rng is None:
            raise ValueError("a lossy fabric needs an RNG for drop draws")
        self.sim = sim
        self.params = params
        self.nodes = nodes
        self.rng = rng
        self.packets_dropped = 0
        # Imported here: repro.topo builds on repro.network's Link/switch
        # primitives, so a module-level import would be circular.
        from ..topo import make_topology
        self.topology = make_topology(params, nodes)
        # Legacy accessors for the single-crossbar case (tests, diagnostics).
        self.switch = getattr(self.topology, "switch", None)
        self.host_links = self.topology.host_links
        #: invariant monitor hook (set by InvariantMonitor.attach)
        self.monitor = None
        #: fault-injection hooks (set by repro.faults injectors); both are
        #: None on a fault-free fabric and never invoked.
        self.drop_hook = None
        self.transit_penalty = None
        self._sinks: list[Optional[DeliveryFn]] = [None] * nodes
        self._last_delivery: dict[tuple[int, int], float] = {}
        self.packets_delivered = 0
        self.bytes_delivered = 0
        #: Injections buffered during the current instant, granted links
        #: by :meth:`_arbitrate` in sorted order (see module doc).
        self._pending: list[tuple[object, int, int, float]] = []
        self._arbitrate_scheduled = False

    def attach(self, node_id: int, sink: DeliveryFn) -> None:
        """Register the destination NIC's packet-arrival callback."""
        if self._sinks[node_id] is not None:
            raise ValueError(f"node {node_id} already attached")
        self._sinks[node_id] = sink

    def inject(self, packet, src: int, dst: int, at: float) -> None:
        """Send ``packet`` from node ``src`` to node ``dst``, first byte
        hitting the wire no earlier than ``at``.

        The transit itself is computed at the end of the current instant
        (the ``PRIORITY_ARBITRATE`` event class) so same-instant port
        contention resolves in a schedule-independent order; the
        destination sink is invoked at the computed arrival time with
        ``(packet, arrival)``.
        """
        if src == dst:
            raise ValueError("loopback traffic bypasses the fabric")
        if self._sinks[dst] is None:
            raise RuntimeError(f"no NIC attached at node {dst}")
        self._pending.append((packet, src, dst, at))
        if not self._arbitrate_scheduled:
            self._arbitrate_scheduled = True
            self.sim.at(self.sim.now, self._arbitrate,
                        priority=PRIORITY_ARBITRATE)

    def _arbitrate(self) -> None:
        """Grant links to every injection of the instant, in sorted
        ``(src, dst)`` order.  The sort is stable, so packets of one pair
        keep their injection order (per-pair FIFO); across pairs the
        arbitration order — who wins a contended port, whose drop draw
        comes first on a lossy fabric — is a pure function of the traffic,
        never of the event tiebreak."""
        self._arbitrate_scheduled = False
        batch = self._pending
        self._pending = []
        batch.sort(key=lambda entry: (entry[1], entry[2]))
        for packet, src, dst, at in batch:
            self._transit(packet, src, dst, at)

    def _transit(self, packet, src: int, dst: int, at: float) -> float:
        sink = self._sinks[dst]
        wire_bytes = packet.wire_bytes(self.params.header_bytes)
        # Hop-by-hop cut-through timing along the topology's route.
        arrival = self.topology.transit(at, src, dst, wire_bytes)
        # link_degrade penalty lands before the FIFO clamp so the clamp
        # still guarantees monotone per-pair delivery (INV-FIFO holds).
        if self.transit_penalty is not None:
            arrival += self.transit_penalty(at, src, dst, wire_bytes)

        # Fault injection: the bits were clocked onto the wire (occupancy
        # above stands) but never reach the destination.
        if (self.params.drop_prob > 0.0 and
                float(self.rng.random()) < self.params.drop_prob):
            self.packets_dropped += 1
            return arrival
        if self.drop_hook is not None and self.drop_hook(packet, src, dst):
            self.packets_dropped += 1
            return arrival

        # Per-pair FIFO: never deliver packet k+1 at or before packet k.
        key = (src, dst)
        prev = self._last_delivery.get(key)
        if prev is not None and arrival <= prev:
            arrival = prev + self.FIFO_EPSILON
        self._last_delivery[key] = arrival

        if self.monitor is not None:
            self.monitor.on_delivery(src, dst, arrival, self.sim.now)
        self.packets_delivered += 1
        self.bytes_delivered += wire_bytes
        self.sim.at(arrival, sink, packet, arrival)
        return arrival

    def counters(self) -> dict:
        """Network counters merged into ``Simulator.counters()`` so
        BENCH_*.json captures hot spots, not just event/op counts."""
        out = {
            "net_packets_delivered": self.packets_delivered,
            "net_bytes_delivered": self.bytes_delivered,
            "net_packets_dropped": self.packets_dropped,
            "net_max_port_utilization":
                self.topology.max_port_utilization(self.sim.now),
        }
        out.update(self.topology.counters())
        return out
