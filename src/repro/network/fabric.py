"""Fabric: wires host NICs through the crossbar switch.

Responsibilities:

* compute, for every packet, the time its last byte arrives at the
  destination NIC (host link serialization -> cable -> switch cut-through ->
  cable), including output-port contention;
* enforce **per-(source, destination) FIFO ordering** — Myrinet/GM delivers
  in order between a pair of endpoints, and the application-bypass protocol
  relies on this when matching late messages to reduce descriptors by
  sender (paper Sec. IV-D);
* invoke a delivery callback registered by the destination NIC.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..config import NetParams
from .link import Link
from .switch import CrossbarSwitch

DeliveryFn = Callable[[object, float], None]


class Fabric:
    """The cluster interconnect."""

    #: Minimal spacing used to enforce FIFO between same-pair packets that
    #: would otherwise compute identical delivery times.
    FIFO_EPSILON = 1e-9

    def __init__(self, sim, params: NetParams, nodes: int, rng=None):
        if nodes < 1:
            raise ValueError("fabric needs at least one node")
        if params.drop_prob > 0.0 and rng is None:
            raise ValueError("a lossy fabric needs an RNG for drop draws")
        self.sim = sim
        self.params = params
        self.nodes = nodes
        self.rng = rng
        self.packets_dropped = 0
        self.switch = CrossbarSwitch(nodes, params.switch_latency_us,
                                     params.link_bytes_per_us)
        # Host injection links (one per node, toward the switch).
        self.host_links = [Link(f"host[{n}].tx", params.link_bytes_per_us)
                           for n in range(nodes)]
        self._sinks: list[Optional[DeliveryFn]] = [None] * nodes
        self._last_delivery: dict[tuple[int, int], float] = {}
        self.packets_delivered = 0
        self.bytes_delivered = 0

    def attach(self, node_id: int, sink: DeliveryFn) -> None:
        """Register the destination NIC's packet-arrival callback."""
        if self._sinks[node_id] is not None:
            raise ValueError(f"node {node_id} already attached")
        self._sinks[node_id] = sink

    def inject(self, packet, src: int, dst: int, at: float) -> float:
        """Send ``packet`` from node ``src`` to node ``dst``, first byte
        hitting the wire no earlier than ``at``.

        Returns the computed arrival time; the destination sink is invoked
        at that simulation time with ``(packet, arrival)``.
        """
        if src == dst:
            raise ValueError("loopback traffic bypasses the fabric")
        sink = self._sinks[dst]
        if sink is None:
            raise RuntimeError(f"no NIC attached at node {dst}")

        wire_bytes = packet.wire_bytes(self.params.header_bytes)
        # Injection link: serialize out of the host NIC.
        start, _inj_finish = self.host_links[src].transmit(at, wire_bytes)
        # Cut-through: the head reaches the switch after one cable delay;
        # the switch output port charges serialization once (overlapped with
        # the injection link under cut-through).
        head_at_switch = start + self.params.cable_latency_us
        out_finish = self.switch.traverse(head_at_switch, dst, wire_bytes)
        arrival = out_finish + self.params.cable_latency_us

        # Fault injection: the bits were clocked onto the wire (occupancy
        # above stands) but never reach the destination.
        if (self.params.drop_prob > 0.0 and
                float(self.rng.random()) < self.params.drop_prob):
            self.packets_dropped += 1
            return arrival

        # Per-pair FIFO: never deliver packet k+1 at or before packet k.
        key = (src, dst)
        prev = self._last_delivery.get(key)
        if prev is not None and arrival <= prev:
            arrival = prev + self.FIFO_EPSILON
        self._last_delivery[key] = arrival

        self.packets_delivered += 1
        self.bytes_delivered += wire_bytes
        self.sim.at(arrival, sink, packet, arrival)
        return arrival
