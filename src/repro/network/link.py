"""Serializing link model.

A Myrinet link transmits one packet at a time at the full link rate; packets
that find the link busy queue behind it.  ``Link`` tracks the time at which
the link becomes free and computes, for each transfer, when its last byte
leaves the link.
"""

from __future__ import annotations


class Link:
    """One direction of a full-duplex link."""

    __slots__ = ("name", "bytes_per_us", "free_at", "bytes_carried",
                 "packets_carried", "busy_time")

    def __init__(self, name: str, bytes_per_us: float):
        if bytes_per_us <= 0:
            raise ValueError("link bandwidth must be positive")
        self.name = name
        self.bytes_per_us = bytes_per_us
        self.free_at = 0.0
        self.bytes_carried = 0
        self.packets_carried = 0
        self.busy_time = 0.0

    def serialization_us(self, nbytes: int) -> float:
        """Time to clock ``nbytes`` onto the wire."""
        return nbytes / self.bytes_per_us

    def transmit(self, at: float, nbytes: int) -> tuple[float, float]:
        """Occupy the link for one packet.

        Returns ``(start, finish)``: the packet starts serializing at
        ``start = max(at, free_at)`` and its last byte leaves at ``finish``.
        """
        if nbytes < 0:
            raise ValueError("negative packet size")
        start = max(at, self.free_at)
        finish = start + self.serialization_us(nbytes)
        self.free_at = finish
        self.bytes_carried += nbytes
        self.packets_carried += 1
        self.busy_time += finish - start
        return start, finish

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` the link spent busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)
