"""Cut-through crossbar switch model.

Myrinet-2000 switches are cut-through: a packet's head proceeds to the output
port after only a port-lookup latency, while its tail is still arriving.  We
therefore charge the switch latency once per traversal and model contention
at the *output port* (two packets to the same destination serialize there).
"""

from __future__ import annotations

from .link import Link


class CrossbarSwitch:
    """A single N-port crossbar (the paper's cluster uses one 32-port unit)."""

    def __init__(self, ports: int, latency_us: float, link_bytes_per_us: float):
        if ports < 1:
            raise ValueError("switch needs at least one port")
        self.ports = ports
        self.latency_us = latency_us
        # Output-port serializers: packet streams converging on one
        # destination contend here.
        self.out_links = [Link(f"sw.out[{p}]", link_bytes_per_us)
                          for p in range(ports)]
        self.forwarded = 0

    def traverse(self, at: float, out_port: int, nbytes: int) -> float:
        """Route a packet head arriving at ``at`` toward ``out_port``.

        Returns the time the packet's last byte leaves the output port.
        Cut-through: serialization on the input link overlaps with the
        output link, so total wire occupancy is charged once (here).
        """
        _, finish = self.traverse_timed(at, out_port, nbytes)
        return finish

    def traverse_timed(self, at: float, out_port: int,
                       nbytes: int) -> tuple[float, float]:
        """Like :meth:`traverse` but also returns when the output port was
        granted — multi-hop topologies advance the packet head from that
        grant time (cut-through), not from the drain finish."""
        if not (0 <= out_port < self.ports):
            raise ValueError(f"port {out_port} out of range 0..{self.ports - 1}")
        self.forwarded += 1
        return self.out_links[out_port].transmit(at + self.latency_us, nbytes)

    def port_utilization(self, horizon: float) -> list[float]:
        return [link.utilization(horizon) for link in self.out_links]
