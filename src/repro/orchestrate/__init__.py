"""Parallel experiment orchestration and the perf-regression harness.

The sweep shape behind every figure in the paper — a grid of independent,
seed-keyed, bit-deterministic simulator runs — is embarrassingly parallel.
This package fans those grids out across worker processes
(:mod:`.runner`), records each sweep as a machine-readable
``BENCH_<name>.json`` (:mod:`.benchjson`), and gates perf regressions by
diffing two such files (:mod:`.compare`, also
``python -m repro.orchestrate.compare``).

Entry points:

* ``python -m repro.experiments <fig> --jobs N`` — parallel figure sweeps;
* ``python -m repro.orchestrate run-point '<json>'`` — replay one point
  serially (printed by worker-failure errors);
* ``python -m repro.orchestrate smoke`` — the tiny CI sweep that emits
  BENCH_smoke.json plus an InvariantMonitor report.
"""

from .benchjson import (bench_payload, git_sha, load_bench_json,
                        write_bench_json)
from .points import (ConfigSpec, PointResult, SweepPoint, execute_point)
from .runner import PointFailed, run_points


def __getattr__(name):
    # Lazy so `python -m repro.orchestrate.compare` doesn't trip the
    # "found in sys.modules before execution" runpy warning.
    if name == "compare_payloads":
        from .compare import compare_payloads
        return compare_payloads
    raise AttributeError(name)

__all__ = [
    "ConfigSpec", "SweepPoint", "PointResult", "execute_point",
    "run_points", "PointFailed",
    "bench_payload", "write_bench_json", "load_bench_json", "git_sha",
    "compare_payloads",
]
