"""CLI front end: ``python -m repro.orchestrate <command>``.

Commands:

``run-point '<json>'``
    Replay a single sweep point serially in this process and print its
    metrics.  The JSON is a :meth:`SweepPoint.to_dict` payload — exactly
    what worker-failure errors embed in their repro command.

``smoke [--jobs N] [--out DIR] [--seed S]``
    Run the tiny orchestrated fig7-shaped sweep used by CI: a few
    (size, build) points under the protocol-invariant monitor, merged
    deterministically, written to ``BENCH_smoke.json`` plus
    ``invariant-report.json`` in ``--out``.

``smoke-topo [--jobs N] [--out DIR] [--seed S]``
    Same contract over the topology/tree-shape registries: every
    topology crossed with two tree shapes and both builds, written to
    ``BENCH_topo_smoke.json`` plus ``topo-invariant-report.json``.

``smoke-faults [--jobs N] [--out DIR] [--seed S]``
    Same contract over the fault-injection registry: one scenario per
    injector (burst loss, link degrade, signal suppression, rank pause,
    rank crash with tree healing) plus a fault-free baseline, written to
    ``BENCH_faults_smoke.json`` plus ``faults-invariant-report.json``.

``smoke-pipeline [--jobs N] [--out DIR] [--seed S]``
    Same contract over the segmented pipeline (repro.pipeline): a
    large-message latency grid (whole-message vs fixed vs greedy
    schedules, both builds) plus the crash+heal-mid-pipeline scenario,
    all under the invariant monitor (INV-SEGMENT included), written to
    ``BENCH_pipeline_smoke.json`` plus ``pipeline-invariant-report.json``.

``smoke-schedule [--jobs N] [--out DIR] [--seed S]``
    Same contract over the schedule IR (repro.schedule): each build's
    reduce lowering on two tree shapes, pass-off (whole message) vs
    pass-on (``pipeline_segments`` rewrite), executed through the
    schedule interpreter under the invariant monitor, written to
    ``BENCH_schedule_smoke.json`` plus ``schedule-invariant-report.json``.

``smoke-tenancy [--jobs N] [--out DIR] [--seed S] [--cache DIR | --no-cache]``
    Same contract over the multi-tenant service (repro.tenancy): 1 and 2
    co-tenant jobs on a fat-tree and a torus, both builds, with per-job
    makespan/slowdown/fairness metrics, written to
    ``BENCH_tenancy_smoke.json`` plus ``tenancy-invariant-report.json``.
    Points are served through the content-addressed result cache
    (default ``<out>/result-cache``; hit/miss counters land in
    ``tenancy-smoke-cache-stats.json``); ``--no-cache`` always
    re-simulates.

``smoke-pap [--jobs N] [--out DIR] [--seed S]``
    Same contract over the PAP workload layer (repro.workload): two
    arrival patterns (uniform_random, bursty) x four allreduce
    algorithms (nab, ab, sra, pra) with arrival-spread/kappa metrics in
    every row, written to ``BENCH_pap_smoke.json`` plus
    ``pap-invariant-report.json``.

``smoke-scale [--jobs N] [--out DIR] [--seed S] [--sizes N ...]``
    The large-scale DES throughput sweep: 1024/2048/4096-rank
    extrapolated clusters on fat-tree and torus, AB build, tiny iteration
    counts, invariant monitor off.  Writes ``BENCH_scale.json`` with an
    ``events_per_sec`` figure per point; the CI job's hard
    ``timeout-minutes`` is the wall-clock gate.

``refresh-baseline [--path P] [--schedule-path P] [--jobs N] [--seed S]``
    The one-command baseline refresh for the CI perf gate: re-run the
    exact ``smoke`` and ``smoke-schedule`` grids and overwrite the
    committed baselines (``benchmarks/baselines/BENCH_smoke.baseline.json``
    and ``benchmarks/baselines/BENCH_schedule_smoke.baseline.json`` by
    default).  Run it whenever a deliberate change moves smoke metrics,
    commit the result, and say why in the commit message.

``summarize BENCH.json ...``
    Render one or more BENCH_*.json files as a GitHub-flavored markdown
    table (sweep, points, sim events, wall, events/sec) — what the CI
    jobs append to ``$GITHUB_STEP_SUMMARY``.

``race-smoke [--scenario S ...] [--runs N] [--jobs N] [--out DIR]``
    The determinism gate: run the named smoke scenarios (default: fig7 +
    pipeline) under the schedule-perturbation harness
    (:mod:`repro.analysis.races`) — FIFO baseline plus N tiebreak-shuffled
    schedules per point — and fail on any bit-level divergence of metrics,
    counters, or invariant reports.  Writes ``race-report.json``.

(The compare gate lives at ``python -m repro.orchestrate.compare``.)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .benchjson import events_per_sec, load_bench_json, write_bench_json
from .points import (SweepPoint, execute_point, faults_smoke_points,
                     pap_smoke_points, pipeline_smoke_points,
                     scale_smoke_points, schedule_smoke_points, smoke_points,
                     topo_smoke_points)
from .runner import run_points

#: Where the CI perf gate's committed baseline lives (relative to the
#: repo root); ``refresh-baseline`` writes here by default and CI
#: compares every fresh BENCH_smoke.json against it.
DEFAULT_BASELINE = "benchmarks/baselines/BENCH_smoke.baseline.json"

#: Same contract for the schedule-IR grid (``smoke-schedule``).
DEFAULT_SCHEDULE_BASELINE = \
    "benchmarks/baselines/BENCH_schedule_smoke.baseline.json"

#: Same contract for the PAP workload grid (``smoke-pap``).
DEFAULT_PAP_BASELINE = \
    "benchmarks/baselines/BENCH_pap_smoke.baseline.json"


def _cmd_run_point(args: argparse.Namespace) -> int:
    try:
        spec = json.loads(args.spec)
        point = SweepPoint.from_dict(spec)
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        print(f"error: bad point spec: {exc}", file=sys.stderr)
        return 2
    res = execute_point(point)
    print(json.dumps({
        "key": res.point.key(),
        "metrics": res.metrics,
        "wall_time_s": res.wall_time_s,
        "counters": res.counters,
        "invariant_report": res.invariant_report,
    }, indent=2, sort_keys=True))
    return 0


def _run_smoke_grid(args: argparse.Namespace, name: str, points,
                    report_name: str, cache=None) -> int:
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    results = run_points(points, jobs=args.jobs, cache=cache,
                         progress=lambda line: print(f"  {line}",
                                                     flush=True))
    bench_path = write_bench_json(name, results, directory=out_dir,
                                  jobs=args.jobs)
    if cache is not None:
        stats = cache.stats()
        stats_path = out_dir / f"{name.replace('_', '-')}-cache-stats.json"
        stats_path.write_text(json.dumps(stats, indent=2, sort_keys=True)
                              + "\n")
        print(f"cache: {stats['hits']} hit(s), {stats['misses']} miss(es) "
              f"({stats['entries']} stored) -> {stats_path}")
    report = {
        "schema": 1,
        "points": [
            {"key": r.point.key(), "report": r.invariant_report}
            for r in results
        ],
        "violation_count": sum(
            (r.invariant_report or {}).get("violation_count", 0)
            for r in results),
    }
    report_path = out_dir / report_name
    report_path.write_text(json.dumps(report, indent=2, sort_keys=True)
                           + "\n")
    print(f"wrote {bench_path} and {report_path}")
    if report["violation_count"]:
        print(f"protocol invariant violations: "
              f"{report['violation_count']}", file=sys.stderr)
        return 1
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    points = smoke_points(seed=args.seed, iterations=args.iterations)
    return _run_smoke_grid(args, "smoke", points, "invariant-report.json")


def _cmd_smoke_topo(args: argparse.Namespace) -> int:
    points = topo_smoke_points(seed=args.seed, iterations=args.iterations)
    return _run_smoke_grid(args, "topo_smoke", points,
                           "topo-invariant-report.json")


def _cmd_smoke_faults(args: argparse.Namespace) -> int:
    points = faults_smoke_points(seed=args.seed, iterations=args.iterations)
    return _run_smoke_grid(args, "faults_smoke", points,
                           "faults-invariant-report.json")


def _cmd_smoke_pipeline(args: argparse.Namespace) -> int:
    points = pipeline_smoke_points(seed=args.seed,
                                   iterations=args.iterations)
    return _run_smoke_grid(args, "pipeline_smoke", points,
                           "pipeline-invariant-report.json")


def _cmd_smoke_schedule(args: argparse.Namespace) -> int:
    points = schedule_smoke_points(seed=args.seed,
                                   iterations=args.iterations)
    return _run_smoke_grid(args, "schedule_smoke", points,
                           "schedule-invariant-report.json")


def _cmd_smoke_tenancy(args: argparse.Namespace) -> int:
    from .points import tenancy_smoke_points
    cache = None
    if not args.no_cache:
        from ..tenancy import ResultCache
        cache_dir = args.cache or str(Path(args.out) / "result-cache")
        cache = ResultCache(cache_dir)
    points = tenancy_smoke_points(seed=args.seed,
                                  iterations=args.iterations)
    return _run_smoke_grid(args, "tenancy_smoke", points,
                           "tenancy-invariant-report.json", cache=cache)


def _cmd_smoke_pap(args: argparse.Namespace) -> int:
    points = pap_smoke_points(seed=args.seed, iterations=args.iterations)
    return _run_smoke_grid(args, "pap_smoke", points,
                           "pap-invariant-report.json")


def _cmd_smoke_scale(args: argparse.Namespace) -> int:
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    points = scale_smoke_points(seed=args.seed, iterations=args.iterations,
                                sizes=tuple(args.sizes))
    results = run_points(points, jobs=args.jobs,
                         progress=lambda line: print(f"  {line}",
                                                     flush=True))
    bench_path = write_bench_json("scale", results, directory=out_dir,
                                  jobs=args.jobs)
    for r in results:
        eps = events_per_sec(r.counters, r.wall_time_s)
        rate = f", {eps:,.0f} events/s" if eps else ""
        print(f"  {r.point.label()}: "
              f"{r.counters.get('events', 0):,} events in "
              f"{r.wall_time_s:.2f}s{rate}")
    print(f"wrote {bench_path}")
    return 0


def _cmd_refresh_baseline(args: argparse.Namespace) -> int:
    grids = [
        ("smoke", smoke_points(seed=args.seed,
                               iterations=args.iterations), args.path),
        ("schedule_smoke",
         schedule_smoke_points(seed=args.seed), args.schedule_path),
        ("pap_smoke", pap_smoke_points(seed=args.seed), args.pap_path),
    ]
    for name, points, path in grids:
        results = run_points(points, jobs=args.jobs,
                             progress=lambda line: print(f"  {line}",
                                                         flush=True))
        written = write_bench_json(name, results, path=path, jobs=args.jobs)
        print(f"wrote {written} — commit it to refresh the CI perf-gate "
              f"baseline")
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    lines = ["| sweep | point | sim events | wall (s) | events/sec |",
             "| --- | --- | ---: | ---: | ---: |"]
    for bench in args.bench:
        try:
            payload = load_bench_json(bench)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        name = payload.get("name", "?")
        for record in payload["points"]:
            key = record["key"]
            label = (f"{key.get('kind')} n={key.get('size')} "
                     f"{key.get('build')} ({key.get('variant')})")
            events = record.get("counters", {}).get("events", 0)
            eps = record.get("events_per_sec")
            lines.append(
                f"| {name} | {label} | {events:,} | "
                f"{record['wall_time_s']:.2f} | "
                + (f"{eps:,.0f} |" if eps else "n/a |"))
        total_eps = payload.get("events_per_sec")
        lines.append(
            f"| {name} | **total** | | "
            f"{payload.get('total_wall_s', 0.0):.2f} | "
            + (f"**{total_eps:,.0f}** |" if total_eps else "n/a |"))
    print("\n".join(lines))
    return 0


def _cmd_race_smoke(args: argparse.Namespace) -> int:
    from ..analysis import races
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    race_argv = ["--runs", str(args.runs), "--seed", str(args.seed),
                 "--jobs", str(args.jobs),
                 "--out", str(out_dir / "race-report.json")]
    for scenario in args.scenario:
        race_argv += ["--scenario", scenario]
    if args.iterations is not None:
        race_argv += ["--iterations", str(args.iterations)]
    return races.main(race_argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.orchestrate",
        description="parallel sweep orchestration utilities")
    sub = parser.add_subparsers(dest="command")

    p_run = sub.add_parser("run-point",
                           help="replay one sweep point serially")
    p_run.add_argument("spec", help="SweepPoint JSON (from a failure's "
                                    "repro command)")

    p_smoke = sub.add_parser("smoke", help="tiny CI sweep with invariant "
                                           "collection")
    p_smoke.add_argument("--jobs", type=int, default=2)
    p_smoke.add_argument("--seed", type=int, default=1)
    p_smoke.add_argument("--iterations", type=int, default=10)
    p_smoke.add_argument("--out", default="ci-artifacts")

    p_topo = sub.add_parser("smoke-topo",
                            help="topology x tree-shape CI sweep with "
                                 "invariant collection")
    p_topo.add_argument("--jobs", type=int, default=2)
    p_topo.add_argument("--seed", type=int, default=1)
    p_topo.add_argument("--iterations", type=int, default=8)
    p_topo.add_argument("--out", default="ci-artifacts")

    p_faults = sub.add_parser("smoke-faults",
                              help="fault-injection CI sweep with "
                                   "invariant collection")
    p_faults.add_argument("--jobs", type=int, default=2)
    p_faults.add_argument("--seed", type=int, default=1)
    p_faults.add_argument("--iterations", type=int, default=6)
    p_faults.add_argument("--out", default="ci-artifacts")

    p_pipe = sub.add_parser("smoke-pipeline",
                            help="segmented-pipeline CI sweep with "
                                 "invariant collection")
    p_pipe.add_argument("--jobs", type=int, default=2)
    p_pipe.add_argument("--seed", type=int, default=1)
    p_pipe.add_argument("--iterations", type=int, default=6)
    p_pipe.add_argument("--out", default="ci-artifacts")

    p_sched = sub.add_parser("smoke-schedule",
                             help="schedule-IR CI sweep (lowerings x "
                                  "tree shapes, pass-on vs pass-off) "
                                  "with invariant collection")
    p_sched.add_argument("--jobs", type=int, default=2)
    p_sched.add_argument("--seed", type=int, default=1)
    p_sched.add_argument("--iterations", type=int, default=6)
    p_sched.add_argument("--out", default="ci-artifacts")

    p_ten = sub.add_parser("smoke-tenancy",
                           help="multi-tenant service CI sweep (1-2 "
                                "co-tenant jobs, fat-tree + torus, both "
                                "builds) with per-job metrics, invariant "
                                "collection and the content-addressed "
                                "result cache")
    p_ten.add_argument("--jobs", type=int, default=2)
    p_ten.add_argument("--seed", type=int, default=1)
    p_ten.add_argument("--iterations", type=int, default=5)
    p_ten.add_argument("--out", default="ci-artifacts")
    p_ten.add_argument("--cache", default=None,
                       help="result-cache directory (default: "
                            "<out>/result-cache)")
    p_ten.add_argument("--no-cache", action="store_true",
                       help="always re-simulate; never read or write "
                            "the result cache")

    p_pap = sub.add_parser("smoke-pap",
                           help="PAP workload CI sweep (arrival patterns "
                                "x allreduce algorithms incl. sra/pra) "
                                "with invariant collection")
    p_pap.add_argument("--jobs", type=int, default=2)
    p_pap.add_argument("--seed", type=int, default=1)
    p_pap.add_argument("--iterations", type=int, default=6)
    p_pap.add_argument("--out", default="ci-artifacts")

    p_scale = sub.add_parser("smoke-scale",
                             help="1024-4096 rank DES throughput sweep "
                                  "(fat-tree + torus, AB build)")
    p_scale.add_argument("--jobs", type=int, default=2)
    p_scale.add_argument("--seed", type=int, default=1)
    p_scale.add_argument("--iterations", type=int, default=2)
    p_scale.add_argument("--sizes", type=int, nargs="+",
                         default=[1024, 2048, 4096])
    p_scale.add_argument("--out", default="ci-artifacts")

    p_base = sub.add_parser("refresh-baseline",
                            help="re-run the smoke grid and overwrite the "
                                 "committed perf-gate baseline")
    p_base.add_argument("--jobs", type=int, default=2)
    p_base.add_argument("--seed", type=int, default=1)
    p_base.add_argument("--iterations", type=int, default=10)
    p_base.add_argument("--path", default=DEFAULT_BASELINE)
    p_base.add_argument("--schedule-path",
                        default=DEFAULT_SCHEDULE_BASELINE)
    p_base.add_argument("--pap-path", default=DEFAULT_PAP_BASELINE)

    p_sum = sub.add_parser("summarize",
                           help="render BENCH_*.json files as a markdown "
                                "table (for $GITHUB_STEP_SUMMARY)")
    p_sum.add_argument("bench", nargs="+",
                       help="BENCH_*.json file(s) to summarize")

    p_race = sub.add_parser("race-smoke",
                            help="schedule-perturbation determinism gate "
                                 "over the CI smoke scenarios")
    p_race.add_argument("--scenario", action="append",
                        default=None,
                        help="scenario name (repeatable; default: "
                             "fig7 + pipeline)")
    p_race.add_argument("--runs", type=int, default=8,
                        help="perturbed schedules per point")
    p_race.add_argument("--jobs", type=int, default=2)
    p_race.add_argument("--seed", type=int, default=1)
    p_race.add_argument("--iterations", type=int, default=None,
                        help="override per-point benchmark iterations")
    p_race.add_argument("--out", default="ci-artifacts")

    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0
    if args.command == "run-point":
        return _cmd_run_point(args)
    if args.command == "smoke":
        return _cmd_smoke(args)
    if args.command == "smoke-topo":
        return _cmd_smoke_topo(args)
    if args.command == "smoke-faults":
        return _cmd_smoke_faults(args)
    if args.command == "smoke-pipeline":
        return _cmd_smoke_pipeline(args)
    if args.command == "smoke-schedule":
        return _cmd_smoke_schedule(args)
    if args.command == "smoke-tenancy":
        return _cmd_smoke_tenancy(args)
    if args.command == "smoke-pap":
        return _cmd_smoke_pap(args)
    if args.command == "smoke-scale":
        return _cmd_smoke_scale(args)
    if args.command == "refresh-baseline":
        return _cmd_refresh_baseline(args)
    if args.command == "summarize":
        return _cmd_summarize(args)
    if args.command == "race-smoke":
        if args.scenario is None:
            args.scenario = ["fig7", "pipeline"]
        return _cmd_race_smoke(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
