"""BENCH_<name>.json — the machine-readable perf trajectory of a sweep.

Schema (version 1)::

    {
      "schema": 1,
      "name": "fig7",
      "git_sha": "abc1234...",          # "unknown" outside a git checkout
      "created_unix": 1754400000,
      "jobs": 4,                         # --jobs the sweep ran with
      "total_wall_s": 12.34,             # sum of per-point wall times
      "events_per_sec": 61234.5,         # aggregate sim-events throughput
      "points": [
        {
          "key": {"experiment": "fig7", "kind": "cpu_util", "size": 32,
                  "skew_us": 1000.0, "build": "ab", "elements": 4,
                  "seed": 1, "iterations": 100},
          "metrics": {"avg_util_us": 12.3, ...},   # bit-deterministic
          "wall_time_s": 0.42,                     # host time; noisy
          "counters": {"events": 123456, "ops": 23456},
          "events_per_sec": 58923.1,               # host throughput; noisy
          "seed": 1
        }, ...
      ]
    }

``metrics`` values are pure functions of the key (the simulator is
deterministic), so the compare CLI treats any metric difference as drift;
``wall_time_s`` is host time and only gates through a percentage
tolerance.  ``events_per_sec`` (``counters["events"] / wall_time_s``, the
DES core's throughput) is wall-derived and therefore *also* host-noisy:
it lives beside ``wall_time_s``, never inside ``metrics``, so a slow
runner can't fail the exact-metric gate.  Null when a point's executor
reports no event counter.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Optional, Sequence, Union

from .points import PointResult

SCHEMA_VERSION = 1


def git_sha(cwd: Optional[Union[str, Path]] = None) -> str:
    """Current commit sha, or "unknown" outside a usable git checkout."""
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, timeout=10,
                             cwd=cwd)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def events_per_sec(counters: dict, wall_time_s: float) -> Optional[float]:
    """Simulator-event throughput for one run, or None when the executor
    reported no event counter (e.g. the closed-form NIC-reduction model)."""
    events = counters.get("events")
    if not events or wall_time_s <= 0:
        return None
    return float(events) / wall_time_s


def bench_payload(name: str, results: Sequence[PointResult], *,
                  jobs: int = 1, sha: Optional[str] = None) -> dict:
    """Build the schema-1 payload for a completed sweep."""
    points = []
    total_events = 0
    counted_wall = 0.0
    for res in results:
        points.append({
            "key": res.point.key(),
            "metrics": dict(res.metrics),
            "wall_time_s": res.wall_time_s,
            "counters": dict(res.counters),
            "events_per_sec": events_per_sec(res.counters, res.wall_time_s),
            "seed": res.point.config.seed,
        })
        if res.counters.get("events"):
            total_events += int(res.counters["events"])
            counted_wall += res.wall_time_s
    return {
        "schema": SCHEMA_VERSION,
        "name": name,
        "git_sha": sha if sha is not None else git_sha(),
        "created_unix": int(time.time()),
        "jobs": jobs,
        "total_wall_s": sum(r.wall_time_s for r in results),
        "events_per_sec": (total_events / counted_wall
                           if counted_wall > 0 else None),
        "points": points,
    }


def write_bench_json(name: str, results: Sequence[PointResult], *,
                     directory: Union[str, Path, None] = None,
                     path: Union[str, Path, None] = None,
                     jobs: int = 1, sha: Optional[str] = None) -> Path:
    """Write ``BENCH_<name>.json`` (or an explicit ``path``); returns it."""
    if path is None:
        directory = Path(directory) if directory is not None else Path(".")
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{name}.json"
    else:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
    payload = bench_payload(name, results, jobs=jobs, sha=sha)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_bench_json(path: Union[str, Path]) -> dict:
    """Load and minimally validate a BENCH_*.json payload."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "points" not in payload:
        raise ValueError(f"{path}: not a BENCH json (no 'points')")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"{path}: unsupported schema "
                         f"{payload.get('schema')!r} "
                         f"(expected {SCHEMA_VERSION})")
    return payload


def point_index(payload: dict) -> dict:
    """Map canonical key-string -> point record, for compare joins."""
    index = {}
    for record in payload["points"]:
        key = json.dumps(record["key"], sort_keys=True)
        index[key] = record
    return index
