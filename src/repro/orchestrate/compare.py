"""Perf-regression gate: diff two BENCH_*.json files.

Usage::

    python -m repro.orchestrate.compare OLD.json NEW.json --tolerance 10

Exit codes: 0 — clean; 1 — metric drift, wall-time regression past the
tolerance, or points missing from NEW; 2 — usage error (unreadable files,
bad schema, bad flags).

Two different gates, because the two number families have different
physics:

* **metrics** are bit-deterministic outputs of the simulator — *any*
  relative difference beyond ``--metric-tolerance`` (default 0, i.e.
  exact) is drift and fails the gate;
* **wall times** are host measurements — only a total-sweep slowdown of
  more than ``--tolerance`` percent (default 10) fails, and per-point
  slowdowns are reported but advisory.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .benchjson import load_bench_json, point_index

EXIT_CLEAN = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.orchestrate.compare",
        description="diff two BENCH_*.json files; nonzero exit on metric "
                    "drift or wall-time regression")
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=10.0,
                        metavar="PCT",
                        help="allowed total wall-time regression in "
                             "percent (default 10)")
    parser.add_argument("--metric-tolerance", type=float, default=0.0,
                        metavar="REL",
                        help="allowed relative metric difference "
                             "(default 0 — metrics are deterministic)")
    parser.add_argument("--max-rows", type=int, default=0, metavar="N",
                        help="cap drift/missing rows in the report "
                             "(0 = unlimited, the default: every "
                             "mismatched metric is listed in one run)")
    return parser


def _rel_diff(old: float, new: float) -> float:
    if old == new:
        return 0.0
    denom = max(abs(old), abs(new))
    return abs(new - old) / denom if denom else 0.0


def _label(key: dict) -> str:
    return (f"{key.get('experiment')}/{key.get('kind')} "
            f"n={key.get('size')} skew={key.get('skew_us'):g} "
            f"{key.get('build')} elems={key.get('elements')} "
            f"seed={key.get('seed')}")


def _render_rows(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [max(len(header[c]), *(len(r[c]) for r in rows))
              for c in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)),
             "  ".join("-" * w for w in widths)]
    lines += ["  ".join(v.ljust(w) for v, w in zip(row, widths))
              for row in rows]
    return "\n".join(lines)


def compare_payloads(old: dict, new: dict, *, tolerance_pct: float = 10.0,
                     metric_tolerance: float = 0.0) -> dict:
    """Pure comparison; returns a verdict dict the CLI renders."""
    old_idx = point_index(old)
    new_idx = point_index(new)
    shared = [k for k in old_idx if k in new_idx]
    missing = sorted(k for k in old_idx if k not in new_idx)
    added = sorted(k for k in new_idx if k not in old_idx)

    drifts = []
    walls = []
    for key in shared:
        o, n = old_idx[key], new_idx[key]
        for metric in sorted(set(o["metrics"]) | set(n["metrics"])):
            if metric not in o["metrics"] or metric not in n["metrics"]:
                drifts.append({"key": o["key"], "metric": metric,
                               "old": o["metrics"].get(metric),
                               "new": n["metrics"].get(metric),
                               "rel": float("inf")})
                continue
            ov, nv = o["metrics"][metric], n["metrics"][metric]
            rel = _rel_diff(float(ov), float(nv))
            if rel > metric_tolerance:
                drifts.append({"key": o["key"], "metric": metric,
                               "old": ov, "new": nv, "rel": rel})
        walls.append({"key": o["key"], "old": o["wall_time_s"],
                      "new": n["wall_time_s"]})

    old_wall = sum(w["old"] for w in walls)
    new_wall = sum(w["new"] for w in walls)
    wall_pct = ((new_wall - old_wall) / old_wall * 100.0) if old_wall else 0.0
    wall_regressed = wall_pct > tolerance_pct

    return {
        "shared_points": len(shared),
        "missing_points": [json.loads(k) for k in missing],
        "added_points": [json.loads(k) for k in added],
        "metric_drifts": drifts,
        "wall": {"old_s": old_wall, "new_s": new_wall,
                 "pct": wall_pct, "tolerance_pct": tolerance_pct,
                 "regressed": wall_regressed,
                 "per_point": walls},
        "ok": not drifts and not wall_regressed and not missing,
    }


def render_verdict(verdict: dict, old_name: str, new_name: str, *,
                   max_rows: int = 0) -> str:
    """Render the verdict; ``max_rows`` caps the drift/missing listings
    (0 = unlimited — the gate's job is to name *every* mismatch)."""
    cap = max_rows if max_rows > 0 else None
    lines = [f"bench compare: {old_name} -> {new_name}",
             f"  shared points: {verdict['shared_points']}"]
    if verdict["added_points"]:
        lines.append(f"  new points (ignored): "
                     f"{len(verdict['added_points'])}")
    missing = verdict["missing_points"]
    if missing:
        lines.append(f"  MISSING from new: {len(missing)} point(s)")
        for key in missing[:cap]:
            lines.append(f"    - {_label(key)}")
        if cap is not None and len(missing) > cap:
            lines.append(f"    ... and {len(missing) - cap} more")

    drifts = verdict["metric_drifts"]
    if drifts:
        lines.append(f"  METRIC DRIFT in {len(drifts)} value(s):")
        rows = [[_label(d["key"]), d["metric"], f"{d['old']}",
                 f"{d['new']}",
                 ("inf" if d["rel"] == float("inf")
                  else f"{d['rel'] * 100.0:.4g}%")]
                for d in drifts[:cap]]
        lines.append("    " + _render_rows(
            ["point", "metric", "old", "new", "rel diff"],
            rows).replace("\n", "\n    "))
        if cap is not None and len(drifts) > cap:
            lines.append(f"    ... and {len(drifts) - cap} more")

    wall = verdict["wall"]
    slow = sorted((w for w in wall["per_point"] if w["old"] > 0),
                  key=lambda w: w["new"] / w["old"], reverse=True)[:5]
    lines.append(f"  wall time: {wall['old_s']:.3f}s -> "
                 f"{wall['new_s']:.3f}s ({wall['pct']:+.1f}%, "
                 f"tolerance {wall['tolerance_pct']:g}%)"
                 + ("  REGRESSED" if wall["regressed"] else ""))
    if slow and wall["regressed"]:
        rows = [[_label(w["key"]), f"{w['old']:.3f}s", f"{w['new']:.3f}s",
                 f"{(w['new'] / w['old'] - 1) * 100.0:+.1f}%"]
                for w in slow]
        lines.append("    slowest movers:")
        lines.append("    " + _render_rows(
            ["point", "old", "new", "delta"], rows).replace("\n", "\n    "))
    lines.append("  verdict: " + ("OK" if verdict["ok"] else "FAIL"))
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return EXIT_USAGE if exc.code not in (0, None) else EXIT_CLEAN

    # Load both files before bailing so one run reports every problem
    # (a baseline *and* a candidate can be broken at the same time).
    payloads = {}
    errors = []
    for role, path in (("old", args.old), ("new", args.new)):
        try:
            payloads[role] = load_bench_json(path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            errors.append(f"error: {role} ({path}): {exc}")
    if errors:
        for line in errors:
            print(line, file=sys.stderr)
        return EXIT_USAGE

    verdict = compare_payloads(payloads["old"], payloads["new"],
                               tolerance_pct=args.tolerance,
                               metric_tolerance=args.metric_tolerance)
    print(render_verdict(verdict, args.old, args.new,
                         max_rows=args.max_rows))
    return EXIT_CLEAN if verdict["ok"] else EXIT_REGRESSION


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
