"""Sweep points: the unit of work the orchestrator distributes.

A :class:`SweepPoint` names one independent simulation run — one
``Simulator`` instance, single-threaded and bit-deterministic for a fixed
``(config, build, seed)`` — plus everything a worker process needs to
rebuild it from scratch: a :class:`ConfigSpec` (a *serializable recipe*
for a :class:`~repro.config.ClusterConfig`, not the config itself, so a
failing point can be replayed from its JSON form) and the benchmark kind
and arguments.

The point's identity for merging and for BENCH_*.json is its
:meth:`SweepPoint.key`: ``(experiment, kind, size, skew, build, elements,
seed, iterations)``.  Two runs that share a key must produce bit-identical
metrics; the orchestrator's tests enforce that across process boundaries.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Optional

from ..config import (AbParams, ClusterConfig, FaultParams, MpiParams,
                      NetParams, NicParams, NoiseParams, PipelineParams,
                      WorkloadParams, extrapolated_cluster,
                      homogeneous_cluster, paper_cluster, quiet_cluster)
from ..mpich.rank import MpiBuild

#: Named cluster factories a ConfigSpec may reference.  Registry-based so
#: a spec survives a JSON round trip (the repro command for a crashed
#: worker) without pickling closures across processes.
CONFIG_FACTORIES: dict[str, Callable[..., ClusterConfig]] = {
    "paper": paper_cluster,
    "homogeneous": homogeneous_cluster,
    "extrapolated": extrapolated_cluster,
    "quiet": quiet_cluster,
}

#: Optional parameter-block overrides a spec may carry, applied with
#: dataclasses.replace semantics after the factory runs.
_OVERRIDE_TYPES = {
    "ab": AbParams,
    "nic": NicParams,
    "net": NetParams,
    "mpi": MpiParams,
    "noise": NoiseParams,
    "faults": FaultParams,
    "pipeline": PipelineParams,
    "workload": WorkloadParams,
}


@dataclass(frozen=True)
class ConfigSpec:
    """Serializable recipe for a ClusterConfig: factory name + size + seed
    plus optional parameter-block overrides."""

    factory: str
    size: int
    seed: int
    ab: Optional[AbParams] = None
    nic: Optional[NicParams] = None
    net: Optional[NetParams] = None
    mpi: Optional[MpiParams] = None
    noise: Optional[NoiseParams] = None
    faults: Optional[FaultParams] = None
    pipeline: Optional[PipelineParams] = None
    workload: Optional[WorkloadParams] = None

    def build(self) -> ClusterConfig:
        try:
            make = CONFIG_FACTORIES[self.factory]
        except KeyError:
            raise ValueError(f"unknown config factory {self.factory!r}; "
                             f"known: {sorted(CONFIG_FACTORIES)}") from None
        config = make(self.size, seed=self.seed)
        if self.ab is not None:
            config = config.with_ab(self.ab)
        if self.nic is not None:
            config = config.with_nic(self.nic)
        if self.net is not None:
            config = config.with_net(self.net)
        if self.mpi is not None:
            config = config.with_mpi(self.mpi)
        if self.noise is not None:
            config = config.with_noise(self.noise)
        if self.faults is not None:
            config = config.with_faults(self.faults)
        if self.pipeline is not None:
            config = config.with_pipeline(self.pipeline)
        if self.workload is not None:
            config = config.with_workload(self.workload)
        return config

    def to_dict(self) -> dict:
        d: dict[str, Any] = {"factory": self.factory, "size": self.size,
                             "seed": self.seed}
        for name in _OVERRIDE_TYPES:
            block = getattr(self, name)
            if block is not None:
                d[name] = asdict(block)
        return d

    def variant(self) -> str:
        """Short stable tag for the (factory, overrides) combination, so
        two points that differ only in parameter-block overrides (e.g. the
        eager-limit ablation's limited vs. baseline configs) get distinct
        BENCH keys."""
        overrides = {name: asdict(block) for name in _OVERRIDE_TYPES
                     if (block := getattr(self, name)) is not None}
        if not overrides:
            return self.factory
        digest = hashlib.sha1(
            json.dumps(overrides, sort_keys=True).encode()).hexdigest()[:8]
        return f"{self.factory}+{digest}"

    @classmethod
    def from_dict(cls, d: dict) -> "ConfigSpec":
        kwargs: dict[str, Any] = {"factory": d["factory"],
                                  "size": int(d["size"]),
                                  "seed": int(d["seed"])}
        for name, block_type in _OVERRIDE_TYPES.items():
            if d.get(name) is not None:
                kwargs[name] = block_type(**d[name])
        return cls(**kwargs)


BUILD_TAGS = {"nab": MpiBuild.DEFAULT, "ab": MpiBuild.AB}


def build_from_tag(tag: str) -> MpiBuild:
    try:
        return BUILD_TAGS[tag]
    except KeyError:
        raise ValueError(f"unknown build tag {tag!r}; "
                         f"known: {sorted(BUILD_TAGS)}") from None


@dataclass
class SweepPoint:
    """One independent simulation run inside a sweep."""

    experiment: str              # e.g. "fig7"
    kind: str                    # executor name in KINDS
    config: ConfigSpec
    build: str                   # "nab" | "ab"
    elements: int
    max_skew_us: float = 0.0
    iterations: int = 100
    warmup: int = 3
    #: Collect an InvariantMonitor report alongside the metrics (used by
    #: the CI smoke sweep so protocol violations surface as artifacts).
    collect_invariants: bool = False
    #: Schedule-perturbation mode (repro.analysis.races): when set, every
    #: event queue built for this point runs with the seeded
    #: tiebreak-shuffle, so same-time events fire in a deterministic
    #: pseudo-random permutation instead of FIFO order.  None = FIFO.
    tiebreak_seed: Optional[int] = None
    #: Free-form executor options (e.g. the chaos kind's failure script).
    options: dict = field(default_factory=dict)

    def key(self) -> dict:
        """The identity the merge and BENCH_*.json are keyed by."""
        key = {
            "experiment": self.experiment,
            "kind": self.kind,
            "variant": self.config.variant(),
            "size": self.config.size,
            "skew_us": self.max_skew_us,
            "build": self.build,
            "elements": self.elements,
            "seed": self.config.seed,
            "iterations": self.iterations,
        }
        if self.tiebreak_seed is not None:
            # Only present in race-check sweeps, so ordinary BENCH keys
            # stay byte-identical to previous schema-1 files.
            key["tiebreak"] = self.tiebreak_seed
        return key

    def label(self) -> str:
        return (f"{self.experiment}/{self.kind} n={self.config.size} "
                f"elems={self.elements} skew={self.max_skew_us:g} "
                f"build={self.build} seed={self.config.seed}")

    def to_dict(self) -> dict:
        d = {
            "experiment": self.experiment,
            "kind": self.kind,
            "config": self.config.to_dict(),
            "build": self.build,
            "elements": self.elements,
            "max_skew_us": self.max_skew_us,
            "iterations": self.iterations,
            "warmup": self.warmup,
            "collect_invariants": self.collect_invariants,
            "options": self.options,
        }
        if self.tiebreak_seed is not None:
            d["tiebreak_seed"] = self.tiebreak_seed
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "SweepPoint":
        return cls(
            experiment=d["experiment"],
            kind=d["kind"],
            config=ConfigSpec.from_dict(d["config"]),
            build=d["build"],
            elements=int(d["elements"]),
            max_skew_us=float(d.get("max_skew_us", 0.0)),
            iterations=int(d.get("iterations", 100)),
            warmup=int(d.get("warmup", 3)),
            collect_invariants=bool(d.get("collect_invariants", False)),
            tiebreak_seed=(None if d.get("tiebreak_seed") is None
                           else int(d["tiebreak_seed"])),
            options=dict(d.get("options", {})),
        )

    def repro_command(self) -> str:
        """Shell command that replays exactly this point, serially, in a
        fresh process — pasted into worker-failure errors."""
        spec = json.dumps(self.to_dict(), sort_keys=True)
        return ("PYTHONPATH=src python -m repro.orchestrate run-point "
                f"'{spec}'")


@dataclass
class PointResult:
    """What a worker hands back for one completed point."""

    point: SweepPoint
    #: Scalar metrics only — this is what BENCH_*.json records and what
    #: the compare CLI diffs.  Bit-identical across --jobs settings.
    metrics: dict
    #: Host wall-clock seconds for this point (worker-side measurement).
    wall_time_s: float
    #: Simulator work counters (events/ops/processes) for the run.
    counters: dict
    #: The full benchmark result object (CpuUtilResult / LatencyResult),
    #: for table assembly in the parent.  None for metric-only kinds.
    result: Any = None
    #: InvariantMonitor report when point.collect_invariants was set.
    invariant_report: Optional[dict] = None


# ---------------------------------------------------------------------------
# executors
# ---------------------------------------------------------------------------

def _run_cpu_util(point: SweepPoint, config: ClusterConfig):
    from ..bench.cpu_util import cpu_util_benchmark
    r = cpu_util_benchmark(config, build_from_tag(point.build),
                           elements=point.elements,
                           max_skew_us=point.max_skew_us,
                           iterations=point.iterations, warmup=point.warmup)
    metrics = {
        "avg_util_us": r.avg_util_us,
        "direct_avg_util_us": r.direct_avg_util_us,
        "signals": float(r.signals),
    }
    counters = dict(r.sim_counters) or {"events": r.events, "ops": r.ops}
    return r, metrics, counters


def _run_latency(point: SweepPoint, config: ClusterConfig):
    from ..bench.latency import latency_benchmark
    r = latency_benchmark(config, build_from_tag(point.build),
                          elements=point.elements,
                          iterations=point.iterations, warmup=point.warmup)
    metrics = {
        "avg_latency_us": r.avg_latency_us,
        "median_latency_us": r.median_latency_us,
        "one_way_us": r.one_way_us,
        "signals": float(r.signals),
    }
    counters = dict(r.sim_counters) or {"events": r.events, "ops": r.ops}
    return r, metrics, counters


def _run_nicred_cpu(point: SweepPoint, config: ClusterConfig):
    from ..bench.nicred import nicred_cpu_util
    util = nicred_cpu_util(config, elements=point.elements,
                           max_skew_us=point.max_skew_us,
                           iterations=point.iterations)
    return util, {"avg_util_us": float(util)}, {}


def _run_nicred_latency(point: SweepPoint, config: ClusterConfig):
    from ..bench.nicred import nicred_latency
    lat = nicred_latency(config, elements=point.elements,
                         iterations=point.iterations)
    return lat, {"avg_latency_us": float(lat)}, {}


def _run_fault_reduce(point: SweepPoint, config: ClusterConfig):
    from ..bench.faulted import fault_reduce_benchmark
    r = fault_reduce_benchmark(
        config, build_from_tag(point.build), elements=point.elements,
        iterations=point.iterations,
        gap_us=float(point.options.get("gap_us", 200.0)))
    metrics = {
        "first_result": r.first_result,
        "last_result": r.last_result,
        "completed_ranks": float(r.completed_ranks),
        "survivor_ok": float(r.survivor_ok),
        "makespan_us": r.makespan_us,
        "signals": float(r.signals),
    }
    counters = dict(r.sim_counters) or {"events": r.events, "ops": r.ops}
    return r, metrics, counters


def _run_tenancy(point: SweepPoint, config: ClusterConfig):
    """Multi-tenant service point: N declarative jobs on one shared
    fabric (repro.tenancy).  ``point.options`` carries the ClusterSpec
    and JobSpec dicts; ``point.config`` mirrors the spec's lowered
    ConfigSpec so the BENCH key's variant digest reflects the topology
    knobs.  Returns no live result object (a Cluster does not cross the
    process-pool pickle boundary); everything BENCH needs is in the
    metrics."""
    from ..tenancy import ClusterSpec, JobSpec, run_tenancy
    del config  # the spec rebuilds its own config (kept in options)
    spec = ClusterSpec.from_dict(point.options["cluster"])
    jobs = [JobSpec.from_dict(j) for j in point.options["jobs"]]
    r = run_tenancy(spec, jobs,
                    solo_baseline=bool(point.options.get("solo", True)))
    return None, r.metrics(), dict(r.sim_counters)


def _run_chaos(point: SweepPoint, config: ClusterConfig):
    """Deliberately unreliable executor for exercising the retry path
    (tests and fault drills only).  Fails until a counter file records
    ``succeed_after`` prior attempts, then returns a fixed metric."""
    import os
    counter_file = point.options["counter_file"]
    succeed_after = int(point.options.get("succeed_after", 1))
    attempts = 0
    if os.path.exists(counter_file):
        with open(counter_file) as fh:
            attempts = int(fh.read().strip() or 0)
    attempts += 1
    with open(counter_file, "w") as fh:
        fh.write(str(attempts))
    if attempts <= succeed_after:
        raise RuntimeError(f"chaos point failing on purpose "
                           f"(attempt {attempts}/{succeed_after})")
    return None, {"attempts": float(attempts)}, {}


def _run_schedule(point: SweepPoint, config: ClusterConfig):
    """Schedule-IR point (repro.schedule): lower the collective named in
    ``options`` to a Schedule, apply the listed rewrite passes, and execute
    it through the interpreter on every rank.  ``options["passes"]`` holds
    pass specs (a name, or ``[name, kwargs]`` after a JSON round trip)."""
    from ..bench.scheduled import scheduled_benchmark
    passes = tuple(tuple(p) if isinstance(p, list) else p
                   for p in point.options.get("passes", ()))
    r = scheduled_benchmark(
        config, build_from_tag(point.build),
        lowering=point.options.get("lowering", "reduce.nab"),
        passes=passes, elements=point.elements,
        iterations=point.iterations, warmup=point.warmup)
    metrics = {
        "avg_latency_us": r.avg_latency_us,
        "median_latency_us": r.median_latency_us,
        "nseg": float(r.nseg),
        "steps": float(r.steps),
        "signals": float(r.signals),
    }
    counters = dict(r.sim_counters) or {"events": r.events, "ops": r.ops}
    return r, metrics, counters


def _run_pap(point: SweepPoint, config: ClusterConfig):
    """PAP workload point (repro.workload): allreduce makespan under the
    config's arrival pattern with the algorithm named in ``options``
    (nab/ab/pipelined legacy paths or the schedule-driven sra/pra)."""
    from ..bench.pap import pap_benchmark
    r = pap_benchmark(config, algo=point.options.get("algo", "nab"),
                      elements=point.elements,
                      iterations=point.iterations, warmup=point.warmup)
    metrics = {
        "avg_makespan_us": r.avg_makespan_us,
        "median_makespan_us": r.median_makespan_us,
        "signals": float(r.signals),
    }
    # Spread stats + kappa describe the trace, not the algorithm — still
    # per-point so every BENCH row is self-contained.
    metrics.update(r.arrival_stats)
    counters = dict(r.sim_counters) or {"events": r.events, "ops": r.ops}
    return r, metrics, counters


def pap_smoke_points(*, seed: int = 1, iterations: int = 6, size: int = 8,
                     collect_invariants: bool = True) -> list["SweepPoint"]:
    """CI smoke grid for the PAP workload layer (repro.workload): two
    arrival patterns x four allreduce algorithms on one quiet cluster.
    The algorithm rides in the experiment tag (``pap_smoke-bursty-sra``)
    because SweepPoint.key() does not cover executor options; the
    workload override alone also distinguishes the config variant
    digest per pattern."""
    patterns = {
        "uniform": WorkloadParams(pattern="uniform_random", scale_us=400.0),
        "bursty": WorkloadParams(pattern="bursty", scale_us=1200.0,
                                 jitter_us=50.0, straggler_frac=0.25),
    }
    algos = ("nab", "ab", "sra", "pra")
    return [
        SweepPoint(
            experiment=f"pap_smoke-{tag}-{algo}", kind="pap",
            config=ConfigSpec("quiet", size, seed, workload=workload),
            build="ab" if algo == "ab" else "nab",
            elements=256, iterations=iterations, warmup=1,
            options={"algo": algo},
            collect_invariants=collect_invariants)
        for tag, workload in patterns.items()
        for algo in algos
    ]


def smoke_points(*, seed: int = 1, iterations: int = 10,
                 sizes: tuple = (2, 4, 8),
                 collect_invariants: bool = True) -> list["SweepPoint"]:
    """The CI smoke grid: fig7-shaped, seconds not minutes."""
    return [
        SweepPoint(experiment="smoke", kind="cpu_util",
                   config=ConfigSpec("paper", size, seed),
                   build=build, elements=4, max_skew_us=1000.0,
                   iterations=iterations,
                   collect_invariants=collect_invariants)
        for size in sizes
        for build in ("nab", "ab")
    ]


def topo_smoke_points(*, seed: int = 1, iterations: int = 8, size: int = 8,
                      collect_invariants: bool = True) -> list["SweepPoint"]:
    """CI smoke grid for the topology/tree-shape registries: every
    topology crossed with two tree shapes, both builds, under the
    invariant monitor (INV-FIFO included)."""
    shapes = (("binomial", 2), ("bine", 2))
    return [
        SweepPoint(
            experiment="topo_smoke", kind="cpu_util",
            config=ConfigSpec(
                "paper", size, seed,
                net=NetParams(topology=topo),
                mpi=MpiParams(tree_shape=shape, tree_radix=radix)),
            build=build, elements=4, max_skew_us=1000.0,
            iterations=iterations,
            collect_invariants=collect_invariants)
        for topo in ("crossbar", "fattree", "torus")
        for shape, radix in shapes
        for build in ("nab", "ab")
    ]


def faults_smoke_points(*, seed: int = 1, iterations: int = 6,
                        size: int = 8,
                        collect_invariants: bool = True
                        ) -> list["SweepPoint"]:
    """CI smoke grid for the fault-injection subsystem: one scenario per
    injector (plus a fault-free baseline), mostly on the crossbar with one
    fattree cross-check.  Crash scenarios are AB-only — the blocking
    non-bypass reduce has no recovery layer and would hang on the victim
    (see ``repro.bench.faulted``); suppression is AB-only because the
    non-bypass build never arms NIC signals."""
    scenarios = [
        # (tag, FaultParams, net override or None, builds)
        ("baseline", None, None, ("nab", "ab")),
        ("burst",
         FaultParams(burst_prob=0.02, burst_len=3,
                     descriptor_timeout_us=20000.0, timeout_retries=3),
         None, ("nab", "ab")),
        ("burst_fattree",
         FaultParams(burst_prob=0.02, burst_len=3,
                     descriptor_timeout_us=20000.0, timeout_retries=3),
         NetParams(topology="fattree", fattree_hosts_per_switch=4),
         ("ab",)),
        ("degrade",
         FaultParams(degrade_start_us=200.0, degrade_end_us=1200.0,
                     degrade_latency_factor=4.0,
                     degrade_bandwidth_factor=3.0),
         None, ("nab", "ab")),
        ("suppress",
         FaultParams(suppress_node=4, suppress_start_us=0.0,
                     suppress_end_us=1500.0),
         None, ("ab",)),
        ("pause",
         FaultParams(pause_rank=2, pause_at_us=300.0,
                     pause_duration_us=800.0),
         None, ("nab", "ab")),
        ("crash",
         FaultParams(crash_rank=6, crash_at_us=400.0, tree_heal=True,
                     descriptor_timeout_us=300.0, timeout_retries=2),
         None, ("ab",)),
    ]
    return [
        SweepPoint(
            experiment="faults_smoke", kind="fault_reduce",
            config=ConfigSpec("paper", size, seed, net=net, faults=faults),
            build=build, elements=4, iterations=iterations,
            collect_invariants=collect_invariants)
        for _tag, faults, net, builds in scenarios
        for build in builds
    ]


def pipeline_smoke_points(*, seed: int = 1, iterations: int = 6,
                          size: int = 16,
                          collect_invariants: bool = True
                          ) -> list["SweepPoint"]:
    """CI smoke grid for the segmented pipeline (repro.pipeline): a
    large-message latency comparison of the whole-message baseline
    against the fixed and greedy schedules (segment_size_bytes=0 maps to
    no override, so the baseline keys stay identical to a pipeline-free
    checkout), plus the crash+heal-mid-pipeline scenario.  The fault
    point's pacing must stay inside the busiest parent's RX budget —
    eager segmented reduces have no end-to-end flow control, so
    overpacing turns into honest abandons, not a hang (DESIGN.md §11)."""
    variants = [
        # (pipeline override or None, builds)
        (None, ("nab", "ab")),
        (PipelineParams(segment_size_bytes=2048, max_inflight_segments=3),
         ("nab", "ab")),
        (PipelineParams(segment_size_bytes=2048, max_inflight_segments=3,
                        schedule="greedy"), ("ab",)),
    ]
    points = [
        SweepPoint(
            experiment="pipeline_smoke", kind="latency",
            config=ConfigSpec("paper", size, seed, pipeline=pipeline),
            build=build, elements=1024, iterations=iterations,
            collect_invariants=collect_invariants)
        for pipeline, builds in variants
        for build in builds
    ]
    points.append(SweepPoint(
        experiment="pipeline_smoke", kind="fault_reduce",
        config=ConfigSpec(
            "quiet", 32, seed,
            faults=FaultParams(crash_rank=24, crash_at_us=900.0,
                               tree_heal=True,
                               descriptor_timeout_us=300.0,
                               timeout_retries=2),
            pipeline=PipelineParams(segment_size_bytes=2048,
                                    max_inflight_segments=3)),
        build="ab", elements=2048, iterations=iterations,
        options={"gap_us": 1200.0},
        collect_invariants=collect_invariants))
    return points


def schedule_smoke_points(*, seed: int = 1, iterations: int = 6,
                          size: int = 8,
                          collect_invariants: bool = True
                          ) -> list["SweepPoint"]:
    """CI smoke grid for the schedule IR (repro.schedule): each build's
    reduce lowering (``reduce.nab`` / ``reduce.ab``) on two tree shapes,
    pass-off (lowered whole-message, pipeline disarmed) against pass-on
    (the ``pipeline_segments`` rewrite produces the segmentation the armed
    config plans).  1024 doubles on the chain shape is where pipelining
    visibly wins — the crossover ``fig_schedule`` plots.  The pass variant
    is encoded in the experiment tag because SweepPoint.key() does not
    cover executor options (the pipeline override alone also changes the
    config variant digest, but the tag keeps BENCH rows readable)."""
    lowerings = {"nab": "reduce.nab", "ab": "reduce.ab"}
    variants = [
        # (tag, pipeline override or None, passes)
        ("whole", None, ()),
        ("pass",
         PipelineParams(segment_size_bytes=2048, max_inflight_segments=3),
         ("pipeline_segments",)),
    ]
    return [
        SweepPoint(
            experiment=f"schedule_smoke-{tag}", kind="schedule",
            config=ConfigSpec("paper", size, seed,
                              mpi=MpiParams(tree_shape=shape),
                              pipeline=pipeline),
            build=build, elements=1024, iterations=iterations,
            options={"lowering": lowerings[build], "passes": list(passes)},
            collect_invariants=collect_invariants)
        for shape in ("binomial", "chain")
        for tag, pipeline, passes in variants
        for build in ("nab", "ab")
    ]


def tenancy_smoke_points(*, seed: int = 1, iterations: int = 5,
                         collect_invariants: bool = True
                         ) -> list["SweepPoint"]:
    """CI smoke grid for the multi-tenant service (repro.tenancy): 1 and
    2 co-tenant jobs on an oversubscribed fat-tree and a torus, both
    builds, spread placement (the adversarial one — every collective
    crosses uplinks, so fat-tree co-tenants genuinely contend; on the
    torus, dimension-order routing keeps column-spread tenants
    link-disjoint, a free demonstration that placement x topology
    decides contention).  Jobs alternate reduce/allreduce and arrive
    staggered.  Each point also runs the per-job solo baselines, so
    slowdown and min-max fairness land in BENCH json.  The co-tenant
    count is encoded in the experiment tag (``tenancy_smoke-2j``)
    because SweepPoint.key() does not cover executor options."""
    from ..tenancy import ClusterSpec, JobSpec
    clusters = [
        ClusterSpec(hosts=16, factory="quiet", seed=seed,
                    topology="fattree", fattree_hosts_per_switch=4,
                    fattree_oversubscription=4.0),
        ClusterSpec(hosts=16, factory="quiet", seed=seed,
                    topology="torus"),
    ]
    collectives = ("reduce", "allreduce")
    points = []
    for cluster in clusters:
        for njobs in (1, 2):
            for build in ("nab", "ab"):
                jobs = [
                    JobSpec(name=f"t{i}", nranks=4,
                            collective=collectives[i % len(collectives)],
                            elements=2048, build=build,
                            iterations=iterations, warmup=1,
                            max_skew_us=100.0, arrival_us=25.0 * i,
                            placement="spread")
                    for i in range(njobs)
                ]
                points.append(SweepPoint(
                    experiment=f"tenancy_smoke-{njobs}j", kind="tenancy",
                    config=cluster.to_config_spec(),
                    build=build, elements=2048, max_skew_us=100.0,
                    iterations=iterations, warmup=1,
                    collect_invariants=collect_invariants,
                    options={"cluster": cluster.to_dict(),
                             "jobs": [j.to_dict() for j in jobs],
                             "solo": True}))
    return points


def scale_smoke_points(*, seed: int = 1, iterations: int = 2,
                       sizes: tuple = (1024, 2048, 4096),
                       collect_invariants: bool = False
                       ) -> list["SweepPoint"]:
    """The large-scale DES throughput sweep (``orchestrate smoke-scale``):
    1024/2048/4096-rank extrapolated clusters on the two multi-hop
    topologies, AB build only.  This grid exists to exercise the scaled
    event core (calendar queue, route cache, indexed unexpected queue) at
    sizes the fig-grade sweeps never reach, and to put an ``events_per_sec``
    number in CI for every (size, topology) cell.  Iterations are tiny and
    the invariant monitor is off by default — the hard ``timeout-minutes``
    on the CI job is the wall-clock gate, so the whole sweep must stay
    minutes, not hours."""
    nets = (NetParams(topology="fattree", fattree_hosts_per_switch=32),
            NetParams(topology="torus"))
    return [
        SweepPoint(experiment="scale_smoke", kind="cpu_util",
                   config=ConfigSpec("extrapolated", size, seed, net=net),
                   build="ab", elements=4, max_skew_us=1000.0,
                   iterations=iterations, warmup=1,
                   collect_invariants=collect_invariants)
        for size in sizes
        for net in nets
    ]


KINDS: dict[str, Callable] = {
    "cpu_util": _run_cpu_util,
    "latency": _run_latency,
    "nicred_cpu_util": _run_nicred_cpu,
    "nicred_latency": _run_nicred_latency,
    "fault_reduce": _run_fault_reduce,
    "tenancy": _run_tenancy,
    "chaos": _run_chaos,
    "schedule": _run_schedule,
    "pap": _run_pap,
}


def execute_point(point: SweepPoint) -> PointResult:
    """Run one point to completion in the current process.

    This is the function worker processes execute; it must stay importable
    at module top level (picklable by reference) and free of global state
    beyond the registries above.
    """
    try:
        runner = KINDS[point.kind]
    except KeyError:
        raise ValueError(f"unknown point kind {point.kind!r}; "
                         f"known: {sorted(KINDS)}") from None
    config = point.config.build()

    monitor = None
    if point.collect_invariants:
        from ..analysis import COLLECT, InvariantMonitor, \
            set_default_monitor_factory
        reports: list = []

        def _factory():
            m = InvariantMonitor(mode=COLLECT)
            reports.append(m)
            return m
        set_default_monitor_factory(_factory)
    from ..sim.events import get_default_tiebreak_seed, \
        set_default_tiebreak_seed
    prev_tiebreak = get_default_tiebreak_seed()
    if point.tiebreak_seed is not None:
        set_default_tiebreak_seed(point.tiebreak_seed)
    t0 = time.perf_counter()
    try:
        result, metrics, counters = runner(point, config)
    finally:
        # Restore unconditionally: pool workers are reused across points,
        # so a leaked tiebreak seed would silently perturb later points.
        set_default_tiebreak_seed(prev_tiebreak)
        if point.collect_invariants:
            set_default_monitor_factory(None)
            monitor = reports
    wall = time.perf_counter() - t0

    invariant_report = None
    if monitor:
        invariant_report = {
            "checks": sum(m.checks for m in monitor),
            "violation_count": sum(len(m.violations) for m in monitor),
            "violations": [v.to_dict() for m in monitor
                           for v in m.violations],
        }
    return PointResult(point=point, metrics=metrics, wall_time_s=wall,
                       counters=counters, result=result,
                       invariant_report=invariant_report)
