"""Process-pool sweep runner with deterministic merge and crash retry.

Every :class:`~repro.orchestrate.points.SweepPoint` is an independent,
single-threaded, bit-deterministic simulation, so a sweep is embarrassingly
parallel: fan the points out over a pool of worker processes and merge the
results back **by submission index**, never by completion order.  For a
fixed point list the merged metrics are therefore bit-identical for any
``--jobs`` value — the property the CI smoke gate asserts.

Failure handling: a point that raises (or whose worker process dies) is
retried up to ``retries`` times in a fresh pool.  When retries are
exhausted a :class:`PointFailed` is raised whose message embeds the
failing point's exact serial repro command
(``python -m repro.orchestrate run-point '<json>'``), so a flaky CI log is
one copy-paste away from a local reproduction.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Optional, Sequence

from .points import PointResult, SweepPoint, execute_point

ProgressFn = Callable[[str], None]


class PointFailed(RuntimeError):
    """A sweep point kept failing after all retries."""

    def __init__(self, point: SweepPoint, cause: BaseException,
                 attempts: int):
        self.point = point
        self.cause = cause
        self.attempts = attempts
        super().__init__(
            f"sweep point failed after {attempts} attempt(s): "
            f"{point.label()}\n"
            f"  last error: {type(cause).__name__}: {cause}\n"
            f"  reproduce serially with:\n"
            f"    {point.repro_command()}")


def run_points(points: Sequence[SweepPoint], *, jobs: int = 1,
               retries: int = 1,
               progress: Optional[ProgressFn] = None,
               cache=None) -> list[PointResult]:
    """Execute ``points`` and return results in submission order.

    ``jobs <= 1`` runs everything serially in-process (no pickling, no
    pool); ``jobs > 1`` fans out over a ``ProcessPoolExecutor``.  Both
    paths share the retry policy, and both produce identical metrics —
    the simulator is deterministic per (config, seed), and the merge is
    keyed by index, not completion order.

    ``cache`` (a :class:`repro.tenancy.cache.ResultCache`) short-circuits
    any point whose content address is already stored — the served
    result carries the *original* metrics and wall time, so a warm sweep
    is byte-identical to the cold one — and stores every freshly
    executed point on the way out.  Cache hits preserve submission-order
    merging: hits fill their index immediately, misses run through the
    normal serial/pool path.
    """
    points = list(points)
    if cache is None:
        return _run_all(points, jobs=jobs, retries=retries,
                        progress=progress)
    results: list[Optional[PointResult]] = [None] * len(points)
    misses: list[tuple[int, SweepPoint]] = []
    for i, point in enumerate(points):
        hit = cache.get(point)
        if hit is not None:
            results[i] = hit
            if progress is not None:
                progress(f"{point.label()} -> served from cache")
        else:
            misses.append((i, point))
    fresh = _run_all([p for _, p in misses], jobs=jobs, retries=retries,
                     progress=progress)
    for (i, _), res in zip(misses, fresh):
        cache.put(res)
        results[i] = res
    return results  # type: ignore[return-value]


def _run_all(points: list[SweepPoint], *, jobs: int, retries: int,
             progress: Optional[ProgressFn]) -> list[PointResult]:
    if jobs <= 1 or len(points) <= 1:
        return [_run_serial(p, retries=retries, progress=progress)
                for p in points]
    return _run_pool(points, jobs=jobs, retries=retries, progress=progress)


def _report(progress: Optional[ProgressFn], res: PointResult) -> None:
    if progress is None:
        return
    metrics = ", ".join(f"{k}={v:.2f}" for k, v in
                        sorted(res.metrics.items()))
    progress(f"{res.point.label()} -> {metrics} "
             f"[{res.wall_time_s * 1e3:.0f}ms]")


def _run_serial(point: SweepPoint, *, retries: int,
                progress: Optional[ProgressFn]) -> PointResult:
    attempt = 0
    while True:
        attempt += 1
        try:
            res = execute_point(point)
        except Exception as exc:
            if attempt > retries:
                raise PointFailed(point, exc, attempt) from exc
            continue
        _report(progress, res)
        return res


def _run_pool(points: list[SweepPoint], *, jobs: int, retries: int,
              progress: Optional[ProgressFn]) -> list[PointResult]:
    results: list[Optional[PointResult]] = [None] * len(points)
    pending = list(enumerate(points))
    attempts = {i: 0 for i in range(len(points))}
    while pending:
        failures: list[tuple[int, SweepPoint, BaseException]] = []
        # A fresh pool per round: a hard worker death (BrokenProcessPool)
        # poisons the executor for every outstanding future, so the only
        # safe retry unit is the whole remaining batch.
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {pool.submit(execute_point, p): (i, p)
                       for i, p in pending}
            for future in as_completed(futures):
                i, p = futures[future]
                attempts[i] += 1
                try:
                    results[i] = future.result()
                except Exception as exc:
                    failures.append((i, p, exc))
                else:
                    _report(progress, results[i])
        if not failures:
            break
        exhausted = [(i, p, exc) for i, p, exc in failures
                     if attempts[i] > retries]
        if exhausted:
            i, p, exc = exhausted[0]
            raise PointFailed(p, exc, attempts[i]) from exc
        pending = [(i, p) for i, p, _ in failures]
    return results  # type: ignore[return-value]
