"""Segmented, pipelined application-bypass collectives (repro.pipeline).

The paper's AB protocol bypasses the application for messages below the
eager limit; larger reductions fall back to the blocking store-and-forward
tree.  This subsystem opens the large-message path: a
:class:`~repro.config.PipelineParams` block is compiled by the
:class:`~repro.pipeline.segmenter.Segmenter` into per-segment chunks, each
small enough to travel as an ordinary AB eager packet.  Internal nodes keep
a *window* of per-segment reduce descriptors open, fold each arriving chunk
asynchronously and forward it to the parent before later chunks arrive
(cut-through reduction), so a long message streams through the tree instead
of being staged whole at every level.

Disarmed (``segment_size_bytes == 0``, the default) the subsystem is never
constructed and every simulated metric is bit-identical to a build without
it.

Modules
-------
``segmenter``
    :class:`Segment` / :class:`Segmenter`: compile a ``PipelineParams``
    block into chunk plans (fixed or greedy ramp-up schedules).
``reduce``
    :class:`AbPipeline`: the pipelined AB reduce and the Träff-style
    pipelined allreduce (segmented reduce overlapped with segmented
    broadcast, reusing :mod:`repro.core.broadcast`).
``numerics``
    The documented reassociation-tolerance policy for floating-point SUM.
"""

from .numerics import reassociation_tolerance
from .segmenter import Segment, Segmenter, plan_segments

__all__ = [
    "Segment",
    "Segmenter",
    "plan_segments",
    "reassociation_tolerance",
]
