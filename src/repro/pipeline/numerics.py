"""Numerical policy for segmented reductions.

Integer (and bitwise) reductions are associative and commutative exactly,
so a segmented reduce must return the *bit-identical* result of the
unsegmented one — the property suite asserts equality with no tolerance.

Floating-point SUM is only associative up to rounding.  Segmentation does
not change which values are combined per element, but on internal
application-bypass nodes it can change the *order*: whole-message AB folds
children in packet-arrival order, and the pipelined variant folds each
segment in that segment's own arrival order, which may differ between the
two runs.  The result is a classic reassociation error, bounded by the
standard summation-error model: for ``n`` summands of magnitude ``~m`` the
worst-case relative error of any summation order is ``(n - 1) * eps``
(Higham, *Accuracy and Stability of Numerical Algorithms*, Sec. 4.2).
Comparing two different orders doubles the bound.

Policy (documented, tested in ``tests/property/test_pipeline_numerics.py``):
segmented and unsegmented float SUM must agree to a relative tolerance of
``2 * (n - 1) * eps`` with a small safety factor, where ``n`` is the number
of contributions per element (the communicator size).  MIN/MAX/PROD of the
same inputs are order-exact for the benchmark value ranges and are held to
exact equality by the suite.
"""

from __future__ import annotations

import numpy as np

#: Safety factor over the analytic reassociation bound — absorbs the
#: difference between worst-case and attained error without masking
#: genuine combination bugs (which are wrong by whole contributions, many
#: orders of magnitude above this).
SAFETY = 4.0


def reassociation_tolerance(dtype: np.dtype, contributions: int) -> float:
    """Relative tolerance for comparing two summation orders.

    ``contributions`` is how many values were summed per element (for a
    reduction over a communicator, its size).  Integer dtypes return 0.0 —
    they must match exactly.
    """
    dt = np.dtype(dtype)
    if dt.kind not in ("f", "c"):
        return 0.0
    eps = float(np.finfo(dt).eps)
    return SAFETY * 2.0 * max(contributions - 1, 1) * eps
