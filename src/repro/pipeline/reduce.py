"""Pipelined application-bypass reduce / allreduce (repro.pipeline).

The whole-message AB protocol (``repro.core.engine``) gives every internal
node exactly one reduce descriptor per collective; descriptors match
incoming packets by sender FIFO.  The pipelined variant generalizes this to
a *window*: an internal node keeps up to ``max_inflight_segments``
per-segment descriptors open at once, each accumulating into a disjoint
slice of one staging buffer.  When a segment's last child contribution is
folded, the engine forwards that slice to the parent and — via the
descriptor's ``on_complete`` callback — opens the next segment's
descriptor, all inside the progress hook, with no application involvement
(cut-through reduction).  Segmented packets carry their ``(instance, seg)``
identity and are matched exactly, because FIFO matching cannot tell two
open segments of the same instance apart.

The pipelined **allreduce** composes the segmented reduce with the
application-bypass broadcast extension (:mod:`repro.core.broadcast`),
Träff-style: the root folds segment *k* and immediately broadcasts it down
the tree while segments *k+1..n* are still climbing up, so the reduce and
broadcast phases overlap almost entirely for long messages.

Fault composition (repro.faults): neighbors are recomputed heal-aware at
every descriptor *push*, so a subtree healed mid-pipeline re-parents the
remaining segments while earlier segments are still in flight; per-segment
descriptors carry their tree context and recovery timers, making the
engine's timeout/heal machinery work on them unchanged.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ..mpich.collectives import tree
from ..mpich.collectives.reduce import _finish_root
from ..mpich.communicator import Communicator
from ..mpich.message import TAG_REDUCE, AbHeader
from ..mpich.operations import Op
from ..sim.cpu import Ledger
from ..sim.events import PRIORITY_TIMER
from ..sim.process import Busy, WaitFor
from ..core.delay import exit_delay_window
from ..core.descriptor import ReduceDescriptor
from ..core.plan import CollectivePlan
from .segmenter import Segment, Segmenter, plan_segments


class PipelineStats:
    """Per-rank counters for the pipelined collectives."""

    __slots__ = ("pipelined_reduces", "pipelined_allreduces",
                 "segments_sent", "segments_folded", "segments_folded_async",
                 "root_segment_folds", "pipeline_stalls", "inflight_hwm",
                 "stale_segments_dropped")

    def __init__(self) -> None:
        #: Collectives that took the pipelined path on this rank.
        self.pipelined_reduces = 0
        self.pipelined_allreduces = 0
        #: Segment-tagged AB sends (leaf streams + internal forwards).
        self.segments_sent = 0
        #: Segment folds on internal nodes, and the subset performed by the
        #: asynchronous component (progress driven by signals/other calls).
        self.segments_folded = 0
        self.segments_folded_async = 0
        #: Segment folds performed synchronously at the root.
        self.root_segment_folds = 0
        #: Segmented packets that arrived before their descriptor was open
        #: (window exhausted or sender raced ahead) and had to be buffered —
        #: each is one copy the pipeline failed to bypass.
        self.pipeline_stalls = 0
        #: High-water mark of simultaneously open segment descriptors.
        self.inflight_hwm = 0
        #: Late segments from an already-abandoned child, discarded on
        #: arrival (fault runs only; zero on healthy clusters).
        self.stale_segments_dropped = 0


class _WindowState:
    """Per-call window bookkeeping for one pipelined reduce instance."""

    __slots__ = ("segments", "staging", "comm", "shape", "root", "size",
                 "rel", "root_world", "instance", "op", "window", "plan",
                 "nseg", "next_seg", "open", "completed", "advancing")

    def __init__(self, segments: list[Segment], staging: np.ndarray,
                 comm: Communicator, shape, root: int, size: int, rel: int,
                 root_world: int, instance: int, op: Op, window: int,
                 plan: Optional[CollectivePlan] = None):
        self.segments = segments
        self.staging = staging
        self.comm = comm
        self.shape = shape
        self.root = root
        self.size = size
        self.rel = rel
        self.root_world = root_world
        self.instance = instance
        self.op = op
        self.window = window
        self.plan = plan
        self.nseg = len(segments)
        self.next_seg = 0
        self.open = 0
        self.completed = 0
        #: Re-entrancy latch: pushing a descriptor can synchronously fold
        #: buffered contributions, complete it, and call back into
        #: :meth:`AbPipeline._advance`; the latch flattens that recursion
        #: into the outer push loop.
        self.advancing = False


class AbPipeline:
    """Pipelined segmented collectives for one rank's AB engine."""

    def __init__(self, engine):
        self.engine = engine
        self.costs = engine.costs
        self.sim = engine.sim
        self.params = engine.node.config.pipeline
        self.segmenter = Segmenter(self.params)
        self.stats = PipelineStats()

    # ------------------------------------------------------------------
    # eligibility
    # ------------------------------------------------------------------
    def plan_for(self, sendbuf: np.ndarray) -> Optional[list[Segment]]:
        """Segment plan if this buffer should pipeline, else None.

        Pipelining engages when the plan has at least two segments and every
        segment fits the AB eager path — the decision depends only on the
        (globally identical) config and buffer geometry, so all ranks agree
        without negotiation.
        """
        params = self.engine.node.pipeline_params_for(sendbuf.nbytes)
        segments = plan_segments(params, sendbuf)
        if segments is None:
            return None
        limit = min(self.costs.ab_eager_limit_bytes,
                    self.costs.eager_limit_bytes)
        if max(s.nbytes for s in segments) > limit:
            return None
        return segments

    # ------------------------------------------------------------------
    # pipelined MPI_Reduce
    # ------------------------------------------------------------------
    def reduce(self, sendbuf: np.ndarray, op: Op, root: int,
               comm: Communicator, recvbuf: Optional[np.ndarray],
               ledger: Ledger, segments: list[Segment], *,
               plan: Optional[CollectivePlan] = None) -> Generator:
        """Pipelined AB reduce; ``ledger`` already carries the call/decision
        charges from :meth:`AbEngine.reduce`, which delegates here."""
        engine = self.engine
        size = comm.size
        me = comm.rank_of_world(engine.rank.rank)
        instance = engine._next_instance(comm)
        ledger.charge(self.costs.tree_setup_us, "mpi")
        nbytes = np.asarray(sendbuf).nbytes
        shape = engine.rank.tree_shape_for(nbytes)
        window = engine.node.pipeline_params_for(nbytes).max_inflight_segments
        rel = tree.relative_rank(me, root, size)
        root_world = comm.world_rank(root)
        self.stats.pipelined_reduces += 1
        flat = np.ascontiguousarray(sendbuf).reshape(-1)

        if rel == 0:
            engine.stats.root_reduces += 1
            result = yield from self._root_fold(
                flat, segments, op, root, comm, ledger, instance,
                np.asarray(sendbuf).shape, recvbuf)
            return result

        parent_world, children_world = self._neighbors(
            comm, shape, root, size, rel, instance, plan=plan)
        if not children_world:
            # Leaf (by position, or every subtree below crashed): stream the
            # segments back-to-back; nothing to wait for.
            engine.stats.leaf_sends += 1
            for s in segments:
                self._emit(flat[s.offset:s.offset + s.count], parent_world,
                           comm, root_world, instance, s.index,
                           len(segments), ledger)
            yield Busy.from_ledger(ledger)
            return None

        # ----- internal node: windowed Fig. 3 flow --------------------
        engine.stats.ab_reduces += 1
        progress = engine.rank.progress
        progress.active_depth += 1
        engine._sync_depth += 1
        try:
            if engine.signal_pins == 0:
                engine.nic.disable_signals(ledger)
            # One staging copy for the whole message; each segment's
            # descriptor accumulates into its disjoint slice.
            staging = np.array(flat, copy=True)
            ledger.charge(self.costs.copy_us(staging.nbytes), "copy")
            st = _WindowState(segments, staging, comm, shape, root, size,
                              rel, root_world, instance, op, window,
                              plan=plan)
            self._advance(st, ledger)
            yield Busy.from_ledger(ledger)

            # Walk/poll with the exit-delay window (Sec. IV-E); segments
            # still open at the deadline complete asynchronously, each one
            # pulling the next through ``on_complete`` — full bypass.
            deadline = self.sim.now + exit_delay_window(engine.params, size)
            while st.completed < st.nseg:
                trigger = engine.nic.rx_notifier.wait()
                loop_ledger = Ledger()
                progress.drain(loop_ledger)
                if loop_ledger.total > 0.0:
                    yield Busy.from_ledger(loop_ledger)
                if st.completed >= st.nseg:
                    engine.stats.window_catches += 1
                    break
                if self.sim.now >= deadline:
                    engine.stats.window_expires += 1
                    break
                self.sim.at(deadline, trigger.fire, None)
                yield WaitFor(trigger, poll_category="poll")
        finally:
            progress.active_depth -= 1
            engine._sync_depth -= 1

        exit_ledger = Ledger()
        if not engine.descriptors.empty or engine.signal_pins > 0:
            engine.nic.enable_signals(exit_ledger)
        if engine.monitor is not None:
            engine.monitor.on_reduce_exit(engine.rank.rank, self.sim.now)
        if exit_ledger.total > 0.0:
            yield Busy.from_ledger(exit_ledger)
        return None

    # ------------------------------------------------------------------
    # pipelined MPI_Allreduce (Träff-style reduce/bcast overlap)
    # ------------------------------------------------------------------
    def allreduce(self, sendbuf: np.ndarray, op: Op, comm: Communicator,
                  segments: list[Segment], *,
                  plan: Optional[CollectivePlan] = None) -> Generator:
        """Segmented reduce-to-0 overlapped with segmented AB broadcast."""
        engine = self.engine
        root = 0
        me = comm.rank_of_world(engine.rank.rank)
        # The broadcast extension must exist before any bcast packet can
        # arrive; every rank constructs it on its first pipelined allreduce,
        # which is guaranteed to precede the root's first segment broadcast
        # (that needs every rank's contribution first).
        bcaster = self._broadcaster(comm)
        self.stats.pipelined_allreduces += 1
        flat = np.ascontiguousarray(sendbuf).reshape(-1)
        shape = np.asarray(sendbuf).shape

        if me == root:
            result = yield from self._root_allreduce(
                flat, segments, op, root, comm, bcaster, shape)
            return result

        # Up phase: the ordinary entry point re-checks eligibility and runs
        # the pipelined reduce (leaf stream or windowed descriptors); it
        # returns with segments still in flight, which is exactly the
        # overlap the down phase then rides.
        yield from engine.reduce(flat, op, root, comm, plan=plan)
        out = np.empty_like(flat)
        for s in segments:
            yield from bcaster.bcast(out[s.offset:s.offset + s.count],
                                     root, comm)
        return out.reshape(shape)

    def _root_allreduce(self, flat: np.ndarray, segments: list[Segment],
                        op: Op, root: int, comm: Communicator, bcaster,
                        shape) -> Generator:
        """Root: fold segment k, broadcast it, move to k+1 — the reduce of
        later segments overlaps the broadcast of earlier ones."""
        engine = self.engine
        ledger = Ledger()
        ledger.charge(self.costs.call_overhead_us, "mpi")
        ledger.charge(self.costs.ab_decision_us, "ab")
        instance = engine._next_instance(comm)
        ledger.charge(self.costs.tree_setup_us, "mpi")
        engine.stats.root_reduces += 1
        self.stats.pipelined_reduces += 1
        size = comm.size
        tshape = engine.rank.tree_shape_for(flat.nbytes)
        kids = [tree.absolute_rank(c, root, size)
                for c in tshape.children(0, size)]
        acc = np.array(flat, copy=True)
        ledger.charge(self.costs.copy_us(acc.nbytes), "copy")
        yield Busy.from_ledger(ledger)
        tmp = np.empty(max(s.count for s in segments), dtype=acc.dtype)
        for s in segments:
            yield from self._fold_root_segment(acc, tmp, s, op, kids, comm,
                                               instance)
            yield from bcaster.bcast(acc[s.offset:s.offset + s.count],
                                     root, comm)
        return acc.reshape(shape)

    # ------------------------------------------------------------------
    # root fold (plain pipelined reduce)
    # ------------------------------------------------------------------
    def _root_fold(self, flat: np.ndarray, segments: list[Segment], op: Op,
                   root: int, comm: Communicator, ledger: Ledger,
                   instance: int, shape, recvbuf) -> Generator:
        """Root of a pipelined reduce: blocking seg-major fold.

        The root cannot bypass (``MPI_Reduce`` must return the result,
        paper Sec. II) but it still benefits: it folds segment k while its
        children are combining k+1, instead of waiting for whole messages
        to be staged at every level below.
        """
        engine = self.engine
        size = comm.size
        tshape = engine.rank.tree_shape_for(flat.nbytes)
        kids = [tree.absolute_rank(c, root, size)
                for c in tshape.children(0, size)]
        acc = np.array(flat, copy=True)
        ledger.charge(self.costs.copy_us(acc.nbytes), "copy")
        yield Busy.from_ledger(ledger)
        if kids:
            tmp = np.empty(max(s.count for s in segments), dtype=acc.dtype)
            for s in segments:
                yield from self._fold_root_segment(acc, tmp, s, op, kids,
                                                   comm, instance)
        return _finish_root(acc.reshape(shape), recvbuf)

    def _fold_root_segment(self, acc: np.ndarray, tmp: np.ndarray,
                           s: Segment, op: Op, kids: list[int],
                           comm: Communicator, instance: int) -> Generator:
        """Blocking-receive one segment from every child and fold it in.

        Per-(child → root) segment streams are emitted in ascending segment
        order (leaves stream in order; internal forwards happen in
        completion order, which the per-child FIFO makes ascending), so the
        plain FIFO receive match picks up exactly segment ``s`` from each
        child."""
        engine = self.engine
        for child in kids:
            child_world = comm.world_rank(child)
            yield from engine.rank.recv(tmp[:s.count], child, TAG_REDUCE,
                                        comm, _context=comm.coll_context)
            op_ledger = Ledger()
            op_ledger.charge(self.costs.op_us(s.count), "op")
            op.apply(acc[s.offset:s.offset + s.count], tmp[:s.count])
            self.stats.root_segment_folds += 1
            if engine.monitor is not None:
                engine.monitor.on_segment_fold(
                    engine.rank.rank, child_world, comm.coll_context,
                    instance, s.index, self.sim.now)
            yield Busy.from_ledger(op_ledger)

    # ------------------------------------------------------------------
    # window machinery (internal nodes)
    # ------------------------------------------------------------------
    def _advance(self, st: _WindowState, ledger: Ledger) -> None:
        """Open descriptors until the window is full or segments run out."""
        if st.advancing:
            return
        st.advancing = True
        try:
            while st.open < st.window and st.next_seg < st.nseg:
                self._push_segment(st, ledger)
        finally:
            st.advancing = False

    def _push_segment(self, st: _WindowState, ledger: Ledger) -> None:
        engine = self.engine
        s = st.segments[st.next_seg]
        st.next_seg += 1
        # Heal-aware neighbors at *push* time: a subtree healed while
        # earlier segments were in flight re-parents the remaining ones.
        parent_world, children_world = self._neighbors(
            st.comm, st.shape, st.root, st.size, st.rel, st.instance,
            plan=st.plan)
        acc = st.staging[s.offset:s.offset + s.count]
        if not children_world:
            # Every subtree below crashed mid-pipeline: degenerate to a
            # leaf-style stream for the remaining segments.
            self._emit(acc, parent_world, st.comm, st.root_world,
                       st.instance, s.index, st.nseg, ledger)
            st.completed += 1
            return
        desc = ReduceDescriptor(
            context_id=st.comm.coll_context, root_world=st.root_world,
            instance=st.instance, parent_world=parent_world,
            children_world=children_world, op=st.op, acc=acc,
            tag=TAG_REDUCE, created_at=self.sim.now,
            comm=st.comm, shape=st.shape, root=st.root, size=st.size,
            rel=st.rel, seg=s.index, nseg=st.nseg,
            on_complete=lambda d, lg, _st=st: self._segment_done(_st, lg))
        ledger.charge(self.costs.ab_descriptor_us, "descriptor")
        engine.descriptors.push(desc)
        st.open += 1
        self.stats.inflight_hwm = max(self.stats.inflight_hwm, st.open)
        engine.node.tracer.emit("ab.segment.enqueue",
                                node=engine.rank.rank, instance=st.instance,
                                seg=s.index, nseg=st.nseg,
                                children=len(children_world))
        if engine._timeout_us > 0.0:
            desc.timeout_event = self.sim.schedule(
                engine._timeout_us, engine._on_descriptor_timeout, desc, 1,
                priority=PRIORITY_TIMER)
        # Stalled arrivals (window was full when they landed) are consumed
        # straight from the AB unexpected queue — may complete the
        # descriptor immediately and re-enter _advance via on_complete.
        engine._consume_unexpected(desc, ledger)

    def _segment_done(self, st: _WindowState, ledger: Ledger) -> None:
        """``on_complete`` of a segment descriptor: slide the window."""
        st.open -= 1
        st.completed += 1
        self._advance(st, ledger)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _emit(self, data: np.ndarray, dst_world: int, comm: Communicator,
              root_world: int, instance: int, seg: int, nseg: int,
              ledger: Ledger) -> None:
        """One segment-tagged AB eager send."""
        engine = self.engine
        header = AbHeader(root=root_world, instance=instance, kind="reduce",
                          seg=seg, nseg=nseg)
        engine.rank.progress.start_send(data, dst_world, TAG_REDUCE,
                                        comm.coll_context, ledger, ab=header)
        self.stats.segments_sent += 1
        if engine.monitor is not None:
            engine.monitor.on_segment_emit(
                engine.rank.rank, dst_world, comm.coll_context, instance,
                seg, self.sim.now)

    def _neighbors(self, comm: Communicator, shape, root: int, size: int,
                   rel: int, instance: int, *,
                   plan: Optional[CollectivePlan] = None
                   ) -> tuple[int, list[int]]:
        """(parent_world, children_world), healed when faults are armed.

        A schedule-injected ``plan`` short-circuits the derivation, but only
        on healthy runs — healing must keep re-routing mid-pipeline."""
        engine = self.engine
        if plan is not None and not engine._heal:
            return plan.parent_world, list(plan.children_world)
        kids_rel = shape.children(rel, size)
        if engine._heal:
            naive_parent = comm.world_rank(
                tree.absolute_rank(shape.parent(rel, size), root, size))
            parent_world = engine._live_ancestor_world(
                comm, shape, root, size, shape.parent(rel, size))
            if parent_world != naive_parent:
                engine.stats.sends_rerouted += 1
                engine._report_fault("send_rerouted", instance=instance,
                                     parent=parent_world)
            children_world, healed = engine._live_fringe(
                comm, shape, root, size, kids_rel)
            if healed:
                engine.stats.subtrees_healed += healed
                engine._report_fault("subtree_healed", instance=instance,
                                     healed=healed)
        else:
            parent_world = comm.world_rank(
                tree.absolute_rank(shape.parent(rel, size), root, size))
            children_world = [
                comm.world_rank(tree.absolute_rank(c, root, size))
                for c in kids_rel
            ]
        return parent_world, children_world

    def _broadcaster(self, comm: Communicator):
        from ..core.broadcast import KIND, AbBroadcast
        bcaster = self.engine.extensions.get(KIND)
        if bcaster is None:
            bcaster = AbBroadcast(self.engine)
        bcaster.register_comm(comm)
        return bcaster
