"""Compile a :class:`~repro.config.PipelineParams` block into segments.

A *segment* is a contiguous run of elements of the reduced (or broadcast)
buffer; segments partition the buffer exactly and never split an element.
Two schedules exist:

``fixed``
    Every segment holds ``segment_size_bytes`` worth of elements (the last
    one takes the remainder).  Uniform segments keep the steady-state
    pipeline full and are the right default for long messages.

``greedy``
    Ramp-up: the first segment is a quarter of the configured size and each
    subsequent segment doubles until the configured size is reached.  Small
    head segments reach the root sooner, which shortens the pipeline-fill
    latency that dominates mid-sized messages.

Both schedules are pure functions of ``(params, element count, itemsize)``
— every rank computes the identical plan from its own config, which is what
makes the per-segment descriptor matching globally consistent without any
negotiation traffic.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import PipelineParams


class Segment:
    """One contiguous chunk of a segmented collective buffer."""

    __slots__ = ("index", "offset", "count", "nbytes")

    def __init__(self, index: int, offset: int, count: int, itemsize: int):
        self.index = index
        #: Element offset / element count within the flattened buffer.
        self.offset = offset
        self.count = count
        self.nbytes = count * itemsize

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Segment #{self.index} [{self.offset}:"
                f"{self.offset + self.count}] {self.nbytes}B>")


class Segmenter:
    """Turns (element count, itemsize) into a deterministic segment plan."""

    def __init__(self, params: PipelineParams):
        params.validate()
        self.params = params

    def plan(self, total_count: int, itemsize: int) -> list[Segment]:
        """Segment plan for ``total_count`` elements of ``itemsize`` bytes.

        Always returns at least one segment (a single whole-buffer segment
        when the buffer fits, or when the subsystem is disarmed); callers
        treat a one-segment plan as "do not pipeline".
        """
        if total_count <= 0:
            return [Segment(0, 0, max(total_count, 0), itemsize)]
        if not self.params.armed:
            return [Segment(0, 0, total_count, itemsize)]
        if self.params.segment_size_bytes == "auto":
            raise TypeError(
                "cannot plan segments from an unresolved 'auto' config; "
                "resolve via Node.pipeline_params_for() first")
        full = max(1, self.params.segment_size_bytes // itemsize)
        counts = (self._greedy_counts(total_count, full)
                  if self.params.schedule == "greedy"
                  else self._fixed_counts(total_count, full))
        segments: list[Segment] = []
        offset = 0
        for index, count in enumerate(counts):
            segments.append(Segment(index, offset, count, itemsize))
            offset += count
        return segments

    @staticmethod
    def _fixed_counts(total: int, full: int) -> list[int]:
        counts = [full] * (total // full)
        if total % full:
            counts.append(total % full)
        return counts

    @staticmethod
    def _greedy_counts(total: int, full: int) -> list[int]:
        counts: list[int] = []
        cur = max(1, full // 4)
        remaining = total
        while remaining > 0:
            take = min(cur, remaining)
            counts.append(take)
            remaining -= take
            cur = min(cur * 2, full)
        return counts


def plan_segments(params: Optional[PipelineParams],
                  buf: np.ndarray) -> Optional[list[Segment]]:
    """Segment plan for an armed config, or None when pipelining is off.

    Returns None when the block is missing/disarmed or the buffer yields
    fewer than two segments — the single-chunk cases where segmentation
    would only add per-segment overhead without any overlap to show for it.
    """
    if params is None or not params.armed:
        return None
    arr = np.asarray(buf)
    if arr.size <= 0:
        return None
    segments = Segmenter(params).plan(arr.size, arr.itemsize)
    if len(segments) < 2:
        return None
    return segments
