"""Reporting utilities: trace-based timelines and span extraction."""

from .chrome import chrome_trace_events, chrome_trace_json, write_chrome_trace
from .timeline import descriptor_spans, render_timeline, signal_counts

__all__ = [
    "render_timeline", "descriptor_spans", "signal_counts",
    "chrome_trace_events", "chrome_trace_json", "write_chrome_trace",
]
