"""Chrome-tracing (about://tracing / Perfetto) export of simulation traces.

Converts :class:`~repro.sim.trace.Tracer` records into the Trace Event
Format so runs can be inspected in any Chromium browser or Perfetto:

* instant events for packet sends/receives, signals and descriptor
  transitions (one track per node);
* complete ("X") events for descriptor lifetimes (enqueue → complete),
  which render as bars — the Fig. 2 gray spans;
* complete ("X") events for segment-descriptor lifetimes
  (``ab.segment.enqueue`` → ``ab.segment.complete``, repro.pipeline),
  one bar per in-flight segment so the window's overlap is visible.

Usage::

    tracer = Tracer(enabled=True)
    out = run_program(config, program, build=MpiBuild.AB, tracer=tracer)
    write_chrome_trace(tracer, "run.json")
"""

from __future__ import annotations

import json
from ..sim.trace import Tracer

#: trace kinds rendered as instant events, with display names.
_INSTANT = {
    "nic.send": "send",
    "nic.recv": "recv",
    "nic.signal": "SIGNAL",
    "nic.retransmit": "retransmit",
    "ab.descriptor.enqueue": "descriptor+",
    "ab.segment.enqueue": "segment+",
}


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """Build the Trace Event Format event list from collected records."""
    events: list[dict] = []
    open_descriptors: dict[tuple[int, int], float] = {}
    open_segments: dict[tuple[int, int, int], float] = {}
    for rec in tracer.records:
        kind = rec["kind"]
        node = rec.get("node", -1)
        ts = rec["t"]  # already microseconds, the TEF unit
        if kind == "ab.descriptor.enqueue":
            open_descriptors[(node, rec["instance"])] = ts
        if kind == "ab.descriptor.complete":
            start = open_descriptors.pop((node, rec["instance"]), None)
            if start is not None:
                events.append({
                    "name": f"reduce#{rec['instance']} ({rec['mode']})",
                    "cat": "descriptor",
                    "ph": "X",
                    "ts": start,
                    "dur": max(ts - start, 0.01),
                    "pid": 0,
                    "tid": node,
                })
            continue
        if kind == "ab.segment.enqueue":
            open_segments[(node, rec["instance"], rec["seg"])] = ts
        if kind == "ab.segment.complete":
            start = open_segments.pop(
                (node, rec["instance"], rec["seg"]), None)
            if start is not None:
                events.append({
                    "name": (f"seg#{rec['instance']}.{rec['seg']}"
                             f"/{rec['nseg']} ({rec['mode']})"),
                    "cat": "segment",
                    "ph": "X",
                    "ts": start,
                    "dur": max(ts - start, 0.01),
                    "pid": 0,
                    "tid": node,
                })
            continue
        name = _INSTANT.get(kind)
        if name is None:
            continue
        args = {k: v for k, v in rec.items()
                if k not in ("t", "kind", "node") and
                isinstance(v, (int, float, str))}
        events.append({
            "name": name,
            "cat": kind.split(".")[0],
            "ph": "i",
            "s": "t",           # thread-scoped instant
            "ts": ts,
            "pid": 0,
            "tid": node,
            "args": args,
        })
    return events


def chrome_trace_json(tracer: Tracer, *, label: str = "repro") -> str:
    """Serialize the trace to a Trace Event Format JSON string."""
    doc = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"tool": "repro", "label": label,
                      "timeUnit": "microseconds"},
    }
    return json.dumps(doc, indent=1)


def write_chrome_trace(tracer: Tracer, path: str, *,
                       label: str = "repro") -> int:
    """Write the trace to ``path``; returns the number of events."""
    events = chrome_trace_events(tracer)
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"tool": "repro", "label": label,
                      "timeUnit": "microseconds"},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    return len(events)
