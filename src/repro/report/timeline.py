"""ASCII timelines from trace records — the textual analogue of the
paper's Fig. 2 time-line diagrams.

Enable tracing on a cluster, run a program, then render::

    from repro.sim.trace import Tracer
    from repro.report.timeline import render_timeline

    tracer = Tracer(enabled=True)
    out = run_program(config, program, build=MpiBuild.AB, tracer=tracer)
    print(render_timeline(tracer, nodes=range(8), t_end=out.finished_at))

Each node gets one lane.  Markers:

* ``E`` — AB reduce descriptor enqueued (the rank left ``MPI_Reduce``)
* ``C`` — descriptor completed (final result sent to the parent)
* ``e`` / ``c`` — segment descriptor enqueued / completed (repro.pipeline)
* ``!`` — NIC signal delivered to the host
* ``s`` / ``r`` — packet send / receive at the NIC
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..sim.trace import Tracer

#: Marker priority: later entries overwrite earlier ones in a cell.
_MARKERS = (
    ("nic.send", "s"),
    ("nic.recv", "r"),
    ("nic.signal", "!"),
    ("ab.segment.enqueue", "e"),
    ("ab.segment.complete", "c"),
    ("ab.descriptor.enqueue", "E"),
    ("ab.descriptor.complete", "C"),
)


def render_timeline(tracer: Tracer, *, nodes: Iterable[int],
                    t_start: float = 0.0, t_end: Optional[float] = None,
                    width: int = 100) -> str:
    """Render one lane per node over ``[t_start, t_end]``."""
    records = tracer.records
    if t_end is None:
        t_end = max((r["t"] for r in records), default=1.0)
    if t_end <= t_start:
        raise ValueError("empty time window")
    span = t_end - t_start
    nodes = list(nodes)
    lanes = {n: ["-"] * width for n in nodes}
    counts: dict[int, int] = {n: 0 for n in nodes}
    for kind, marker in _MARKERS:
        for rec in records:
            if rec["kind"] != kind:
                continue
            node = rec.get("node")
            if node not in lanes:
                continue
            if not (t_start <= rec["t"] <= t_end):
                continue
            col = min(width - 1, int((rec["t"] - t_start) / span * width))
            lanes[node][col] = marker
            counts[node] += 1

    header = (f"timeline {t_start:.0f}..{t_end:.0f} us   "
              f"(s=send r=recv !=signal E=descriptor C=complete "
              f"e/c=segment)")
    lines = [header]
    ruler = " " * 8 + "".join(
        "|" if i % 10 == 0 else " " for i in range(width))
    lines.append(ruler)
    for node in nodes:
        lines.append(f"rank {node:>2} {''.join(lanes[node])}")
    return "\n".join(lines)


def descriptor_spans(tracer: Tracer) -> list[dict]:
    """Extract (node, instance, enqueue-to-complete span, mode) tuples."""
    spans = []
    for rec in tracer.of_kind("ab.descriptor.complete"):
        spans.append({
            "node": rec["node"],
            "instance": rec["instance"],
            "span_us": rec["span"],
            "mode": rec["mode"],
        })
    return spans


def segment_spans(tracer: Tracer) -> list[dict]:
    """Per-segment descriptor lifetimes (repro.pipeline): one entry per
    ``ab.segment.complete``, carrying the window position and mode."""
    spans = []
    for rec in tracer.of_kind("ab.segment.complete"):
        spans.append({
            "node": rec["node"],
            "instance": rec["instance"],
            "seg": rec["seg"],
            "nseg": rec["nseg"],
            "span_us": rec["span"],
            "mode": rec["mode"],
        })
    return spans


def signal_counts(tracer: Tracer, nodes: Sequence[int]) -> dict[int, int]:
    """Per-node count of delivered NIC signals."""
    counts = {n: 0 for n in nodes}
    for rec in tracer.of_kind("nic.signal"):
        if rec["node"] in counts:
            counts[rec["node"]] += 1
    return counts
