"""SPMD runtime: per-rank contexts and the program launcher."""

from .context import MpiContext
from .profiling import MpiProfile, OpProfile, ProfiledMpi
from .program import ProgramResult, RankProgram, build_cluster, run_program

__all__ = ["MpiContext", "run_program", "build_cluster", "ProgramResult",
           "RankProgram", "ProfiledMpi", "MpiProfile", "OpProfile"]
