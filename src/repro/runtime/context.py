"""Application-facing per-rank context.

An :class:`MpiContext` is what a rank program receives: rank/size sugar, the
MPI operations (delegating to :class:`repro.mpich.rank.MpiRank`), and the
application-side primitives the paper's microbenchmarks need — interruptible
busy-loop compute (which NIC signals may preempt) and access to the virtual
clock.

Rank programs are generators::

    def program(mpi):
        yield from mpi.barrier()
        data = np.full(4, float(mpi.rank))
        result = yield from mpi.reduce(data, op=SUM, root=0)
        yield from mpi.compute(250.0)   # overlap-able application work
        return result
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ..config import AbParams
from ..core.engine import AbEngine
from ..mpich.communicator import Communicator
from ..mpich.operations import SUM, Op
from ..mpich.rank import MpiBuild, MpiRank
from ..sim.process import Busy, Compute


class MpiContext:
    """One rank's application handle."""

    def __init__(self, node, comm_world: Communicator, build: MpiBuild,
                 ab_params: Optional[AbParams] = None):
        self.node = node
        self.sim = node.sim
        self.comm_world = comm_world
        self.build = build
        self.mpi = MpiRank(node, comm_world, build)
        self.ab_engine: Optional[AbEngine] = None
        if build is MpiBuild.AB:
            params = ab_params if ab_params is not None else node.config.ab
            self.ab_engine = AbEngine(self.mpi, params)
            self.mpi.install_ab(self.ab_engine)

    # -- identity ---------------------------------------------------------
    @property
    def rank(self) -> int:
        return self.node.id

    @property
    def size(self) -> int:
        return self.comm_world.size

    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self.sim.now

    def rng_stream(self, purpose: str) -> np.random.Generator:
        """Deterministic per-rank random stream.

        Seeded from the cluster seed and ``(purpose, rank)`` via
        :class:`~repro.sim.random.RngStreams`, so application-level
        randomness is reproducible and isolated — adding a new consumer
        never perturbs existing streams.
        """
        return self.node.rng.node_stream(purpose, self.rank)

    # -- application compute ------------------------------------------------
    def compute(self, duration_us: float, category: str = "app") -> Generator:
        """Interruptible application busy-loop (paper's delay loops).

        NIC signals preempt it; the asynchronous reduction work then extends
        the loop's wall-clock span by exactly its CPU cost, which is how the
        paper's measurement methodology captures bypassed processing.
        """
        if duration_us > 0.0:
            yield Compute(duration_us, category)

    def work(self, duration_us: float, category: str = "app") -> Generator:
        """Non-interruptible work segment (signals deferred to its end)."""
        if duration_us > 0.0:
            yield Busy(duration_us, category)

    # -- point-to-point -------------------------------------------------------
    def send(self, data, dest: int, tag: int = 0, comm=None) -> Generator:
        status = yield from self.mpi.send(np.asarray(data), dest, tag, comm)
        return status

    def recv(self, buffer, source: int, tag: int = -1, comm=None) -> Generator:
        status = yield from self.mpi.recv(buffer, source, tag, comm)
        return status

    def isend(self, data, dest: int, tag: int = 0, comm=None) -> Generator:
        request = yield from self.mpi.isend(np.asarray(data), dest, tag, comm)
        return request

    def irecv(self, buffer, source: int, tag: int = -1, comm=None) -> Generator:
        request = yield from self.mpi.irecv(buffer, source, tag, comm)
        return request

    def wait(self, request) -> Generator:
        status = yield from self.mpi.wait(request)
        return status

    # -- collectives --------------------------------------------------------
    def reduce(self, sendbuf, op: Op = SUM, root: int = 0, comm=None,
               recvbuf=None) -> Generator:
        result = yield from self.mpi.reduce(np.asarray(sendbuf), op, root,
                                            comm, recvbuf)
        return result

    def bcast(self, data, root: int = 0, comm=None, count=None,
              dtype=None) -> Generator:
        result = yield from self.mpi.bcast(data, root, comm, count=count,
                                           dtype=dtype)
        return result

    def barrier(self, comm=None) -> Generator:
        yield from self.mpi.barrier(comm)

    def allreduce(self, sendbuf, op: Op = SUM, comm=None) -> Generator:
        result = yield from self.mpi.allreduce(np.asarray(sendbuf), op, comm)
        return result

    def gather(self, senddata, root: int = 0, comm=None) -> Generator:
        result = yield from self.mpi.gather(np.asarray(senddata), root, comm)
        return result

    # -- diagnostics -----------------------------------------------------------
    def cpu_usage(self) -> dict[str, float]:
        """Per-category CPU time accounted on this node so far."""
        return self.node.cpu.usage_snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MpiContext rank={self.rank}/{self.size} {self.build.value}>"
