"""PMPI-style profiling wrapper for rank contexts.

Wraps an :class:`~repro.runtime.context.MpiContext` and records, per MPI
operation, the call count, total blocked wall-time and bytes moved — the
moral equivalent of the PMPI interposition layer the 2003-era profiling
studies (e.g. Moody et al., the paper's ref. [9]) used to discover that
95% of real-application reductions carry three or fewer elements.

Usage::

    def program(mpi):
        prof = ProfiledMpi(mpi)
        yield from prof.reduce(data, op=SUM, root=0)
        yield from prof.barrier()
        return prof.report()

Only the communication operations are interposed; ``compute``/``work``
pass straight through (they are the application, not MPI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from ..mpich.operations import SUM, Op
from .context import MpiContext


@dataclass
class OpProfile:
    """Accumulated numbers for one MPI entry point."""

    calls: int = 0
    blocked_us: float = 0.0
    bytes_moved: int = 0
    max_call_us: float = 0.0
    #: Calls whose payload the pipeline config would segment (>= 2 chunks).
    segmented_calls: int = 0
    #: Total segments across all segmented calls.
    segments_planned: int = 0
    #: Per-segment byte sizes of the most recent segmented call.
    segment_bytes: list = field(default_factory=list)

    def record(self, elapsed_us: float, nbytes: int) -> None:
        self.calls += 1
        self.blocked_us += elapsed_us
        self.bytes_moved += nbytes
        self.max_call_us = max(self.max_call_us, elapsed_us)

    def record_segments(self, seg_bytes: list) -> None:
        self.segmented_calls += 1
        self.segments_planned += len(seg_bytes)
        self.segment_bytes = list(seg_bytes)

    @property
    def mean_call_us(self) -> float:
        return self.blocked_us / self.calls if self.calls else 0.0

    @property
    def mean_segments_per_call(self) -> float:
        return (self.segments_planned / self.segmented_calls
                if self.segmented_calls else 0.0)


@dataclass
class MpiProfile:
    """Per-rank profile across all interposed operations."""

    rank: int
    ops: dict[str, OpProfile] = field(default_factory=dict)

    def op(self, name: str) -> OpProfile:
        profile = self.ops.get(name)
        if profile is None:
            profile = self.ops[name] = OpProfile()
        return profile

    @property
    def total_blocked_us(self) -> float:
        return sum(p.blocked_us for p in self.ops.values())

    @property
    def total_calls(self) -> int:
        return sum(p.calls for p in self.ops.values())

    def render(self) -> str:
        lines = [f"MPI profile, rank {self.rank}: "
                 f"{self.total_calls} calls, "
                 f"{self.total_blocked_us:.1f} us blocked"]
        for name in sorted(self.ops):
            p = self.ops[name]
            line = (
                f"  {name:<10} calls={p.calls:<5} blocked={p.blocked_us:9.1f}us "
                f"mean={p.mean_call_us:7.2f}us max={p.max_call_us:7.2f}us "
                f"bytes={p.bytes_moved}")
            if p.segmented_calls:
                line += (f" segs={p.segments_planned}"
                         f" ({p.mean_segments_per_call:.1f}/call)")
            lines.append(line)
        return "\n".join(lines)


def _nbytes(data) -> int:
    if data is None:
        return 0
    return np.asarray(data).nbytes


class ProfiledMpi:
    """Interposition wrapper around one rank's :class:`MpiContext`."""

    def __init__(self, mpi: MpiContext):
        self.mpi = mpi
        self.profile = MpiProfile(mpi.rank)

    # -- passthroughs ------------------------------------------------------
    @property
    def rank(self) -> int:
        return self.mpi.rank

    @property
    def size(self) -> int:
        return self.mpi.size

    @property
    def now(self) -> float:
        return self.mpi.now

    def compute(self, duration_us: float, category: str = "app") -> Generator:
        yield from self.mpi.compute(duration_us, category)

    def work(self, duration_us: float, category: str = "app") -> Generator:
        yield from self.mpi.work(duration_us, category)

    # -- interposed operations ----------------------------------------------
    def _timed(self, name: str, gen, nbytes: int,
               segmented=None) -> Generator:
        t0 = self.mpi.now
        result = yield from gen
        profile = self.profile.op(name)
        profile.record(self.mpi.now - t0, nbytes)
        if segmented is not None:
            profile.record_segments(segmented)
        return result

    def _segment_plan(self, data):
        """Per-segment byte sizes the pipeline config assigns to ``data``,
        or None when segmentation is disarmed / would not engage.  Uses the
        pure planning function, so profiling never perturbs the run."""
        if data is None:
            return None
        params = getattr(self.mpi.node.config, "pipeline", None)
        if params is None or not params.armed:
            return None
        from ..pipeline import plan_segments
        plan = plan_segments(params, np.asarray(data))
        if plan is None:
            return None
        return [s.nbytes for s in plan]

    def send(self, data, dest: int, tag: int = 0, comm=None) -> Generator:
        result = yield from self._timed(
            "send", self.mpi.send(data, dest, tag, comm), _nbytes(data))
        return result

    def recv(self, buffer, source: int, tag: int = -1, comm=None) -> Generator:
        result = yield from self._timed(
            "recv", self.mpi.recv(buffer, source, tag, comm),
            _nbytes(buffer))
        return result

    def reduce(self, sendbuf, op: Op = SUM, root: int = 0, comm=None,
               recvbuf=None) -> Generator:
        result = yield from self._timed(
            "reduce", self.mpi.reduce(sendbuf, op, root, comm, recvbuf),
            _nbytes(sendbuf), segmented=self._segment_plan(sendbuf))
        return result

    def bcast(self, data, root: int = 0, comm=None, count=None,
              dtype=None) -> Generator:
        result = yield from self._timed(
            "bcast", self.mpi.bcast(data, root, comm, count, dtype),
            _nbytes(data), segmented=self._segment_plan(data))
        return result

    def barrier(self, comm=None) -> Generator:
        yield from self._timed("barrier", self.mpi.barrier(comm), 0)

    def allreduce(self, sendbuf, op: Op = SUM, comm=None) -> Generator:
        result = yield from self._timed(
            "allreduce", self.mpi.allreduce(sendbuf, op, comm),
            _nbytes(sendbuf), segmented=self._segment_plan(sendbuf))
        return result

    def gather(self, senddata, root: int = 0, comm=None) -> Generator:
        result = yield from self._timed(
            "gather", self.mpi.gather(senddata, root, comm),
            _nbytes(senddata))
        return result

    def report(self) -> MpiProfile:
        return self.profile
