"""PMPI-style profiling wrapper for rank contexts.

Wraps an :class:`~repro.runtime.context.MpiContext` and records, per MPI
operation, the call count, total blocked wall-time and bytes moved — the
moral equivalent of the PMPI interposition layer the 2003-era profiling
studies (e.g. Moody et al., the paper's ref. [9]) used to discover that
95% of real-application reductions carry three or fewer elements.

Usage::

    def program(mpi):
        prof = ProfiledMpi(mpi)
        yield from prof.reduce(data, op=SUM, root=0)
        yield from prof.barrier()
        return prof.report()

Only the communication operations are interposed; ``compute``/``work``
pass straight through (they are the application, not MPI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from ..mpich.operations import SUM, Op
from .context import MpiContext


@dataclass
class OpProfile:
    """Accumulated numbers for one MPI entry point."""

    calls: int = 0
    blocked_us: float = 0.0
    bytes_moved: int = 0
    max_call_us: float = 0.0

    def record(self, elapsed_us: float, nbytes: int) -> None:
        self.calls += 1
        self.blocked_us += elapsed_us
        self.bytes_moved += nbytes
        self.max_call_us = max(self.max_call_us, elapsed_us)

    @property
    def mean_call_us(self) -> float:
        return self.blocked_us / self.calls if self.calls else 0.0


@dataclass
class MpiProfile:
    """Per-rank profile across all interposed operations."""

    rank: int
    ops: dict[str, OpProfile] = field(default_factory=dict)

    def op(self, name: str) -> OpProfile:
        profile = self.ops.get(name)
        if profile is None:
            profile = self.ops[name] = OpProfile()
        return profile

    @property
    def total_blocked_us(self) -> float:
        return sum(p.blocked_us for p in self.ops.values())

    @property
    def total_calls(self) -> int:
        return sum(p.calls for p in self.ops.values())

    def render(self) -> str:
        lines = [f"MPI profile, rank {self.rank}: "
                 f"{self.total_calls} calls, "
                 f"{self.total_blocked_us:.1f} us blocked"]
        for name in sorted(self.ops):
            p = self.ops[name]
            lines.append(
                f"  {name:<10} calls={p.calls:<5} blocked={p.blocked_us:9.1f}us "
                f"mean={p.mean_call_us:7.2f}us max={p.max_call_us:7.2f}us "
                f"bytes={p.bytes_moved}")
        return "\n".join(lines)


def _nbytes(data) -> int:
    if data is None:
        return 0
    return np.asarray(data).nbytes


class ProfiledMpi:
    """Interposition wrapper around one rank's :class:`MpiContext`."""

    def __init__(self, mpi: MpiContext):
        self.mpi = mpi
        self.profile = MpiProfile(mpi.rank)

    # -- passthroughs ------------------------------------------------------
    @property
    def rank(self) -> int:
        return self.mpi.rank

    @property
    def size(self) -> int:
        return self.mpi.size

    @property
    def now(self) -> float:
        return self.mpi.now

    def compute(self, duration_us: float, category: str = "app") -> Generator:
        yield from self.mpi.compute(duration_us, category)

    def work(self, duration_us: float, category: str = "app") -> Generator:
        yield from self.mpi.work(duration_us, category)

    # -- interposed operations ----------------------------------------------
    def _timed(self, name: str, gen, nbytes: int) -> Generator:
        t0 = self.mpi.now
        result = yield from gen
        self.profile.op(name).record(self.mpi.now - t0, nbytes)
        return result

    def send(self, data, dest: int, tag: int = 0, comm=None) -> Generator:
        result = yield from self._timed(
            "send", self.mpi.send(data, dest, tag, comm), _nbytes(data))
        return result

    def recv(self, buffer, source: int, tag: int = -1, comm=None) -> Generator:
        result = yield from self._timed(
            "recv", self.mpi.recv(buffer, source, tag, comm),
            _nbytes(buffer))
        return result

    def reduce(self, sendbuf, op: Op = SUM, root: int = 0, comm=None,
               recvbuf=None) -> Generator:
        result = yield from self._timed(
            "reduce", self.mpi.reduce(sendbuf, op, root, comm, recvbuf),
            _nbytes(sendbuf))
        return result

    def bcast(self, data, root: int = 0, comm=None, count=None,
              dtype=None) -> Generator:
        result = yield from self._timed(
            "bcast", self.mpi.bcast(data, root, comm, count, dtype),
            _nbytes(data))
        return result

    def barrier(self, comm=None) -> Generator:
        yield from self._timed("barrier", self.mpi.barrier(comm), 0)

    def allreduce(self, sendbuf, op: Op = SUM, comm=None) -> Generator:
        result = yield from self._timed(
            "allreduce", self.mpi.allreduce(sendbuf, op, comm),
            _nbytes(sendbuf))
        return result

    def gather(self, senddata, root: int = 0, comm=None) -> Generator:
        result = yield from self._timed(
            "gather", self.mpi.gather(senddata, root, comm),
            _nbytes(senddata))
        return result

    def report(self) -> MpiProfile:
        return self.profile
