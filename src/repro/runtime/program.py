"""SPMD program launcher.

:func:`run_program` is the top-level entry point most users (and all of the
examples and benchmarks) go through: build a cluster from a config, spawn
one rank process per node running the supplied program generator, drive the
simulation to completion and hand back per-rank results plus the cluster for
post-mortem inspection (CPU accounting, NIC stats, traces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Union

from ..cluster.cluster import Cluster
from ..config import ClusterConfig
from ..mpich.communicator import world_communicator
from ..mpich.rank import MpiBuild
from ..sim.trace import Tracer
from .context import MpiContext

RankProgram = Callable[[MpiContext], Generator]


@dataclass
class ProgramResult:
    """Everything a finished run exposes."""

    cluster: Cluster
    contexts: list[MpiContext]
    results: list[Any]
    finished_at: float

    @property
    def sim(self):
        return self.cluster.sim

    def sim_counters(self) -> dict[str, int]:
        """Event/op/process counts for this run (see Simulator.counters)."""
        return self.cluster.sim.counters()

    def cpu_usage(self, rank: int) -> dict[str, float]:
        return self.cluster.nodes[rank].cpu.usage_snapshot()

    def total_cpu(self, rank: int, *, exclude: tuple[str, ...] = ("app",)) -> float:
        """Accounted CPU time on ``rank``, excluding app compute by default."""
        return self.cluster.nodes[rank].cpu.total_usage(exclude=exclude)


def build_cluster(config: ClusterConfig,
                  tracer: Optional[Tracer] = None) -> Cluster:
    """Instantiate a cluster (exposed separately for multi-phase drivers)."""
    return Cluster(config, tracer)


def run_program(config_or_cluster: Union[ClusterConfig, Cluster],
                program: RankProgram, *,
                build: MpiBuild = MpiBuild.DEFAULT,
                tracer: Optional[Tracer] = None,
                name: str = "rank") -> ProgramResult:
    """Run ``program`` as one process per node; returns a ProgramResult.

    ``program`` is called once per rank with that rank's
    :class:`MpiContext` and must return a generator (the rank's main).
    """
    if isinstance(config_or_cluster, Cluster):
        cluster = config_or_cluster
    else:
        cluster = Cluster(config_or_cluster, tracer)
    world = world_communicator(cluster.size)
    ab_params = cluster.config.ab
    contexts = [
        MpiContext(node, world, build, ab_params)
        for node in cluster.nodes
    ]
    processes = [
        cluster.sim.spawn(program(ctx), name=f"{name}{ctx.rank}",
                          cpu=ctx.node.cpu)
        for ctx in contexts
    ]
    cluster.sim.run()
    monitor = getattr(cluster, "monitor", None)
    if monitor is not None:
        # End-of-run protocol invariants: queues drained, signals idle,
        # copy accounting consistent (repro.analysis.invariants).
        monitor.finalize()
    return ProgramResult(
        cluster=cluster,
        contexts=contexts,
        results=[p.result for p in processes],
        finished_at=cluster.sim.now,
    )
