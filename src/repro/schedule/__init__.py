"""Collective schedules as data (DESIGN.md §15).

A collective run is represented as an explicit :class:`~repro.schedule.ir.Schedule`
— per-rank ordered steps (send/recv/fold/bcast/wait) tagged with segment ids —
instead of orderings baked into engine code.  The package provides:

``ir``
    The frozen, JSON-round-trippable IR plus structural validation.
``lower``
    Lowerings that emit schedules from the existing tree-shape registry
    (whole-message and segmented variants for nab/AB reduce, bcast and
    allreduce).
``passes``
    Pure ``Schedule -> Schedule`` rewrite passes behind a registry:
    Lowery–Langou greedy segment pipelining, reduce+bcast overlap fusion,
    and tree reshaping.
``table``
    The persisted tuning table consulted by ``tree_shape="auto"`` /
    ``segment_size_bytes="auto"`` configs, with a deterministic fallback.
``tune``
    The autotuner CLI (``python -m repro.schedule.tune``) that sweeps
    lowering x shape x segment size through ``repro.orchestrate`` and
    writes the table under ``benchmarks/tuned/``.

Execution of a schedule through the live NIC/fabric machinery lives in
:mod:`repro.core.interpreter` (it needs the engines; keeping it there avoids
an import cycle).
"""

from .ir import (BcastStep, FoldStep, RecvStep, Schedule,
                 ScheduleValidationError, SendStep, Step, WaitStep,
                 reduce_neighbors)
from .lower import LOWERINGS, lower, register_lowering
from .passes import PASSES, PassError, apply_passes, get_pass, register_pass
from .table import (TunedEntry, TuningTable, clear_table_cache,
                    config_tree_shape, default_table_path,
                    load_default_table, resolve_pipeline_params,
                    resolve_tree_shape)

__all__ = [
    "Step", "SendStep", "RecvStep", "FoldStep", "BcastStep", "WaitStep",
    "Schedule", "ScheduleValidationError", "reduce_neighbors",
    "LOWERINGS", "lower", "register_lowering",
    "PASSES", "PassError", "register_pass", "get_pass", "apply_passes",
    "TunedEntry", "TuningTable", "default_table_path", "load_default_table",
    "clear_table_cache", "resolve_tree_shape", "resolve_pipeline_params",
    "config_tree_shape",
]
