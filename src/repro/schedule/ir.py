"""The schedule IR: frozen per-rank step lists with structural validation.

A :class:`Schedule` describes one collective over ``nranks`` communicator
ranks as, for every rank, an *ordered* tuple of steps:

``SendStep(peer, seg)``
    Send this rank's (accumulated) payload for segment ``seg`` to ``peer``
    on the reduce channel.
``RecvStep(peer, seg)``
    Receive a reduce-channel contribution for ``seg`` from ``peer`` into a
    scratch buffer.
``FoldStep(child, seg)``
    Fold the most recent unconsumed receive from ``child`` for ``seg`` into
    the local accumulator.
``WaitStep(children, seg)``
    Application-bypass descriptor completion: the NIC receives *and* folds
    one contribution per child without host involvement.  For validation it
    behaves as a combined recv+fold of every child.
``BcastStep(peer, direction, seg)``
    Broadcast-channel transfer: ``direction == "recv"`` consumes from the
    parent, ``direction == "send"`` forwards to a child.

Segment ids are ``-1`` for whole-message schedules (``nseg == 0``) and
``0 <= seg < nseg`` otherwise.  Peers are communicator ranks.

Validation (:meth:`Schedule.validate`) checks structure, that the send and
receive multisets match exactly on each channel, that every fold has an
unconsumed operand, and — by abstractly executing all ranks against buffered
channels — that no rank blocks forever.
"""

from __future__ import annotations

import dataclasses
import json
from collections import Counter
from dataclasses import dataclass, replace
from typing import Iterable, Optional, Union

from ..errors import ReproError

SCHEDULE_SCHEMA = 1


class ScheduleError(ReproError):
    """Error constructing or transforming a schedule."""


class ScheduleValidationError(ScheduleError):
    """A schedule failed structural or semantic validation."""


class Step:
    """Base class for schedule steps (frozen dataclass subclasses)."""

    op = "step"

    def with_seg(self, seg: int) -> "Step":
        """Return a copy of this step tagged with segment id ``seg``."""
        return replace(self, seg=seg)

    def to_dict(self) -> dict:
        d = {"step": self.op}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            d[f.name] = value
        return d


@dataclass(frozen=True)
class SendStep(Step):
    peer: int
    seg: int = -1
    op = "send"


@dataclass(frozen=True)
class RecvStep(Step):
    peer: int
    seg: int = -1
    op = "recv"


@dataclass(frozen=True)
class FoldStep(Step):
    child: int
    seg: int = -1
    op = "fold"


@dataclass(frozen=True)
class BcastStep(Step):
    peer: int
    direction: str = "send"
    seg: int = -1
    op = "bcast"

    def __post_init__(self) -> None:
        if self.direction not in ("send", "recv"):
            raise ScheduleError(
                "BcastStep direction must be 'send' or 'recv', got %r"
                % (self.direction,))


@dataclass(frozen=True)
class WaitStep(Step):
    children: tuple = ()
    seg: int = -1
    op = "wait"

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", tuple(self.children))


STEP_TYPES = {cls.op: cls for cls in (SendStep, RecvStep, FoldStep,
                                      BcastStep, WaitStep)}

AnyStep = Union[SendStep, RecvStep, FoldStep, BcastStep, WaitStep]


def step_from_dict(d: dict) -> AnyStep:
    kind = d.get("step")
    cls = STEP_TYPES.get(kind)
    if cls is None:
        raise ScheduleError("unknown step tag %r" % (kind,))
    kwargs = {f.name: d[f.name] for f in dataclasses.fields(cls) if f.name in d}
    if cls is WaitStep and "children" in kwargs:
        kwargs["children"] = tuple(kwargs["children"])
    return cls(**kwargs)


@dataclass(frozen=True)
class Schedule:
    """An immutable collective schedule over ``nranks`` communicator ranks."""

    collective: str                      # "reduce" | "bcast" | "allreduce"
    lowering: str                        # registry name that produced it
    nranks: int
    root: int = 0
    nseg: int = 0                        # 0 == whole-message
    meta: tuple = ()                     # ((key, value), ...) provenance pairs
    steps: tuple = ()                    # per-rank tuples of Step

    def __post_init__(self) -> None:
        object.__setattr__(self, "meta", tuple(tuple(kv) for kv in self.meta))
        object.__setattr__(self, "steps", tuple(tuple(s) for s in self.steps))

    # ------------------------------------------------------------------
    # convenience

    def rank_steps(self, rank: int) -> tuple:
        return self.steps[rank]

    @property
    def step_count(self) -> int:
        return sum(len(s) for s in self.steps)

    def with_meta(self, key: str, value: str) -> "Schedule":
        return replace(self, meta=self.meta + ((key, str(value)),))

    def meta_dict(self) -> dict:
        return dict(self.meta)

    # ------------------------------------------------------------------
    # JSON round trip

    def to_dict(self) -> dict:
        return {
            "schema": SCHEDULE_SCHEMA,
            "collective": self.collective,
            "lowering": self.lowering,
            "nranks": self.nranks,
            "root": self.root,
            "nseg": self.nseg,
            "meta": [list(kv) for kv in self.meta],
            "ranks": [[s.to_dict() for s in rank] for rank in self.steps],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Schedule":
        schema = d.get("schema")
        if schema != SCHEDULE_SCHEMA:
            raise ScheduleError(
                "unsupported schedule schema %r (expected %d)"
                % (schema, SCHEDULE_SCHEMA))
        return cls(
            collective=d["collective"],
            lowering=d["lowering"],
            nranks=int(d["nranks"]),
            root=int(d.get("root", 0)),
            nseg=int(d.get("nseg", 0)),
            meta=tuple((str(k), str(v)) for k, v in d.get("meta", [])),
            steps=tuple(tuple(step_from_dict(s) for s in rank)
                        for rank in d.get("ranks", [])),
        )

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # validation

    def validate(self) -> "Schedule":
        """Raise :class:`ScheduleValidationError` on any defect; return self."""
        self._check_structure()
        self._check_matching()
        self._check_fold_operands()
        self._check_progress()
        return self

    def _check_structure(self) -> None:
        if self.collective not in ("reduce", "bcast", "allreduce"):
            raise ScheduleValidationError(
                "unknown collective %r" % (self.collective,))
        if self.nranks < 1:
            raise ScheduleValidationError("nranks must be >= 1")
        if not (0 <= self.root < self.nranks):
            raise ScheduleValidationError(
                "root %d out of range for %d ranks" % (self.root, self.nranks))
        if self.nseg < 0:
            raise ScheduleValidationError("nseg must be >= 0")
        if len(self.steps) != self.nranks:
            raise ScheduleValidationError(
                "schedule has %d rank step lists for %d ranks"
                % (len(self.steps), self.nranks))
        segs = (range(self.nseg) if self.nseg else (-1,))
        valid_segs = frozenset(segs)
        for me, rank in enumerate(self.steps):
            for step in rank:
                peers: Iterable[int]
                if isinstance(step, WaitStep):
                    peers = step.children
                    if not step.children:
                        raise ScheduleValidationError(
                            "rank %d: WaitStep with no children" % me)
                elif isinstance(step, FoldStep):
                    peers = (step.child,)
                elif isinstance(step, (SendStep, RecvStep, BcastStep)):
                    peers = (step.peer,)
                else:
                    raise ScheduleValidationError(
                        "rank %d: unknown step %r" % (me, step))
                for peer in peers:
                    if not (0 <= peer < self.nranks):
                        raise ScheduleValidationError(
                            "rank %d: peer %d out of range in %r"
                            % (me, peer, step))
                    if peer == me:
                        raise ScheduleValidationError(
                            "rank %d: self-referential step %r" % (me, step))
                if step.seg not in valid_segs:
                    raise ScheduleValidationError(
                        "rank %d: segment id %d invalid for nseg=%d in %r"
                        % (me, step.seg, self.nseg, step))

    def _check_matching(self) -> None:
        produced: Counter = Counter()
        consumed: Counter = Counter()
        for me, rank in enumerate(self.steps):
            for step in rank:
                if isinstance(step, SendStep):
                    produced[("p2p", me, step.peer, step.seg)] += 1
                elif isinstance(step, RecvStep):
                    consumed[("p2p", step.peer, me, step.seg)] += 1
                elif isinstance(step, WaitStep):
                    for child in step.children:
                        consumed[("p2p", child, me, step.seg)] += 1
                elif isinstance(step, BcastStep):
                    if step.direction == "send":
                        produced[("bc", me, step.peer, step.seg)] += 1
                    else:
                        consumed[("bc", step.peer, me, step.seg)] += 1
        unmatched_recv = consumed - produced
        if unmatched_recv:
            key = next(iter(sorted(unmatched_recv)))
            raise ScheduleValidationError(
                "receive without a matching send: channel=%s %d->%d seg=%d "
                "(%d unmatched key(s))"
                % (key[0], key[1], key[2], key[3], len(unmatched_recv)))
        unmatched_send = produced - consumed
        if unmatched_send:
            key = next(iter(sorted(unmatched_send)))
            raise ScheduleValidationError(
                "send without a matching receive: channel=%s %d->%d seg=%d "
                "(%d unmatched key(s))"
                % (key[0], key[1], key[2], key[3], len(unmatched_send)))

    def _check_fold_operands(self) -> None:
        for me, rank in enumerate(self.steps):
            pending: Counter = Counter()
            for step in rank:
                if isinstance(step, RecvStep):
                    pending[(step.peer, step.seg)] += 1
                elif isinstance(step, FoldStep):
                    key = (step.child, step.seg)
                    if pending[key] <= 0:
                        raise ScheduleValidationError(
                            "rank %d: fold of child %d seg %d has no "
                            "unconsumed receive" % (me, step.child, step.seg))
                    pending[key] -= 1

    def _check_progress(self) -> None:
        """Abstractly execute all ranks; sends buffer, receives block."""
        channels: Counter = Counter()
        cursors = [0] * self.nranks

        def runnable(me: int, step: AnyStep) -> bool:
            if isinstance(step, (SendStep, FoldStep)):
                return True
            if isinstance(step, RecvStep):
                return channels[("p2p", step.peer, me, step.seg)] > 0
            if isinstance(step, WaitStep):
                return all(channels[("p2p", c, me, step.seg)] > 0
                           for c in step.children)
            if step.direction == "send":
                return True
            return channels[("bc", step.peer, me, step.seg)] > 0

        def execute(me: int, step: AnyStep) -> None:
            if isinstance(step, SendStep):
                channels[("p2p", me, step.peer, step.seg)] += 1
            elif isinstance(step, RecvStep):
                channels[("p2p", step.peer, me, step.seg)] -= 1
            elif isinstance(step, WaitStep):
                for c in step.children:
                    channels[("p2p", c, me, step.seg)] -= 1
            elif isinstance(step, BcastStep):
                if step.direction == "send":
                    channels[("bc", me, step.peer, step.seg)] += 1
                else:
                    channels[("bc", step.peer, me, step.seg)] -= 1

        progressed = True
        while progressed:
            progressed = False
            for me, rank in enumerate(self.steps):
                while cursors[me] < len(rank):
                    step = rank[cursors[me]]
                    if not runnable(me, step):
                        break
                    execute(me, step)
                    cursors[me] += 1
                    progressed = True
        stuck = [me for me in range(self.nranks)
                 if cursors[me] < len(self.steps[me])]
        if stuck:
            me = stuck[0]
            raise ScheduleValidationError(
                "deadlock: %d rank(s) blocked forever (rank %d stuck at %r)"
                % (len(stuck), me, self.steps[me][cursors[me]]))


def reduce_neighbors(schedule: Schedule, rank: int):
    """Derive (parent, children) for ``rank`` from its reduce-phase steps.

    The parent is the peer of the first :class:`SendStep`; children appear in
    first-occurrence order across :class:`FoldStep`/:class:`WaitStep`.
    Returns ``(None, ())`` for the root of a trivial schedule.
    """
    parent: Optional[int] = None
    children: list = []
    seen = set()
    for step in schedule.steps[rank]:
        if isinstance(step, SendStep):
            if parent is None:
                parent = step.peer
        elif isinstance(step, FoldStep):
            if step.child not in seen:
                seen.add(step.child)
                children.append(step.child)
        elif isinstance(step, WaitStep):
            for c in step.children:
                if c not in seen:
                    seen.add(c)
                    children.append(c)
    return parent, tuple(children)
