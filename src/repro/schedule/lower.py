"""Lowerings: emit a :class:`~repro.schedule.ir.Schedule` from a tree shape.

Every lowering has the signature ``(shape, size, *, root=0, nseg=0)`` where
``shape`` is a :class:`repro.topo.trees.TreeShape`, ``size`` the communicator
size and ``nseg`` the number of pipeline segments (``0`` = whole message).
The emitted step orders mirror the legacy engine paths exactly — child order
follows ``shape.children`` for reduce phases and *reversed* children for
broadcast forwarding, segments are walked seg-major — which is what lets the
interpreter in :mod:`repro.core.interpreter` replay them bit-identically.

Registered lowerings:

``reduce.nab``
    Host-level tree reduce (blocking recv+fold per child), whole or
    seg-major segmented — the ``reduce_nab`` path.
``reduce.ab``
    Application-bypass reduce: internal ranks post one NIC descriptor
    (:class:`WaitStep`) per segment, leaves just send; the root folds on the
    host exactly like ``reduce.nab``.
``bcast.tree``
    Tree broadcast with reversed-child forwarding (both the nab
    ``bcast_binomial`` and the AB broadcaster use this order).
``allreduce.reduce_bcast``
    Sequential nab reduce-to-root followed by tree bcast.
``allreduce.ab``
    Sequential AB reduce followed by tree bcast.
``allreduce.pipelined``
    Träff-style overlap: the root interleaves per-segment fold and
    re-broadcast; other ranks run the segmented AB reduce then the segmented
    bcast.  Requires ``nseg >= 2``.
``allreduce.pap_sorted``
    Proficz's sorted-arrival (SRA) allreduce: the tree positions are
    assigned by arrival order — earliest arrivals sit deepest, the latest
    arrival becomes the root — so subtree reductions complete while the
    stragglers are still computing.  Takes ``order=`` (earliest rank
    first, from the workload layer's arrival oracle).
``allreduce.pap_prereduced``
    Proficz's pre-reduced (PRA) allreduce: a reduction *chain* in arrival
    order — each arriving rank eagerly folds the running partial sum and
    forwards it to the next arrival; the last arrival finishes the sum,
    becomes the root and tree-broadcasts the result.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..mpich.collectives import tree
from ..topo.trees import TreeShape
from .ir import (BcastStep, FoldStep, RecvStep, Schedule, ScheduleError,
                 SendStep, WaitStep)

LOWERINGS: Dict[str, Callable[..., Schedule]] = {}


def register_lowering(name: str):
    """Class/function decorator adding a lowering to :data:`LOWERINGS`."""

    def deco(fn):
        if name in LOWERINGS:
            raise ScheduleError("duplicate lowering %r" % (name,))
        LOWERINGS[name] = fn
        fn.lowering_name = name
        return fn

    return deco


def lower(name: str, shape: TreeShape, size: int, *, root: int = 0,
          nseg: int = 0, **kwargs) -> Schedule:
    """Emit a schedule with the named lowering.

    Extra keyword arguments are forwarded to the lowering (the PAP-aware
    lowerings take ``order=``, the arrival order from the workload layer).
    """
    try:
        fn = LOWERINGS[name]
    except KeyError:
        raise ScheduleError(
            "unknown lowering %r (have: %s)"
            % (name, ", ".join(sorted(LOWERINGS)))) from None
    return fn(shape, size, root=root, nseg=nseg, **kwargs)


def _check(shape: TreeShape, size: int, root: int, nseg: int) -> None:
    if size < 1:
        raise ScheduleError("size must be >= 1")
    if not (0 <= root < size):
        raise ScheduleError("root %d out of range for size %d" % (root, size))
    if nseg < 0 or nseg == 1:
        raise ScheduleError("nseg must be 0 (whole message) or >= 2")


def _segs(nseg: int):
    return range(nseg) if nseg else (-1,)


def _family(shape: TreeShape, size: int, root: int, me: int):
    """Absolute (parent, children) for communicator rank ``me``."""
    rel = tree.relative_rank(me, root, size)
    kids = [tree.absolute_rank(c, root, size)
            for c in shape.children(rel, size)]
    parent = (None if rel == 0
              else tree.absolute_rank(shape.parent(rel, size), root, size))
    return parent, kids


def _meta(shape: TreeShape) -> tuple:
    return (("shape", shape.name),)


def _reduce_rank_steps(parent, kids, nseg: int) -> List:
    steps: List = []
    for s in _segs(nseg):
        for c in kids:
            steps.append(RecvStep(c, seg=s))
            steps.append(FoldStep(c, seg=s))
        if parent is not None:
            steps.append(SendStep(parent, seg=s))
    return steps


@register_lowering("reduce.nab")
def lower_reduce_nab(shape: TreeShape, size: int, *, root: int = 0,
                     nseg: int = 0) -> Schedule:
    _check(shape, size, root, nseg)
    ranks = []
    for me in range(size):
        parent, kids = _family(shape, size, root, me)
        ranks.append(tuple(_reduce_rank_steps(parent, kids, nseg)))
    return Schedule("reduce", "reduce.nab", size, root, nseg,
                    meta=_meta(shape), steps=tuple(ranks))


@register_lowering("reduce.ab")
def lower_reduce_ab(shape: TreeShape, size: int, *, root: int = 0,
                    nseg: int = 0) -> Schedule:
    _check(shape, size, root, nseg)
    ranks = []
    for me in range(size):
        parent, kids = _family(shape, size, root, me)
        if parent is None:
            # The AB root folds on the host, exactly like reduce.nab.
            steps = _reduce_rank_steps(parent, kids, nseg)
        elif not kids:
            steps = [SendStep(parent, seg=s) for s in _segs(nseg)]
        else:
            steps = []
            for s in _segs(nseg):
                steps.append(WaitStep(tuple(kids), seg=s))
                steps.append(SendStep(parent, seg=s))
        ranks.append(tuple(steps))
    return Schedule("reduce", "reduce.ab", size, root, nseg,
                    meta=_meta(shape), steps=tuple(ranks))


def _bcast_rank_steps(parent, kids, nseg: int) -> List:
    rkids = list(reversed(kids))
    steps: List = []
    for s in _segs(nseg):
        if parent is not None:
            steps.append(BcastStep(parent, "recv", seg=s))
        for c in rkids:
            steps.append(BcastStep(c, "send", seg=s))
    return steps


@register_lowering("bcast.tree")
def lower_bcast_tree(shape: TreeShape, size: int, *, root: int = 0,
                     nseg: int = 0) -> Schedule:
    _check(shape, size, root, nseg)
    ranks = []
    for me in range(size):
        parent, kids = _family(shape, size, root, me)
        ranks.append(tuple(_bcast_rank_steps(parent, kids, nseg)))
    return Schedule("bcast", "bcast.tree", size, root, nseg,
                    meta=_meta(shape), steps=tuple(ranks))


@register_lowering("allreduce.reduce_bcast")
def lower_allreduce_reduce_bcast(shape: TreeShape, size: int, *, root: int = 0,
                                 nseg: int = 0) -> Schedule:
    red = lower_reduce_nab(shape, size, root=root, nseg=nseg)
    bc = lower_bcast_tree(shape, size, root=root, nseg=nseg)
    steps = tuple(r + b for r, b in zip(red.steps, bc.steps))
    return Schedule("allreduce", "allreduce.reduce_bcast", size, root, nseg,
                    meta=_meta(shape), steps=steps)


@register_lowering("allreduce.ab")
def lower_allreduce_ab(shape: TreeShape, size: int, *, root: int = 0,
                       nseg: int = 0) -> Schedule:
    red = lower_reduce_ab(shape, size, root=root, nseg=nseg)
    bc = lower_bcast_tree(shape, size, root=root, nseg=nseg)
    steps = tuple(r + b for r, b in zip(red.steps, bc.steps))
    return Schedule("allreduce", "allreduce.ab", size, root, nseg,
                    meta=_meta(shape), steps=steps)


@register_lowering("allreduce.pipelined")
def lower_allreduce_pipelined(shape: TreeShape, size: int, *, root: int = 0,
                              nseg: int = 0) -> Schedule:
    _check(shape, size, root, nseg)
    if nseg < 2:
        raise ScheduleError("allreduce.pipelined requires nseg >= 2")
    ranks = []
    for me in range(size):
        parent, kids = _family(shape, size, root, me)
        rkids = list(reversed(kids))
        steps: List = []
        if parent is None:
            # Root: fold segment k, immediately re-broadcast it — the overlap
            # that keeps both reduce and bcast links busy.
            for s in range(nseg):
                for c in kids:
                    steps.append(RecvStep(c, seg=s))
                    steps.append(FoldStep(c, seg=s))
                for c in rkids:
                    steps.append(BcastStep(c, "send", seg=s))
        else:
            if not kids:
                steps.extend(SendStep(parent, seg=s) for s in range(nseg))
            else:
                for s in range(nseg):
                    steps.append(WaitStep(tuple(kids), seg=s))
                    steps.append(SendStep(parent, seg=s))
            for s in range(nseg):
                steps.append(BcastStep(parent, "recv", seg=s))
                for c in rkids:
                    steps.append(BcastStep(c, "send", seg=s))
        ranks.append(tuple(steps))
    return Schedule("allreduce", "allreduce.pipelined", size, root, nseg,
                    meta=_meta(shape), steps=tuple(ranks))


# ---------------------------------------------------------------------------
# PAP-aware allreduce (Proficz, arXiv:1804.05349)
# ---------------------------------------------------------------------------


def _check_order(order, size: int) -> tuple:
    """Normalise an arrival order (earliest rank first) to a permutation."""
    if order is None:
        return tuple(range(size))
    order = tuple(int(r) for r in order)
    if sorted(order) != list(range(size)):
        raise ScheduleError(
            "order must be a permutation of 0..%d, got %r" % (size - 1, order))
    return order


def _pap_meta(shape: TreeShape, order: tuple) -> tuple:
    # The order rides in meta as a string so the schedule stays a flat,
    # JSON-stable value.
    return _meta(shape) + (("order", ",".join(str(r) for r in order)),)


@register_lowering("allreduce.pap_sorted")
def lower_allreduce_pap_sorted(shape: TreeShape, size: int, *, root: int = 0,
                               nseg: int = 0, order=None) -> Schedule:
    """Sorted-arrival (SRA) allreduce: late arrivals sit high in the tree.

    Tree positions are ranked by depth; the earliest-arriving rank takes
    the deepest position and the latest arrival takes position 0 (the
    root), so every subtree below a straggler is already reduced by the
    time it shows up.  ``root`` selects the shape's rotation only when no
    ``order`` is given (the legacy identity-order behaviour); with an
    order, placement *is* the mapping and the emitted root is the latest
    arrival.
    """
    _check(shape, size, root, nseg)
    order = _check_order(order, size)
    depth = []
    for pos in range(size):
        d, p = 0, pos
        while p != 0:
            p = shape.parent(p, size)
            d += 1
        depth.append(d)
    by_depth = sorted(range(size), key=lambda p: (-depth[p], p))
    rank_at_pos = [0] * size
    for arrival, pos in enumerate(by_depth):
        rank_at_pos[pos] = order[arrival]
    pos_of_rank = {r: p for p, r in enumerate(rank_at_pos)}
    ranks = []
    for me in range(size):
        pos = pos_of_rank[me]
        parent = (None if pos == 0
                  else rank_at_pos[shape.parent(pos, size)])
        kids = [rank_at_pos[c] for c in shape.children(pos, size)]
        steps = (_reduce_rank_steps(parent, kids, nseg)
                 + _bcast_rank_steps(parent, kids, nseg))
        ranks.append(tuple(steps))
    return Schedule("allreduce", "allreduce.pap_sorted", size,
                    rank_at_pos[0], nseg, meta=_pap_meta(shape, order),
                    steps=tuple(ranks))


@register_lowering("allreduce.pap_prereduced")
def lower_allreduce_pap_prereduced(shape: TreeShape, size: int, *,
                                   root: int = 0, nseg: int = 0,
                                   order=None) -> Schedule:
    """Pre-reduced (PRA) allreduce: eager chain in arrival order.

    Each rank folds the partial sum of everyone who arrived before it and
    forwards the result to the next arrival, so all reduction work except
    one fold is done before the last rank arrives.  The last arrival
    completes the sum, becomes the root and tree-broadcasts (``shape``
    only affects the broadcast tree).
    """
    _check(shape, size, root, nseg)
    order = _check_order(order, size)
    chain_root = order[-1]
    nxt = {order[i]: order[i + 1] for i in range(size - 1)}
    prev = {order[i]: order[i - 1] for i in range(1, size)}
    ranks = []
    for me in range(size):
        steps: List = []
        for s in _segs(nseg):
            if me in prev:
                steps.append(RecvStep(prev[me], seg=s))
                steps.append(FoldStep(prev[me], seg=s))
            if me in nxt:
                steps.append(SendStep(nxt[me], seg=s))
        bparent, bkids = _family(shape, size, chain_root, me)
        steps.extend(_bcast_rank_steps(bparent, bkids, nseg))
        ranks.append(tuple(steps))
    return Schedule("allreduce", "allreduce.pap_prereduced", size,
                    chain_root, nseg, meta=_pap_meta(shape, order),
                    steps=tuple(ranks))
