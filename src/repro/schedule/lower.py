"""Lowerings: emit a :class:`~repro.schedule.ir.Schedule` from a tree shape.

Every lowering has the signature ``(shape, size, *, root=0, nseg=0)`` where
``shape`` is a :class:`repro.topo.trees.TreeShape`, ``size`` the communicator
size and ``nseg`` the number of pipeline segments (``0`` = whole message).
The emitted step orders mirror the legacy engine paths exactly — child order
follows ``shape.children`` for reduce phases and *reversed* children for
broadcast forwarding, segments are walked seg-major — which is what lets the
interpreter in :mod:`repro.core.interpreter` replay them bit-identically.

Registered lowerings:

``reduce.nab``
    Host-level tree reduce (blocking recv+fold per child), whole or
    seg-major segmented — the ``reduce_nab`` path.
``reduce.ab``
    Application-bypass reduce: internal ranks post one NIC descriptor
    (:class:`WaitStep`) per segment, leaves just send; the root folds on the
    host exactly like ``reduce.nab``.
``bcast.tree``
    Tree broadcast with reversed-child forwarding (both the nab
    ``bcast_binomial`` and the AB broadcaster use this order).
``allreduce.reduce_bcast``
    Sequential nab reduce-to-root followed by tree bcast.
``allreduce.ab``
    Sequential AB reduce followed by tree bcast.
``allreduce.pipelined``
    Träff-style overlap: the root interleaves per-segment fold and
    re-broadcast; other ranks run the segmented AB reduce then the segmented
    bcast.  Requires ``nseg >= 2``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..mpich.collectives import tree
from ..topo.trees import TreeShape
from .ir import (BcastStep, FoldStep, RecvStep, Schedule, ScheduleError,
                 SendStep, WaitStep)

LOWERINGS: Dict[str, Callable[..., Schedule]] = {}


def register_lowering(name: str):
    """Class/function decorator adding a lowering to :data:`LOWERINGS`."""

    def deco(fn):
        if name in LOWERINGS:
            raise ScheduleError("duplicate lowering %r" % (name,))
        LOWERINGS[name] = fn
        fn.lowering_name = name
        return fn

    return deco


def lower(name: str, shape: TreeShape, size: int, *, root: int = 0,
          nseg: int = 0) -> Schedule:
    """Emit a schedule with the named lowering."""
    try:
        fn = LOWERINGS[name]
    except KeyError:
        raise ScheduleError(
            "unknown lowering %r (have: %s)"
            % (name, ", ".join(sorted(LOWERINGS)))) from None
    return fn(shape, size, root=root, nseg=nseg)


def _check(shape: TreeShape, size: int, root: int, nseg: int) -> None:
    if size < 1:
        raise ScheduleError("size must be >= 1")
    if not (0 <= root < size):
        raise ScheduleError("root %d out of range for size %d" % (root, size))
    if nseg < 0 or nseg == 1:
        raise ScheduleError("nseg must be 0 (whole message) or >= 2")


def _segs(nseg: int):
    return range(nseg) if nseg else (-1,)


def _family(shape: TreeShape, size: int, root: int, me: int):
    """Absolute (parent, children) for communicator rank ``me``."""
    rel = tree.relative_rank(me, root, size)
    kids = [tree.absolute_rank(c, root, size)
            for c in shape.children(rel, size)]
    parent = (None if rel == 0
              else tree.absolute_rank(shape.parent(rel, size), root, size))
    return parent, kids


def _meta(shape: TreeShape) -> tuple:
    return (("shape", shape.name),)


def _reduce_rank_steps(parent, kids, nseg: int) -> List:
    steps: List = []
    for s in _segs(nseg):
        for c in kids:
            steps.append(RecvStep(c, seg=s))
            steps.append(FoldStep(c, seg=s))
        if parent is not None:
            steps.append(SendStep(parent, seg=s))
    return steps


@register_lowering("reduce.nab")
def lower_reduce_nab(shape: TreeShape, size: int, *, root: int = 0,
                     nseg: int = 0) -> Schedule:
    _check(shape, size, root, nseg)
    ranks = []
    for me in range(size):
        parent, kids = _family(shape, size, root, me)
        ranks.append(tuple(_reduce_rank_steps(parent, kids, nseg)))
    return Schedule("reduce", "reduce.nab", size, root, nseg,
                    meta=_meta(shape), steps=tuple(ranks))


@register_lowering("reduce.ab")
def lower_reduce_ab(shape: TreeShape, size: int, *, root: int = 0,
                    nseg: int = 0) -> Schedule:
    _check(shape, size, root, nseg)
    ranks = []
    for me in range(size):
        parent, kids = _family(shape, size, root, me)
        if parent is None:
            # The AB root folds on the host, exactly like reduce.nab.
            steps = _reduce_rank_steps(parent, kids, nseg)
        elif not kids:
            steps = [SendStep(parent, seg=s) for s in _segs(nseg)]
        else:
            steps = []
            for s in _segs(nseg):
                steps.append(WaitStep(tuple(kids), seg=s))
                steps.append(SendStep(parent, seg=s))
        ranks.append(tuple(steps))
    return Schedule("reduce", "reduce.ab", size, root, nseg,
                    meta=_meta(shape), steps=tuple(ranks))


def _bcast_rank_steps(parent, kids, nseg: int) -> List:
    rkids = list(reversed(kids))
    steps: List = []
    for s in _segs(nseg):
        if parent is not None:
            steps.append(BcastStep(parent, "recv", seg=s))
        for c in rkids:
            steps.append(BcastStep(c, "send", seg=s))
    return steps


@register_lowering("bcast.tree")
def lower_bcast_tree(shape: TreeShape, size: int, *, root: int = 0,
                     nseg: int = 0) -> Schedule:
    _check(shape, size, root, nseg)
    ranks = []
    for me in range(size):
        parent, kids = _family(shape, size, root, me)
        ranks.append(tuple(_bcast_rank_steps(parent, kids, nseg)))
    return Schedule("bcast", "bcast.tree", size, root, nseg,
                    meta=_meta(shape), steps=tuple(ranks))


@register_lowering("allreduce.reduce_bcast")
def lower_allreduce_reduce_bcast(shape: TreeShape, size: int, *, root: int = 0,
                                 nseg: int = 0) -> Schedule:
    red = lower_reduce_nab(shape, size, root=root, nseg=nseg)
    bc = lower_bcast_tree(shape, size, root=root, nseg=nseg)
    steps = tuple(r + b for r, b in zip(red.steps, bc.steps))
    return Schedule("allreduce", "allreduce.reduce_bcast", size, root, nseg,
                    meta=_meta(shape), steps=steps)


@register_lowering("allreduce.ab")
def lower_allreduce_ab(shape: TreeShape, size: int, *, root: int = 0,
                       nseg: int = 0) -> Schedule:
    red = lower_reduce_ab(shape, size, root=root, nseg=nseg)
    bc = lower_bcast_tree(shape, size, root=root, nseg=nseg)
    steps = tuple(r + b for r, b in zip(red.steps, bc.steps))
    return Schedule("allreduce", "allreduce.ab", size, root, nseg,
                    meta=_meta(shape), steps=steps)


@register_lowering("allreduce.pipelined")
def lower_allreduce_pipelined(shape: TreeShape, size: int, *, root: int = 0,
                              nseg: int = 0) -> Schedule:
    _check(shape, size, root, nseg)
    if nseg < 2:
        raise ScheduleError("allreduce.pipelined requires nseg >= 2")
    ranks = []
    for me in range(size):
        parent, kids = _family(shape, size, root, me)
        rkids = list(reversed(kids))
        steps: List = []
        if parent is None:
            # Root: fold segment k, immediately re-broadcast it — the overlap
            # that keeps both reduce and bcast links busy.
            for s in range(nseg):
                for c in kids:
                    steps.append(RecvStep(c, seg=s))
                    steps.append(FoldStep(c, seg=s))
                for c in rkids:
                    steps.append(BcastStep(c, "send", seg=s))
        else:
            if not kids:
                steps.extend(SendStep(parent, seg=s) for s in range(nseg))
            else:
                for s in range(nseg):
                    steps.append(WaitStep(tuple(kids), seg=s))
                    steps.append(SendStep(parent, seg=s))
            for s in range(nseg):
                steps.append(BcastStep(parent, "recv", seg=s))
                for c in rkids:
                    steps.append(BcastStep(c, "send", seg=s))
        ranks.append(tuple(steps))
    return Schedule("allreduce", "allreduce.pipelined", size, root, nseg,
                    meta=_meta(shape), steps=tuple(ranks))
