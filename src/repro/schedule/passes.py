"""Rewrite passes: pure ``Schedule -> Schedule`` transforms behind a registry.

Passes never touch the simulator — they are plain data transforms, which is
what makes them unit-testable on the IR alone.  Each records itself in the
schedule's ``meta`` provenance trail.

Built-in passes:

``pipeline_segments``
    Lowery–Langou greedy segment pipelining (arXiv:1310.4645): replay a
    whole-message reduce/bcast schedule once per segment, forwarding each
    segment as soon as it is folded.  Produces exactly the step order the
    segmented lowerings emit directly.
``fuse_overlap``
    Reduce+bcast overlap fusion: rewrite the root of a segmented
    ``allreduce.ab`` schedule to re-broadcast each segment as soon as it is
    folded (other ranks already interleave through the NIC), yielding the
    ``allreduce.pipelined`` form.
``reshape_tree``
    Re-lower the schedule onto a different tree shape from the
    ``repro.topo`` registry, preserving collective, root and segmentation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import replace
from typing import Callable, Dict, Iterable

from ..topo.trees import make_tree_shape
from .ir import BcastStep, Schedule, ScheduleError

PASSES: Dict[str, Callable[..., Schedule]] = {}


class PassError(ScheduleError):
    """A rewrite pass was applied to a schedule it does not accept."""


def register_pass(name: str):
    """Decorator adding a pass to :data:`PASSES`."""

    def deco(fn):
        if name in PASSES:
            raise ScheduleError("duplicate pass %r" % (name,))
        PASSES[name] = fn
        fn.pass_name = name
        return fn

    return deco


def get_pass(name: str) -> Callable[..., Schedule]:
    try:
        return PASSES[name]
    except KeyError:
        raise PassError(
            "unknown pass %r (have: %s)"
            % (name, ", ".join(sorted(PASSES)))) from None


def apply_passes(schedule: Schedule, specs: Iterable) -> Schedule:
    """Apply a sequence of passes; each spec is a name or (name, kwargs)."""
    for spec in specs:
        if isinstance(spec, str):
            name, kwargs = spec, {}
        else:
            name, kwargs = spec
        schedule = get_pass(name)(schedule, **dict(kwargs))
    return schedule


@register_pass("pipeline_segments")
def pipeline_segments(schedule: Schedule, *, nseg: int) -> Schedule:
    """Greedy segment pipelining of a whole-message reduce/bcast schedule."""
    if schedule.collective not in ("reduce", "bcast"):
        raise PassError(
            "pipeline_segments handles reduce/bcast schedules, not %r"
            % (schedule.collective,))
    if schedule.nseg != 0:
        raise PassError("schedule is already segmented (nseg=%d)"
                        % schedule.nseg)
    if nseg < 2:
        raise PassError("nseg must be >= 2, got %d" % nseg)
    steps = tuple(
        tuple(step.with_seg(k) for k in range(nseg) for step in rank)
        for rank in schedule.steps)
    out = replace(schedule, nseg=nseg, steps=steps)
    return out.with_meta("pass", "pipeline_segments(%d)" % nseg)


@register_pass("fuse_overlap")
def fuse_overlap(schedule: Schedule) -> Schedule:
    """Fuse a segmented ``allreduce.ab`` into the pipelined overlap form."""
    if schedule.collective != "allreduce" or schedule.lowering != "allreduce.ab":
        raise PassError(
            "fuse_overlap expects an allreduce.ab schedule, got %s/%s"
            % (schedule.collective, schedule.lowering))
    if schedule.nseg < 2:
        raise PassError("fuse_overlap needs a segmented schedule (nseg >= 2)")
    reduce_by_seg = defaultdict(list)
    bcast_by_seg = defaultdict(list)
    for step in schedule.steps[schedule.root]:
        if isinstance(step, BcastStep):
            bcast_by_seg[step.seg].append(step)
        else:
            reduce_by_seg[step.seg].append(step)
    fused_root = tuple(
        step for k in range(schedule.nseg)
        for step in reduce_by_seg[k] + bcast_by_seg[k])
    steps = tuple(fused_root if me == schedule.root else rank
                  for me, rank in enumerate(schedule.steps))
    out = replace(schedule, lowering="allreduce.pipelined", steps=steps)
    return out.with_meta("pass", "fuse_overlap")


@register_pass("reshape_tree")
def reshape_tree(schedule: Schedule, *, shape: str, radix: int = 2) -> Schedule:
    """Re-lower the schedule onto a different tree shape."""
    from .lower import LOWERINGS
    try:
        fn = LOWERINGS[schedule.lowering]
    except KeyError:
        raise PassError(
            "cannot reshape %r: lowering %r is not registered"
            % (schedule.collective, schedule.lowering)) from None
    new_shape = make_tree_shape(shape, radix=radix)
    out = fn(new_shape, schedule.nranks, root=schedule.root,
             nseg=schedule.nseg)
    return out.with_meta("pass", "reshape_tree(%s)" % new_shape.name)
