"""The persisted tuning table behind ``tree_shape="auto"`` and
``segment_size_bytes="auto"``.

The autotuner (:mod:`repro.schedule.tune`) sweeps lowerings x tree shapes x
segment sizes through the orchestrator and writes a versioned JSON table of
winners keyed by (topology, nranks, message-size bucket).  At runtime,
configs with ``MpiParams.tree_shape == "auto"`` or
``PipelineParams.segment_size_bytes == "auto"`` consult the table per call
via :meth:`repro.cluster.node.Node.tree_shape_for` /
:meth:`~repro.cluster.node.Node.pipeline_params_for`.

Resolution is deterministic: an exact (topology, nranks) match is required,
message sizes match against ``[min_msg_bytes, max_msg_bytes]`` buckets in
file order, and when nothing matches the fallback is a binomial tree /
disarmed pipeline — i.e. the historical defaults.  The table path defaults
to ``benchmarks/tuned/smoke.json`` in the repo and can be overridden with
the ``REPRO_TUNED_TABLE`` environment variable; a missing file is an empty
table, never an error.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError
from ..topo.trees import TreeShape, make_tree_shape

TABLE_SCHEMA = 1
TABLE_ENV = "REPRO_TUNED_TABLE"

FALLBACK_TREE_SHAPE = "binomial"


def default_table_path() -> Path:
    """The table consulted by "auto" configs (env override wins)."""
    env = os.environ.get(TABLE_ENV)
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "benchmarks" / "tuned" / "smoke.json"


@dataclass(frozen=True)
class TunedEntry:
    """One tuned cell: winners for a (topology, nranks, size-bucket)."""

    topology: str
    nranks: int
    min_msg_bytes: int
    max_msg_bytes: int
    tree_shape: str = FALLBACK_TREE_SHAPE
    tree_radix: int = 2
    segment_size_bytes: int = 0
    max_inflight_segments: int = 4
    source: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "source",
                           tuple(tuple(kv) for kv in self.source))

    def matches(self, topology: str, nranks: int, nbytes: int) -> bool:
        return (self.topology == topology and self.nranks == nranks
                and self.min_msg_bytes <= nbytes <= self.max_msg_bytes)

    def to_dict(self) -> dict:
        return {
            "topology": self.topology,
            "nranks": self.nranks,
            "min_msg_bytes": self.min_msg_bytes,
            "max_msg_bytes": self.max_msg_bytes,
            "tree_shape": self.tree_shape,
            "tree_radix": self.tree_radix,
            "segment_size_bytes": self.segment_size_bytes,
            "max_inflight_segments": self.max_inflight_segments,
            "source": {k: v for k, v in self.source},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TunedEntry":
        return cls(
            topology=str(d["topology"]),
            nranks=int(d["nranks"]),
            min_msg_bytes=int(d["min_msg_bytes"]),
            max_msg_bytes=int(d["max_msg_bytes"]),
            tree_shape=str(d.get("tree_shape", FALLBACK_TREE_SHAPE)),
            tree_radix=int(d.get("tree_radix", 2)),
            segment_size_bytes=int(d.get("segment_size_bytes", 0)),
            max_inflight_segments=int(d.get("max_inflight_segments", 4)),
            source=tuple(sorted((str(k), str(v))
                                for k, v in dict(d.get("source", {})).items())),
        )


@dataclass
class TuningTable:
    """A versioned, ordered list of tuned entries."""

    entries: List[TunedEntry] = field(default_factory=list)
    tool: str = "repro.schedule.tune"

    def lookup(self, topology: str, nranks: int,
               nbytes: int) -> Optional[TunedEntry]:
        """First entry matching (topology, nranks, nbytes), or None."""
        for entry in self.entries:
            if entry.matches(topology, nranks, nbytes):
                return entry
        return None

    def to_dict(self) -> dict:
        return {
            "schema": TABLE_SCHEMA,
            "tool": self.tool,
            "entries": [e.to_dict() for e in self.entries],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TuningTable":
        schema = d.get("schema")
        if schema != TABLE_SCHEMA:
            raise ConfigError(
                "unsupported tuning-table schema %r (expected %d)"
                % (schema, TABLE_SCHEMA))
        return cls(entries=[TunedEntry.from_dict(e)
                            for e in d.get("entries", [])],
                   tool=str(d.get("tool", "repro.schedule.tune")))

    def dump(self, path: Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=False)
                        + "\n")

    @classmethod
    def load(cls, path: Path) -> "TuningTable":
        path = Path(path)
        if not path.exists():
            return cls(entries=[])
        return cls.from_dict(json.loads(path.read_text()))


_TABLE_CACHE: Dict[str, TuningTable] = {}
_SHAPE_CACHE: Dict[Tuple[str, int], TreeShape] = {}


def load_default_table() -> TuningTable:
    """Load (and cache) the default table; empty when the file is absent."""
    key = str(default_table_path())
    table = _TABLE_CACHE.get(key)
    if table is None:
        table = TuningTable.load(Path(key))
        _TABLE_CACHE[key] = table
    return table


def clear_table_cache() -> None:
    """Drop cached tables/shapes (tests point REPRO_TUNED_TABLE elsewhere)."""
    _TABLE_CACHE.clear()
    _SHAPE_CACHE.clear()


def _shape(name: str, radix: int) -> TreeShape:
    key = (name, radix)
    shape = _SHAPE_CACHE.get(key)
    if shape is None:
        shape = make_tree_shape(name, radix=radix)
        _SHAPE_CACHE[key] = shape
    return shape


def resolve_tree_shape(config, nbytes: int) -> TreeShape:
    """Tree shape for an ``"auto"`` config and a payload of ``nbytes``."""
    entry = load_default_table().lookup(config.net.topology, config.size,
                                        int(nbytes))
    if entry is None:
        return _shape(FALLBACK_TREE_SHAPE, config.mpi.tree_radix)
    return _shape(entry.tree_shape, entry.tree_radix)


def resolve_pipeline_params(config, nbytes: int):
    """Concrete PipelineParams for an ``"auto"`` config; fallback disarmed."""
    from ..config import PipelineParams
    base = config.pipeline
    entry = load_default_table().lookup(config.net.topology, config.size,
                                        int(nbytes))
    if entry is None:
        return PipelineParams(segment_size_bytes=0,
                              max_inflight_segments=base.max_inflight_segments,
                              schedule=base.schedule)
    return PipelineParams(segment_size_bytes=entry.segment_size_bytes,
                          max_inflight_segments=entry.max_inflight_segments,
                          schedule=base.schedule)


def config_tree_shape(config, nbytes: int) -> TreeShape:
    """Auto-aware replacement for ``make_tree_shape(config.mpi.tree_shape)``."""
    if config.mpi.tree_shape == "auto":
        return resolve_tree_shape(config, nbytes)
    return make_tree_shape(config.mpi.tree_shape, radix=config.mpi.tree_radix)
