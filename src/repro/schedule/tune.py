"""The schedule autotuner: ``python -m repro.schedule.tune``.

Sweeps the schedule-IR candidate space — tree shape x segment size x
pipeline window, executed through the schedule interpreter on the AB
build — for every (message size, topology) cell at a fixed rank count,
and persists the per-cell winners as a versioned
:class:`~repro.schedule.table.TuningTable` (default
``benchmarks/tuned/smoke.json``, the file ``tree_shape="auto"`` /
``segment_size_bytes="auto"`` configs consult at runtime).

Candidates run as ordinary orchestrator sweep points (kind
``"schedule"``), so they parallelize with ``--jobs`` and can be served
from the content-addressed result cache (``--cache DIR``) on re-runs.
Selection is deterministic: candidates are generated in a fixed order and
the argmin over ``avg_latency_us`` uses strict less-than, so ties keep
the earliest (most conventional) candidate.  Message-size buckets cover
the whole non-negative range — edges at the byte midpoint between
adjacent swept sizes — so any runtime payload resolves to the winner of
the nearest swept size.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..config import MpiParams, NetParams, PipelineParams
from ..orchestrate.points import ConfigSpec, SweepPoint
from ..orchestrate.runner import run_points
from .table import TABLE_SCHEMA, TunedEntry, TuningTable, default_table_path

#: The tuned cells: every topology crossed with every message size below.
TOPOLOGIES = ("crossbar", "torus")
#: Message-size axis in 8-byte elements (1 KiB and 8 KiB payloads).
ELEMENTS = (128, 1024)
#: Tree-shape candidates as (name, radix).
SHAPES = (("binomial", 2), ("knomial", 4), ("chain", 2), ("bine", 2))
#: Segmentation candidates as (segment_size_bytes, max_inflight_segments);
#: (0, 0) is the whole-message baseline (no pipeline override at all, so
#: the point key matches an untuned checkout).
SEGMENTS = ((0, 0), (1024, 2), (1024, 4), (2048, 2), (2048, 4))

ITEMSIZE = 8  # float64
#: Open-ended top bucket edge (vastly larger than any simulated payload).
MAX_MSG_BYTES = 1 << 62


def candidates() -> list[tuple]:
    """The per-cell candidate list, in deterministic tie-break order."""
    return [(shape, radix, seg, window)
            for shape, radix in SHAPES
            for seg, window in SEGMENTS]


def cell_points(topology: str, elements: int, *, nranks: int, seed: int,
                iterations: int) -> list[SweepPoint]:
    """Sweep points for one (topology, message-size) cell, candidate-major
    in :func:`candidates` order."""
    points = []
    for shape, radix, seg, window in candidates():
        pipeline = (PipelineParams(segment_size_bytes=seg,
                                   max_inflight_segments=window)
                    if seg else None)
        tag = (f"tune-{topology}-e{elements}-{shape}{radix}"
               + (f"-s{seg}w{window}" if seg else "-whole"))
        points.append(SweepPoint(
            experiment=tag, kind="schedule",
            config=ConfigSpec(
                "paper", nranks, seed,
                net=(NetParams(topology=topology)
                     if topology != "crossbar" else None),
                mpi=MpiParams(tree_shape=shape, tree_radix=radix),
                pipeline=pipeline),
            build="ab", elements=elements, iterations=iterations,
            options={"lowering": "reduce.ab", "passes": []}))
    return points


def _bucket_edges(elements: Sequence[int]) -> list[tuple[int, int]]:
    """[min_msg_bytes, max_msg_bytes] per swept size, covering [0, inf)."""
    sizes = sorted(e * ITEMSIZE for e in elements)
    edges = []
    lo = 0
    for i, nbytes in enumerate(sizes):
        hi = (MAX_MSG_BYTES if i == len(sizes) - 1
              else (nbytes + sizes[i + 1]) // 2 - 1)
        edges.append((lo, hi))
        lo = hi + 1
    return edges


def tune(*, nranks: int = 8, seed: int = 1, iterations: int = 5,
         jobs: int = 1, cache=None, progress=None) -> TuningTable:
    """Run the full sweep and return the winners as a TuningTable."""
    cells = [(topo, elements)
             for topo in TOPOLOGIES for elements in ELEMENTS]
    points: list[SweepPoint] = []
    for topo, elements in cells:
        points.extend(cell_points(topo, elements, nranks=nranks,
                                  seed=seed, iterations=iterations))
    results = run_points(points, jobs=jobs, cache=cache, progress=progress)

    per_cell = len(candidates())
    edges = dict(zip(sorted(e * ITEMSIZE for e in ELEMENTS),
                     _bucket_edges(ELEMENTS)))
    entries = []
    for i, (topo, elements) in enumerate(cells):
        cell = results[i * per_cell:(i + 1) * per_cell]
        best_idx, best_lat = 0, float("inf")
        for j, r in enumerate(cell):
            lat = r.metrics["avg_latency_us"]
            if lat < best_lat:
                best_idx, best_lat = j, lat
        shape, radix, seg, window = candidates()[best_idx]
        lo, hi = edges[elements * ITEMSIZE]
        entries.append(TunedEntry(
            topology=topo, nranks=nranks,
            min_msg_bytes=lo, max_msg_bytes=hi,
            tree_shape=shape, tree_radix=radix,
            segment_size_bytes=seg,
            max_inflight_segments=(window or 4),
            source=tuple(sorted({
                "experiment": cell[best_idx].point.experiment,
                "seed": str(seed),
                "iterations": str(iterations),
                "elements": str(elements),
                "avg_latency_us": f"{best_lat:.6f}",
            }.items()))))
    # File order is the lookup order: cells are disjoint, so ordering by
    # (topology, bucket) is purely cosmetic.
    entries.sort(key=lambda e: (TOPOLOGIES.index(e.topology),
                                e.min_msg_bytes))
    return TuningTable(entries=entries)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.schedule.tune",
        description="autotune tree shape + segmentation per (message "
                    "size, topology) cell and persist the winners")
    parser.add_argument("--out", default=None,
                        help="table path (default: the table 'auto' "
                             "configs read, benchmarks/tuned/smoke.json)")
    parser.add_argument("--nranks", type=int, default=8)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--iterations", type=int, default=5)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--cache", default=None,
                        help="content-addressed result-cache directory "
                             "(re-runs are served from it)")
    args = parser.parse_args(argv)

    cache = None
    if args.cache:
        from ..tenancy import ResultCache
        cache = ResultCache(args.cache)
    table = tune(nranks=args.nranks, seed=args.seed,
                 iterations=args.iterations, jobs=args.jobs, cache=cache,
                 progress=lambda line: print(f"  {line}", flush=True))
    out = Path(args.out) if args.out else default_table_path()
    table.dump(out)
    print(f"wrote {out} (schema {TABLE_SCHEMA}, "
          f"{len(table.entries)} entries)")
    for e in table.entries:
        seg = (f"seg={e.segment_size_bytes}w{e.max_inflight_segments}"
               if e.segment_size_bytes else "whole")
        print(f"  {e.topology:9s} [{e.min_msg_bytes}, "
              f"{min(e.max_msg_bytes, 10**9)}] -> "
              f"{e.tree_shape}(r{e.tree_radix}) {seg}")
    winners = {(e.tree_shape, e.tree_radix, e.segment_size_bytes,
                e.max_inflight_segments) for e in table.entries}
    print(f"{len(winners)} distinct winner(s) across "
          f"{len(table.entries)} cells")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
