"""Discrete-event simulation substrate.

Public surface:

* :class:`~repro.sim.simulator.Simulator` — event loop + process driver
* :class:`~repro.sim.cpu.HostCpu` / :class:`~repro.sim.cpu.Ledger` —
  preemptive CPU with per-category accounting
* command objects ``Busy``, ``Compute``, ``WaitFor``, ``Fork`` and the
  synchronization primitives ``Trigger`` / ``Notifier``
* :class:`~repro.sim.random.RngStreams` — deterministic named RNG streams
* :class:`~repro.sim.trace.Tracer` — optional structured tracing
"""

from .cpu import BUSY, COMPUTE, IDLE, POLL, HostCpu, Ledger
from .events import Event, EventQueue
from .process import (Busy, Command, Compute, Fork, Notifier, SimProcess,
                      Trigger, WaitFor)
from .random import RngStreams
from .simulator import Simulator
from .trace import Tracer

__all__ = [
    "Simulator", "Event", "EventQueue",
    "Busy", "Compute", "WaitFor", "Fork", "Command",
    "Trigger", "Notifier", "SimProcess",
    "HostCpu", "Ledger", "IDLE", "BUSY", "COMPUTE", "POLL",
    "RngStreams", "Tracer",
]
