"""Shared-state access tracing (the happens-before checker's data feed).

The determinism sanitizer (:mod:`repro.analysis.races`) needs to know, per
simulation event, which pieces of shared engine state were read or written
— descriptor tables, fold buffers, NIC receive queues, AB unexpected
queues.  Rather than wrapping those hot objects in proxies, the owning code
calls :func:`trace` at each mutation/lookup site, guarded by a single
module-global ``None`` check so unmonitored runs pay one attribute load
per site (the same pattern as ``Simulator.monitors`` and ``Nic.monitor``).

The tracer also receives queue-level callbacks from
:class:`~repro.sim.events.EventQueue` (``on_event_scheduled`` /
``on_event_begin``) so it can attribute every access to the event during
which it happened and reconstruct the schedule DAG (which event scheduled
which) — the happens-before relation among same-timestamp events.

This module is deliberately tiny and dependency-free: it lives in
``repro.sim`` so the sim core can import it without touching
``repro.analysis``, and the concrete tracer class lives in
``repro.analysis.races`` where the analysis belongs.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, Tuple

#: Stable identity of one piece of shared state, e.g. ``("descriptors", 3)``
#: (rank 3's descriptor queue) or ``("acc", 5, 1, 0, -1)`` (rank 5's fold
#: buffer for context 1, instance 0, whole-message).
Location = Tuple[Any, ...]

READ = "read"
WRITE = "write"


class AccessTracer(Protocol):
    """What the sim core expects of an installed tracer."""

    def on_event_scheduled(self, event: Any) -> None:
        """A new event was pushed (the current event, if any, caused it)."""

    def on_event_begin(self, event: Any) -> None:
        """The simulator is about to execute ``event``."""

    def on_access(self, kind: str, location: Location, *,
                  order_sensitive: bool = True, note: str = "") -> None:
        """Shared state at ``location`` was read/written by the current
        event.  ``order_sensitive=False`` marks commutative updates
        (e.g. exact-integer or min/max folds) that cannot change results
        however same-time events are ordered."""


#: The installed tracer, or None (the overwhelmingly common case).  Call
#: sites read this exactly once per operation.
TRACER: Optional[AccessTracer] = None


def set_access_tracer(tracer: Optional[AccessTracer]) -> None:
    """Install (or clear) the process-wide access tracer."""
    global TRACER
    TRACER = tracer


def get_access_tracer() -> Optional[AccessTracer]:
    return TRACER


def trace(kind: str, location: Location, *, order_sensitive: bool = True,
          note: str = "") -> None:
    """Record one access if a tracer is installed (convenience wrapper for
    call sites that are not performance-critical)."""
    tracer = TRACER
    if tracer is not None:
        tracer.on_access(kind, location, order_sensitive=order_sensitive,
                         note=note)
