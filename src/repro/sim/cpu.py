"""Preemptive host-CPU model with per-category time accounting.

Each simulated node owns one :class:`HostCpu` (the paper uses a single
processor per node, which is also what lets it ignore the SMP differences
between its two machine classes).  The CPU can be in one of four states:

``IDLE``
    No work; the node's process is blocked in a passive wait or finished.
``BUSY``
    Non-interruptible MPI-internal work (copies, matching, descriptor
    management).  NIC signals arriving now are *deferred* until the segment
    ends.
``COMPUTE``
    Interruptible application compute (the paper's busy-loop skew/catch-up
    delays).  NIC signals *preempt*: the asynchronous handler runs on the
    CPU and the busy loop resumes afterwards, extending its wall-clock span
    by exactly the handler cost.  This mirrors the paper's methodology:
    *"All delays are generated using busy loops as opposed to absolute
    timings so that the CPU utilization associated with asynchronous
    processing may be captured."*
``POLL``
    Spinning inside a blocking MPI call (the progress engine is running).
    The entire blocked interval is charged to the CPU — this is the
    non-application-bypass cost the paper attacks.  Signals arriving now run
    immediately but the application-bypass layer ignores them because
    progress is already underway (paper Fig. 4).

Accounting is a ``category -> microseconds`` mapping.  Categories used by the
upper layers include ``"send"``, ``"copy"``, ``"match"``, ``"op"``,
``"poll"``, ``"signal"``, ``"async"``, ``"descriptor"`` and ``"app"``.
Benchmarks cross-check this direct accounting against the paper's
subtract-the-known-delays protocol.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .events import PRIORITY_WAKE

IDLE = "idle"
BUSY = "busy"
COMPUTE = "compute"
POLL = "poll"


class Ledger:
    """Accumulator for CPU costs computed by *instantaneous* logic.

    MPI-internal logic in this code base executes as plain Python at a single
    simulation instant while tallying how long it *would* have taken on the
    host; the caller then either yields ``Busy(ledger)`` time (process
    context) or lets the CPU charge-and-shift machinery apply it (signal
    handler context).  ``total`` is also used to timestamp side effects: a
    packet handed to the NIC halfway through a handler departs at
    ``now + ledger.total``-at-that-point.
    """

    __slots__ = ("charges", "total")

    def __init__(self) -> None:
        self.charges: dict[str, float] = {}
        self.total = 0.0

    def charge(self, duration: float, category: str) -> float:
        """Add ``duration`` us under ``category``; returns the new total."""
        if duration < 0:
            raise ValueError(f"negative charge: {duration}")
        self.charges[category] = self.charges.get(category, 0.0) + duration
        self.total += duration
        return self.total


class HostCpu:
    """One node's processor; see module docstring for the state machine."""

    __slots__ = (
        "sim", "name", "usage", "state",
        "_wake_event", "_wake_time", "_resume_cb", "_segment",
        "_poll_start", "_poll_category", "_pending_handlers",
        "preemptions", "deferred_handlers", "handler_runs",
        "_interrupt_penalty",
        "crashed", "_frozen_until", "_poll_frozen_us",
    )

    def __init__(self, sim: Any, name: str = "cpu"):
        self.sim = sim
        self.name = name
        self.usage: dict[str, float] = {}
        self.state = IDLE
        self._wake_event = None
        self._wake_time = 0.0
        self._resume_cb: Optional[Callable[[], None]] = None
        # (duration, category, charges-breakdown-or-None)
        self._segment: Optional[tuple[float, str, Optional[dict]]] = None
        self._poll_start = 0.0
        self._poll_category = ""
        self._pending_handlers: list[Callable[[Ledger], None]] = []
        self.preemptions = 0
        self.deferred_handlers = 0
        self.handler_runs = 0
        # Wall-time owed to kernel signal deliveries that the MPI layer
        # chose to ignore (progress already underway): the interrupt still
        # stole the CPU, so the interrupted poll/work segment finishes late.
        self._interrupt_penalty = 0.0
        # Fault injection (repro.faults): fail-stop flag, the wall-clock
        # end of an active rank_pause freeze, and how much of the current
        # poll interval was spent frozen (not billable as spinning).
        self.crashed = False
        self._frozen_until = 0.0
        self._poll_frozen_us = 0.0

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def charge(self, duration: float, category: str) -> None:
        """Record ``duration`` us of CPU time under ``category``."""
        if duration < 0:
            raise ValueError(f"negative charge: {duration}")
        self.usage[category] = self.usage.get(category, 0.0) + duration

    def charge_ledger(self, ledger: Ledger) -> None:
        for category, duration in ledger.charges.items():
            self.charge(duration, category)

    def total_usage(self, *, exclude: tuple[str, ...] = ()) -> float:
        """Total accounted CPU time, optionally excluding some categories.

        Summed in sorted-category order: ``usage`` is insertion-ordered by
        *event* order, and float addition does not commute at the ULP, so
        an iteration-order sum would leak the schedule into the metric
        (caught by the perturbation harness on the topo sweep).
        """
        return sum(self.usage[k] for k in sorted(self.usage)
                   if k not in exclude)

    def usage_snapshot(self) -> dict[str, float]:
        return dict(self.usage)

    # ------------------------------------------------------------------
    # process-driver entry points (called by the Simulator)
    # ------------------------------------------------------------------
    def begin_busy(self, duration: float, category: str,
                   resume: Callable[[], None],
                   charges: Optional[dict] = None) -> None:
        """Start a non-interruptible work segment.

        ``charges`` optionally provides a multi-category breakdown (whose sum
        should equal ``duration``) recorded instead of the single category.
        """
        self._assert_free("begin_busy")
        self.state = BUSY
        self._segment = (duration, category, charges)
        self._resume_cb = resume
        # A frozen CPU (rank_pause) cannot start work until it thaws.
        self._wake_time = max(self.sim.now, self._frozen_until) + duration
        # WAKE class: a segment ending at time t observes every hardware
        # delivery of time t (determinism contract, DESIGN.md §12).
        self._wake_event = self.sim.at(self._wake_time, self._busy_done,
                                       priority=PRIORITY_WAKE)

    def begin_compute(self, duration: float, category: str,
                      resume: Callable[[], None]) -> None:
        """Start an interruptible application-compute segment."""
        self._assert_free("begin_compute")
        self.state = COMPUTE
        self._segment = (duration, category, None)
        self._resume_cb = resume
        self._wake_time = max(self.sim.now, self._frozen_until) + duration
        self._wake_event = self.sim.at(self._wake_time, self._compute_done,
                                       priority=PRIORITY_WAKE)

    def begin_poll(self, category: str) -> None:
        """Enter the spinning-in-a-blocking-MPI-call state."""
        self._assert_free("begin_poll")
        self.state = POLL
        self._poll_start = self.sim.now
        self._poll_category = category
        # Any still-active freeze overlaps the front of this poll interval.
        self._poll_frozen_us = max(0.0, self._frozen_until - self.sim.now)

    def end_poll(self) -> None:
        """Leave the polling state, charging the spun interval.

        Time spent frozen by a ``rank_pause`` fault is wall-clock waiting,
        not CPU spinning, and is excluded from the charge.
        """
        if self.state != POLL:
            raise RuntimeError(f"end_poll in state {self.state}")
        spun = self.sim.now - self._poll_start - self._poll_frozen_us
        self.charge(max(0.0, spun), self._poll_category)
        self._poll_frozen_us = 0.0
        self.state = IDLE

    # ------------------------------------------------------------------
    # ignored-signal penalties
    # ------------------------------------------------------------------
    def add_interrupt_penalty(self, duration: float) -> None:
        """Record kernel time stolen by a signal the MPI layer ignored.

        The cost is applied as a delay when the current poll wait or busy
        segment completes (the paper's "increase in latency ... due to
        overhead from signals associated with late messages", Sec. VI-B).
        """
        if duration < 0:
            raise ValueError(f"negative penalty: {duration}")
        self._interrupt_penalty += duration

    def consume_interrupt_penalty(self) -> float:
        penalty = self._interrupt_penalty
        self._interrupt_penalty = 0.0
        return penalty

    # ------------------------------------------------------------------
    # fault-injection entry points (repro.faults)
    # ------------------------------------------------------------------
    def freeze(self, duration: float) -> None:
        """Stop this CPU for ``duration`` us (rank_pause straggler fault).

        An active BUSY/COMPUTE segment finishes ``duration`` later; an
        idle or polling CPU defers handlers and new segments until the
        thaw.  Frozen poll time is excluded from the poll charge — the
        rank was descheduled, not spinning.
        """
        if duration <= 0.0:
            return
        self._frozen_until = max(self._frozen_until, self.sim.now + duration)
        if self.state in (BUSY, COMPUTE):
            done = (self._busy_done if self.state == BUSY
                    else self._compute_done)
            self.sim.cancel(self._wake_event)
            self._wake_time += duration
            self._wake_event = self.sim.at(self._wake_time, done,
                                           priority=PRIORITY_WAKE)
        elif self.state == POLL:
            self._poll_frozen_us += duration

    def crash(self) -> None:
        """Fail-stop this CPU: the process never runs again, pending work
        and deferred handlers are discarded (rank_crash fault)."""
        self.crashed = True
        if self._wake_event is not None:
            self.sim.cancel(self._wake_event)
            self._wake_event = None
        self._segment = None
        self._resume_cb = None
        self._pending_handlers.clear()

    def thaw_delay(self) -> float:
        """Remaining freeze time; delays poll wake-ups (see Simulator)."""
        return max(0.0, self._frozen_until - self.sim.now)

    # ------------------------------------------------------------------
    # signal delivery
    # ------------------------------------------------------------------
    def run_handler(self, handler: Callable[[Ledger], None]) -> None:
        """Deliver a NIC signal handler to this CPU.

        The handler's *logic* always executes at the current instant (events
        are atomic); its accumulated CPU cost is charged and, when it
        preempted a ``COMPUTE`` segment, pushes that segment's completion out
        by the same amount.
        """
        if self.crashed:
            return
        if self._frozen_until > self.sim.now and self.state != BUSY:
            # Frozen CPU: the kernel holds the signal until the thaw (a
            # BUSY segment already defers below and its end was pushed out).
            self.sim.at(self._frozen_until, self.run_handler, handler,
                        priority=PRIORITY_WAKE)
            return
        if self.state == BUSY:
            # Non-interruptible work: defer until the segment completes.
            self._pending_handlers.append(handler)
            self.deferred_handlers += 1
            return
        if self.state == COMPUTE:
            self.preemptions += 1
            cost = self._execute(handler)
            if cost > 0.0:
                self.sim.cancel(self._wake_event)
                self._wake_time += cost
                self._wake_event = self.sim.at(self._wake_time,
                                               self._compute_done,
                                               priority=PRIORITY_WAKE)
            return
        # IDLE or POLL: run immediately.  In POLL the application-bypass
        # layer sees progress-already-active and ignores the signal, so no
        # double-booking of the CPU occurs in practice.
        self._execute(handler)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _execute(self, handler: Callable[[Ledger], None]) -> float:
        ledger = Ledger()
        handler(ledger)
        self.charge_ledger(ledger)
        self.handler_runs += 1
        return ledger.total

    def _busy_done(self) -> None:
        duration, category, charges = self._segment
        if charges:
            for cat, dur in charges.items():
                self.charge(dur, cat)
        else:
            self.charge(duration, category)
        # Handlers deferred during the segment run now, back to back; the
        # process resumes only after they complete.
        extra = 0.0
        while self._pending_handlers:
            handler = self._pending_handlers.pop(0)
            extra += self._execute(handler)
        penalty = self.consume_interrupt_penalty()
        if penalty > 0.0:
            # Ignored signals during (or right after) the segment: the
            # stolen kernel time delays the process and is billed as signal
            # overhead so the direct-accounting cross-check stays exact.
            self.charge(penalty, "signal")
            extra += penalty
        self.state = IDLE
        self._segment = None
        self._wake_event = None
        resume = self._resume_cb
        self._resume_cb = None
        if extra > 0.0:
            self.sim.schedule(extra, resume, priority=PRIORITY_WAKE)
        else:
            resume()

    def _compute_done(self) -> None:
        duration, category, _ = self._segment
        self.charge(duration, category)
        self.state = IDLE
        self._segment = None
        self._wake_event = None
        resume = self._resume_cb
        self._resume_cb = None
        resume()

    def _assert_free(self, op: str) -> None:
        if self.state != IDLE:
            raise RuntimeError(
                f"{op} on {self.name} while in state {self.state}: "
                "each node runs exactly one MPI process"
            )
