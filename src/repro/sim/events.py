"""Event objects and the time-ordered event queue.

The queue is a binary heap keyed on ``(time, seq)``.  ``seq`` is a global,
monotonically increasing counter so that events scheduled for the same
instant fire in FIFO order — this is what makes the whole simulation
deterministic for a fixed seed.

Cancellation is *lazy*: :meth:`Event.cancel` flips a flag and the queue skips
cancelled entries when popping.  This keeps cancellation O(1), which matters
because the preemptive CPU model cancels and reschedules wake-up events every
time a NIC signal interrupts an application busy-loop.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time (microseconds) at which the event fires.
    seq:
        Global tiebreaker; preserves FIFO order among same-time events.
    fn / args:
        The callback and its positional arguments.
    cancelled:
        Set by :meth:`cancel`; cancelled events are skipped on pop.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event so it will never fire."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        fn_name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.3f} seq={self.seq} fn={fn_name}{state}>"


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, seq)``."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0

    def push(self, time: float, fn: Callable[..., Any], args: tuple = ()) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time``."""
        self._seq += 1
        ev = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if ev.cancelled:
                continue
            self._live -= 1
            return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def note_cancelled(self) -> None:
        """Bookkeeping hook: callers that cancel an event should call this so
        :func:`__len__` stays an accurate *live* count."""
        self._live -= 1

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
