"""Event objects and the time-ordered event queue.

The queue is a **calendar (bucket) queue keyed on timestamp**: events that
share an instant live in one bucket, buckets are ordered by a small heap of
*distinct* timestamps, and only the bucket currently being drained is
ordered internally — by ``(priority, key, seq)`` tuples, compared at C
speed.  Observably the queue behaves exactly like the previous binary heap
keyed on ``(time, priority, key, seq)``; the property suite
(``tests/property/test_calendar_queue.py``) pins the equivalence against a
reference heap model under arbitrary interleavings of push / pop / cancel.
The win is raw speed: the old heap ran one Python ``Event.__lt__`` call per
comparison (~3.3 M calls for a 1024-rank sweep); the calendar queue
compares floats and int tuples natively and shrinks the heap to one entry
per *instant* (barrier and arbitration instants carry hundreds of events).

``seq`` is a global, monotonically increasing counter; in the default FIFO
mode ``key == seq`` so events scheduled for the same instant (and priority
class) fire in insertion order — this is what makes the whole simulation
deterministic for a fixed seed.

**Same-instant priority classes.**  Events that coincide at the exact same
timestamp but model *different layers* of the machine have a defined order
(the determinism contract, DESIGN.md §12) instead of relying on the
arbitrary FIFO tiebreak:

* :data:`PRIORITY_DELIVERY` (0, the default) — hardware effects: packet
  arrivals, DMA/rx completions, link events.
* :data:`PRIORITY_WAKE` (1) — software observing the instant: CPU
  busy/compute segment completions, poll wake-ups, deferred signal
  deliveries.  A rank waking at time *t* sees every hardware effect of
  time *t* already applied — the same reason a real CPU's load at cycle
  *t* observes memory writes that completed at cycle *t*.
* :data:`PRIORITY_TIMER` (2) — protocol timeouts: retransmit timers,
  descriptor-recovery timers.  A timeout due at *t* observes the
  instant's *final* state, so an ACK (or completion) landing exactly at
  the deadline counts as in time rather than racing the timer.
* :data:`PRIORITY_ARBITRATE` (3) — the fabric's end-of-instant port
  arbitration (:meth:`repro.network.fabric.Fabric.inject`): every packet
  injected during the instant is gathered and granted links in a sorted,
  schedule-independent order, so which of two simultaneous senders wins
  a contended port never depends on the event tiebreak.

Without these classes, such coincidences are genuine schedule races: the
perturbation harness (below) found retransmit storms, double-fired
recovery timers and poll-count jitter that flipped with the tiebreak
order.  The shuffle only ever permutes *within* a class.

**Tiebreak-shuffle mode** (the determinism sanitizer's lever, see
:mod:`repro.analysis.races`): when a queue is built with a
``tiebreak_seed``, ``key`` is instead a splitmix64 hash of ``(seed, seq)``,
so same-time events fire in a *deterministic pseudo-random permutation* of
their insertion order.  Any run whose results depend on the arbitrary FIFO
tiebreak — the discrete-event analogue of a data race — diverges under a
shuffled schedule and is caught by the perturbation harness.  Causality is
preserved by construction: an event pushed while another executes cannot
pop before it, whatever its key, because pops only ever see already-pushed
events.  Per-seed determinism holds because the permutation is a pure
function of ``(seed, seq)``.

Cancellation is *lazy*: :meth:`Event.cancel` flips a flag and the queue skips
cancelled entries when popping.  This keeps cancellation O(1), which matters
because the preemptive CPU model cancels and reschedules wake-up events every
time a NIC signal interrupts an application busy-loop.  Cancelled entries
are counted (``EventQueue.cancelled``) so defunct-timer load — e.g. the
fault-recovery timers cancelled on every completed descriptor — shows up in
``Simulator.counters()`` instead of being invisible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from . import access

_MASK64 = (1 << 64) - 1

#: Same-instant ordering classes (see module doc): hardware deliveries
#: fire before CPU wake-ups, which fire before protocol timers, which
#: fire before the fabric's end-of-instant port arbitration.
PRIORITY_DELIVERY = 0
PRIORITY_WAKE = 1
PRIORITY_TIMER = 2
PRIORITY_ARBITRATE = 3

#: Process-wide default tiebreak seed (None = FIFO).  Installed by the
#: schedule-perturbation harness so every EventQueue built while it is set
#: runs shuffled, without plumbing a seed through cluster construction —
#: the same pattern as ``repro.analysis.invariants``'s default monitor
#: factory.
_default_tiebreak_seed: Optional[int] = None


def set_default_tiebreak_seed(seed: Optional[int]) -> None:
    """Set (or clear) the tiebreak-shuffle seed for new event queues."""
    global _default_tiebreak_seed
    _default_tiebreak_seed = seed


def get_default_tiebreak_seed() -> Optional[int]:
    return _default_tiebreak_seed


def _mix64(x: int) -> int:
    """splitmix64 finalizer: deterministic, well-distributed, stdlib-free
    (``hash()`` is salted per interpreter run; ``random`` is banned in sim
    scope by SIM008)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def tiebreak_key(seed: int, seq: int) -> int:
    """The shuffled tiebreak for event ``seq`` under ``seed`` (pure)."""
    return _mix64((seed & _MASK64) ^ _mix64(seq))


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time (microseconds) at which the event fires.
    priority:
        Same-instant ordering class (``PRIORITY_DELIVERY`` /
        ``PRIORITY_WAKE`` / ``PRIORITY_TIMER``); compared before the
        tiebreak, so the shuffle never reorders across classes.
    seq:
        Global insertion counter (unique per queue).
    key:
        Same-time tiebreaker: ``seq`` in FIFO mode, a pseudo-random
        function of ``(tiebreak_seed, seq)`` in shuffle mode.
    fn / args:
        The callback and its positional arguments.
    cancelled:
        Set by :meth:`cancel`; cancelled events are skipped on pop.
    """

    __slots__ = ("time", "priority", "seq", "key", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any],
                 args: tuple, key: Optional[int] = None,
                 priority: int = PRIORITY_DELIVERY):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.key = seq if key is None else key
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event so it will never fire."""
        self.cancelled = True

    def label(self) -> str:
        """Human-readable identity (used by race reports)."""
        return getattr(self.fn, "__qualname__", None) or repr(self.fn)

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        if self.key != other.key:
            return self.key < other.key
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.3f} seq={self.seq} fn={self.label()}{state}>"


#: A bucket-internal heap entry: ``(priority, key, seq, event)``.  The
#: ``seq`` component is unique per queue, so comparison never reaches the
#: (incomparable-by-tuple) event itself.
_CurrentItem = tuple[int, int, int, "Event"]


class EventQueue:
    """Calendar/bucket queue ordered by ``(time, priority, key, seq)``.

    Structure (see module doc):

    * ``_buckets`` maps each *future* timestamp to an unordered list of
      its events — pushes append in O(1);
    * ``_times`` is a min-heap of the distinct timestamps with a bucket;
    * ``_current`` is the instant being drained, held as a small heap of
      ``(priority, key, seq, event)`` tuples (built once, when the bucket's
      time becomes the earliest).  Same-instant pushes that arrive *while*
      the instant drains (the ``schedule(0.0, ...)`` pattern the process
      driver leans on) land directly in this heap, preserving the exact
      ``(priority, key, seq)`` order the old binary heap produced.

    Pops therefore return events in exactly the old ``(time, priority,
    key, seq)`` order — FIFO tiebreak, shuffle mode and lazy cancellation
    semantics are all unchanged.
    """

    __slots__ = ("_buckets", "_times", "_current", "_current_time",
                 "_seq", "_live", "_cancelled", "tiebreak_seed")

    def __init__(self, tiebreak_seed: Optional[int] = None) -> None:
        self._buckets: dict[float, list[Event]] = {}
        self._times: list[float] = []
        self._current: list[_CurrentItem] = []
        self._current_time: float = 0.0
        self._seq = 0
        self._live = 0
        self._cancelled = 0
        #: None = FIFO tiebreak; an int arms the shuffle (see module doc).
        #: Falls back to the process-wide default installed by the
        #: perturbation harness.
        self.tiebreak_seed: Optional[int] = (
            tiebreak_seed if tiebreak_seed is not None
            else _default_tiebreak_seed)

    def push(self, time: float, fn: Callable[..., Any],
             args: tuple = (),
             priority: int = PRIORITY_DELIVERY) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time``."""
        self._seq += 1
        seed = self.tiebreak_seed
        key = None if seed is None else tiebreak_key(seed, self._seq)
        ev = Event(time, self._seq, fn, args, key, priority)
        current = self._current
        # Exact float equality is the *design* here, not an accident: the
        # calendar keys buckets on raw timestamps, and "same instant"
        # means bit-equal time (identical arithmetic ⇒ identical floats,
        # the determinism contract's premise).  A tolerance would merge
        # distinct instants and change delivery order.
        if current and time == self._current_time:  # simlint: ignore[SIM003]
            # The instant is mid-drain: join it directly so the new event
            # still fires this instant, in (priority, key, seq) position.
            heapq.heappush(current, (ev.priority, ev.key, ev.seq, ev))
        else:
            if current and time < self._current_time:
                # A push into the past of the draining instant (never the
                # simulator — it cannot schedule before ``now`` — but the
                # raw queue API allows it and the heap honoured it).
                self._reinstate_current()
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = [ev]
                heapq.heappush(self._times, time)
            else:
                bucket.append(ev)
        self._live += 1
        tracer = access.TRACER
        if tracer is not None:
            tracer.on_event_scheduled(ev)
        return ev

    def _reinstate_current(self) -> None:
        """Demote the partially drained instant back to a bucket (only
        needed when a push targets an earlier time than ``_current_time``)."""
        events = [item[3] for item in self._current]
        self._current = []
        if not events:
            return
        t = self._current_time
        bucket = self._buckets.get(t)
        if bucket is None:
            self._buckets[t] = events
            heapq.heappush(self._times, t)
        else:
            bucket.extend(events)

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        times = self._times
        buckets = self._buckets
        while True:
            current = self._current
            if current:
                if times and times[0] < self._current_time:
                    self._reinstate_current()
                    continue
                ev = heapq.heappop(current)[3]
                if ev.cancelled:
                    continue
                self._live -= 1
                return ev
            if not times:
                return None
            t = heapq.heappop(times)
            bucket = buckets.pop(t, None)
            if bucket is None:
                continue  # stale heap entry left by peek-time compaction
            if len(bucket) == 1:
                # Singleton instant — the common case (most timestamps
                # carry one event): skip the per-instant heap entirely.
                # ``_current`` stays empty, so a same-instant push from
                # this event's callback opens a fresh bucket at ``t``,
                # which the times heap delivers next — same order.
                ev = bucket[0]
                self._current_time = t
                if ev.cancelled:
                    continue
                self._live -= 1
                return ev
            items: list[_CurrentItem] = [
                (e.priority, e.key, e.seq, e) for e in bucket
                if not e.cancelled
            ]
            if not items:
                continue
            heapq.heapify(items)
            self._current = items
            self._current_time = t

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` if empty."""
        times = self._times
        buckets = self._buckets
        current = self._current
        if current and times and times[0] < self._current_time:
            self._reinstate_current()
            current = self._current
        while current:
            if current[0][3].cancelled:
                heapq.heappop(current)
            else:
                return self._current_time
        while times:
            t = times[0]
            bucket = buckets.get(t)
            if bucket is None:
                heapq.heappop(times)
                continue
            live = [e for e in bucket if not e.cancelled]
            if not live:
                del buckets[t]
                heapq.heappop(times)
                continue
            if len(live) != len(bucket):
                buckets[t] = live  # compact so repeated peeks stay cheap
            return t
        return None

    def note_cancelled(self) -> None:
        """Bookkeeping hook: callers that cancel an event should call this so
        :func:`__len__` stays an accurate *live* count."""
        self._live -= 1
        self._cancelled += 1

    @property
    def cancelled(self) -> int:
        """How many scheduled events were cancelled before firing."""
        return self._cancelled

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
