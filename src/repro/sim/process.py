"""Generator-coroutine processes and the commands they may yield.

A *process* is a Python generator driven by the :class:`~repro.sim.simulator.
Simulator`.  The generator yields command objects; the simulator interprets
each command, and resumes the generator (``gen.send(value)``) when the command
completes.  Sub-operations compose with ``yield from`` and return values via
``StopIteration`` in the usual way, so MPI-layer code reads almost like
straight-line blocking code::

    def program(mpi):
        yield from mpi.barrier()
        result = yield from mpi.reduce(data, op=SUM, root=0)
        return result

Commands
--------
``Busy(duration, category)``
    Hold this process's host CPU for ``duration`` microseconds of
    *non-interruptible* work (MPI-internal bookkeeping, memory copies...).
    NIC signals arriving during a ``Busy`` segment are deferred until the
    segment ends.

``Compute(duration, category)``
    Application-level compute (the paper's busy loops).  *Interruptible*: a
    NIC signal suspends the loop, runs the asynchronous handler on the host
    CPU, and the loop then resumes — extending its wall-clock span by exactly
    the handler cost, which is how the paper's measurement methodology
    captures asynchronous CPU usage.

``WaitFor(trigger, poll_category=None)``
    Block until ``trigger`` fires.  If ``poll_category`` is given, the host
    CPU is charged for the entire blocked interval under that category —
    modelling MPICH's busy-polling blocking receives.  If ``None``, the wait
    is passive (CPU idle).

``Fork(gen, name, cpu)``
    Spawn a child process.  The command completes immediately, returning the
    new :class:`SimProcess`.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

SimGen = Generator["Command", Any, Any]


class Command:
    """Base class of everything a process may ``yield``."""

    __slots__ = ()


class Busy(Command):
    """Non-interruptible CPU work (see module docstring).

    Either a single ``(duration, category)`` pair or, via
    :meth:`from_ledger`, a multi-category breakdown accumulated by
    instantaneous MPI-layer logic.
    """

    __slots__ = ("duration", "category", "charges")

    def __init__(self, duration: float, category: str = "work",
                 charges: Optional[dict] = None):
        if duration < 0:
            raise ValueError(f"negative busy duration: {duration}")
        self.duration = duration
        self.category = category
        self.charges = charges

    @classmethod
    def from_ledger(cls, ledger: Any) -> "Busy":
        """Busy segment whose cost breakdown comes from a CPU ledger."""
        return cls(ledger.total, "work", dict(ledger.charges))


class Compute(Command):
    """Interruptible application compute (paper's busy-loop delays)."""

    __slots__ = ("duration", "category")

    def __init__(self, duration: float, category: str = "app"):
        if duration < 0:
            raise ValueError(f"negative compute duration: {duration}")
        self.duration = duration
        self.category = category


class WaitFor(Command):
    """Block until a :class:`Trigger` fires (optionally spinning the CPU)."""

    __slots__ = ("trigger", "poll_category")

    def __init__(self, trigger: "Trigger", poll_category: Optional[str] = None):
        self.trigger = trigger
        self.poll_category = poll_category


class Fork(Command):
    """Spawn a child process; completes immediately with the new process."""

    __slots__ = ("gen", "name", "cpu")

    def __init__(self, gen: SimGen, name: str = "child",
                 cpu: Optional[Any] = None):
        self.gen = gen
        self.name = name
        self.cpu = cpu


class Trigger:
    """One-shot synchronization point.

    ``fire(value)`` wakes every process currently blocked in a
    ``WaitFor(trigger)`` and remembers the value; a ``WaitFor`` on an
    already-fired trigger completes immediately.
    """

    __slots__ = ("fired", "value", "_waiters")

    def __init__(self) -> None:
        self.fired = False
        self.value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        if self.fired:
            callback(self.value)
        else:
            self._waiters.append(callback)

    def fire(self, value: Any = None) -> None:
        if self.fired:
            return
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            cb(value)


class Notifier:
    """Multi-shot notification source (e.g. "a packet arrived at this NIC").

    Each call to :meth:`wait` hands out a fresh one-shot :class:`Trigger`
    that the next :meth:`notify` fires.  Blocking loops use the pattern::

        while not done():
            yield WaitFor(notifier.wait(), poll_category="poll")
    """

    __slots__ = ("_pending",)

    def __init__(self) -> None:
        self._pending: list[Trigger] = []

    def wait(self) -> Trigger:
        trig = Trigger()
        self._pending.append(trig)
        return trig

    def notify(self, value: Any = None) -> int:
        """Fire all outstanding triggers; returns how many were woken."""
        pending, self._pending = self._pending, []
        for trig in pending:
            trig.fire(value)
        return len(pending)

    @property
    def waiter_count(self) -> int:
        return len(self._pending)


class SimProcess:
    """Bookkeeping for one running generator."""

    __slots__ = ("gen", "name", "cpu", "done", "result", "error", "finished_at",
                 "_completion")

    def __init__(self, gen: SimGen, name: str,
                 cpu: Optional[Any] = None):
        self.gen = gen
        self.name = name
        self.cpu = cpu  # HostCpu or None for hardware/helper processes
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.finished_at: Optional[float] = None
        self._completion = Trigger()

    @property
    def completion(self) -> Trigger:
        """Trigger fired (with the return value) when the process finishes."""
        return self._completion

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "running"
        return f"<SimProcess {self.name!r} {state}>"
