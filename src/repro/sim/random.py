"""Deterministic, named random-number streams.

Every stochastic element of the simulation (per-node skew draws, OS-noise
arrivals, benchmark shuffles) pulls from its own named stream so that adding
a new consumer of randomness never perturbs existing ones.  Stream seeds are
derived from the master seed and the stream name with CRC32 — *not* Python's
``hash()``, which is salted per interpreter run and would break determinism.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngStreams:
    """Factory of independent, reproducible ``numpy`` generators."""

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same ``(seed, name)`` pair always yields an identical sequence.
        """
        gen = self._cache.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            # The one sanctioned use of numpy.random in simulation code:
            # RngStreams *is* the determinism layer every other module is
            # required to go through, and both calls are fully seeded.
            seq = np.random.SeedSequence([self.seed & 0xFFFFFFFF, key])  # simlint: ignore[SIM002]
            gen = np.random.default_rng(seq)  # simlint: ignore[SIM002]
            self._cache[name] = gen
        return gen

    def node_stream(self, purpose: str, node_id: int) -> np.random.Generator:
        """Per-node stream, e.g. ``node_stream('os_noise', 7)``."""
        return self.stream(f"{purpose}/{node_id}")

    def spawn(self, suffix: str) -> "RngStreams":
        """Derive an independent child seed space (for nested experiments)."""
        key = zlib.crc32(suffix.encode("utf-8"))
        return RngStreams((self.seed * 1_000_003 + key) & 0x7FFFFFFF)
