"""The discrete-event simulator core.

:class:`Simulator` owns the virtual clock (microseconds), the event queue and
the process driver that interprets the commands yielded by generator
processes (see :mod:`repro.sim.process`).

Determinism: for a fixed configuration and seed, event order is a pure
function of ``(time, insertion sequence)``, so every run is bit-identical.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import DeadlockError, ProcessFailed
from . import access
from .events import Event, EventQueue, PRIORITY_DELIVERY, PRIORITY_WAKE
from .process import Busy, Compute, Fork, SimGen, SimProcess, WaitFor
from .trace import Tracer


class Simulator:
    """Event loop, virtual clock and process driver."""

    def __init__(self, tracer: Optional[Tracer] = None):
        self.now: float = 0.0
        self.queue = EventQueue()
        self.tracer = tracer or Tracer()
        self.processes: list[SimProcess] = []
        self._live_processes = 0
        self.events_processed = 0
        self.ops_executed = 0
        self.processes_spawned = 0
        #: Invariant monitors notified on every event pop (see
        #: repro.analysis.invariants); empty in production runs so the
        #: hot loop pays a single falsy check.
        self.monitors: list = []
        #: Extra counter providers (callables returning dicts) merged into
        #: :meth:`counters` — e.g. the fabric's per-hop network counters.
        self._counter_sources: list = []

    def add_monitor(self, monitor: Any) -> None:
        """Register an invariant monitor's ``on_event`` hook."""
        self.monitors.append(monitor)

    def add_counter_source(self, source: Callable[[], dict]) -> None:
        """Register a zero-arg callable whose dict extends :meth:`counters`."""
        self._counter_sources.append(source)

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 priority: int = PRIORITY_DELIVERY) -> Event:
        """Run ``fn(*args)`` after ``delay`` microseconds.

        ``priority`` picks the same-instant ordering class (see
        :mod:`repro.sim.events`): deliveries < wake-ups < timers.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.queue.push(self.now + delay, fn, args, priority)

    def at(self, time: float, fn: Callable[..., Any], *args: Any,
           priority: int = PRIORITY_DELIVERY) -> Event:
        """Run ``fn(*args)`` at absolute time ``time`` (must not be past)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        return self.queue.push(time, fn, args, priority)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        if not event.cancelled:
            event.cancel()
            self.queue.note_cancelled()

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def spawn(self, gen: SimGen, name: str = "proc",
              cpu: Optional[Any] = None) -> SimProcess:
        """Register a generator as a process and start it at the current time."""
        proc = SimProcess(gen, name, cpu)
        self.processes.append(proc)
        self._live_processes += 1
        self.processes_spawned += 1
        self.schedule(0.0, self._step, proc, None)
        return proc

    def run(self, until: Optional[float] = None, *,
            max_events: Optional[int] = None,
            error_on_deadlock: bool = True) -> float:
        """Drain the event queue (optionally bounded); returns final time."""
        queue = self.queue
        monitors = self.monitors
        tracer = access.TRACER
        processed = 0
        while True:
            if max_events is not None and processed >= max_events:
                break
            if until is not None:
                next_time = queue.peek_time()
                if next_time is None:
                    # Queue drained before the bound: the clock still
                    # advances to `until`, exactly as it does when an
                    # event beyond the bound remains queued.
                    if until > self.now:
                        self.now = until
                    break
                if next_time > until:
                    # Leave the event queued so the run can be resumed.
                    self.now = until
                    break
            ev = queue.pop()
            if ev is None:
                break
            if monitors:
                for monitor in monitors:
                    monitor.on_event(ev.time, self.now)
            if tracer is not None:
                tracer.on_event_begin(ev)
            self.now = ev.time
            ev.fn(*ev.args)
            processed += 1
        self.events_processed += processed
        if error_on_deadlock and until is None and max_events is None:
            # Processes whose CPU fail-stopped (repro.faults rank_crash)
            # are dead by design, not deadlocked.
            blocked = [p.name for p in self.processes
                       if not p.done
                       and not (p.cpu is not None
                                and getattr(p.cpu, "crashed", False))]
            if blocked:
                raise DeadlockError(blocked)
        return self.now

    def run_process(self, gen: SimGen, name: str = "main",
                    cpu: Optional[Any] = None) -> Any:
        """Convenience: spawn ``gen``, run to completion, return its value."""
        proc = self.spawn(gen, name, cpu)
        self.run()
        return proc.result

    @property
    def live_process_count(self) -> int:
        return self._live_processes

    def counters(self) -> dict:
        """Per-run work counters (events popped, process-driver ops,
        processes spawned) — the denominator side of the orchestrator's
        wall-time metrics (events/second across a sweep)."""
        out = {
            "events": self.events_processed,
            # Heap entries cancelled before firing (defunct recovery
            # timers, rescheduled CPU wake-ups): invisible in `events`
            # because lazy cancellation skips them on pop, yet they are
            # real heap load worth benchmarking.
            "events_cancelled": self.queue.cancelled,
            "ops": self.ops_executed,
            "processes": self.processes_spawned,
        }
        for source in self._counter_sources:
            out.update(source())
        return out

    # ------------------------------------------------------------------
    # the process driver
    # ------------------------------------------------------------------
    def _step(self, proc: SimProcess, value: Any = None) -> None:
        if proc.done:
            return
        if proc.cpu is not None and getattr(proc.cpu, "crashed", False):
            return  # fail-stopped rank: the process never advances again
        self.ops_executed += 1
        try:
            cmd = proc.gen.send(value)
        except StopIteration as stop:
            proc.done = True
            proc.result = stop.value
            proc.finished_at = self.now
            self._live_processes -= 1
            proc.completion.fire(stop.value)
            return
        except ProcessFailed:
            raise
        except BaseException as exc:
            proc.done = True
            proc.error = exc
            self._live_processes -= 1
            raise ProcessFailed(proc.name, exc) from exc

        kind = type(cmd)
        if kind is Busy:
            if proc.cpu is None:
                self.schedule(cmd.duration, self._step, proc, None)
            else:
                proc.cpu.begin_busy(cmd.duration, cmd.category,
                                    lambda: self._step(proc, None),
                                    charges=cmd.charges)
        elif kind is Compute:
            if proc.cpu is None:
                self.schedule(cmd.duration, self._step, proc, None)
            else:
                proc.cpu.begin_compute(cmd.duration, cmd.category,
                                       lambda: self._step(proc, None))
        elif kind is WaitFor:
            if cmd.poll_category is not None and proc.cpu is not None:
                cpu = proc.cpu
                cpu.begin_poll(cmd.poll_category)

                def _poll_woken(val: Any, _cpu: Any = cpu,
                                _proc: Any = proc) -> None:
                    if getattr(_cpu, "crashed", False):
                        return
                    # Signals ignored while spinning still stole the CPU:
                    # the poller notices the wake-up late by that much.
                    # A frozen CPU (rank_pause) additionally cannot notice
                    # the wake-up until it thaws.
                    penalty = (_cpu.consume_interrupt_penalty()
                               + _cpu.thaw_delay())

                    def _resume() -> None:
                        _cpu.end_poll()
                        self._step(_proc, val)

                    # WAKE class: a poller resuming at time t observes
                    # every hardware delivery of time t (e.g. an rx
                    # completion landing at the exact wake instant).
                    self.schedule(penalty, _resume, priority=PRIORITY_WAKE)

                cmd.trigger.add_waiter(_poll_woken)
            else:
                cmd.trigger.add_waiter(
                    lambda val, _proc=proc: self.schedule(0.0, self._step, _proc, val))
        elif kind is Fork:
            child = self.spawn(cmd.gen, cmd.name, cmd.cpu)
            self.schedule(0.0, self._step, proc, child)
        else:
            raise TypeError(f"process {proc.name!r} yielded {cmd!r}, "
                            "expected a sim command")
