"""Lightweight event tracing.

Disabled by default (a single ``if`` per emit).  Tests and debugging sessions
enable it to get a structured log of packet sends, signal deliveries,
descriptor transitions and so on.  Records are plain dicts so they can be
filtered with ordinary comprehensions.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional


class Tracer:
    """Collects ``(time, kind, fields)`` records when enabled."""

    __slots__ = ("enabled", "records", "sink", "_clock")

    def __init__(self, enabled: bool = False,
                 sink: Optional[Callable[[dict], None]] = None):
        self.enabled = enabled
        self.records: list[dict[str, Any]] = []
        self.sink = sink
        self._clock: Callable[[], float] = lambda: 0.0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulator clock (called by cluster construction)."""
        self._clock = clock

    def emit(self, kind: str, **fields: Any) -> None:
        if not self.enabled:
            return
        record = {"t": self._clock(), "kind": kind}
        record.update(fields)
        if self.sink is not None:
            self.sink(record)
        else:
            self.records.append(record)

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        """All collected records with the given kind."""
        return [r for r in self.records if r["kind"] == kind]

    def kinds(self) -> set[str]:
        return {r["kind"] for r in self.records}

    def clear(self) -> None:
        self.records.clear()

    def format(self, records: Optional[Iterable[dict]] = None) -> str:
        """Human-readable dump, one record per line."""
        lines = []
        for r in (records if records is not None else self.records):
            fields = " ".join(f"{k}={v}" for k, v in r.items()
                              if k not in ("t", "kind"))
            lines.append(f"[{r['t']:12.3f}] {r['kind']:<24} {fields}")
        return "\n".join(lines)
