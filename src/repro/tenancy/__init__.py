"""repro.tenancy — multi-tenant cluster service.

Concurrent collective jobs sharing one simulated fabric: declarative
:class:`JobSpec`/:class:`ClusterSpec` requests, a :class:`Scheduler`
with pluggable placement policies (``packed`` / ``spread`` /
``topology_aware``), per-job namespacing and metrics (makespan,
slowdown vs. solo, min-max fairness), and a content-addressed
:class:`ResultCache` the orchestrator consults so repeated sweep points
are served bit-identically without re-simulating.
"""

from .cache import CACHE_SCHEMA, ResultCache, point_cache_key
from .placement import (PLACEMENTS, PlacementPolicy, locality_block_size,
                        make_placement, register_placement)
from .scheduler import AdmissionError, Placement, Scheduler
from .spec import BUILDS, COLLECTIVES, ClusterSpec, JobSpec, SpecError
from .service import (JobResult, TenancyResult, TenantContext,
                      run_tenancy)
from .workload import JobRankSample, job_program, make_job_program

__all__ = [
    "AdmissionError", "BUILDS", "CACHE_SCHEMA", "COLLECTIVES",
    "ClusterSpec", "JobRankSample", "JobResult", "JobSpec", "PLACEMENTS",
    "Placement", "PlacementPolicy", "ResultCache", "Scheduler",
    "SpecError", "TenancyResult", "TenantContext", "job_program",
    "locality_block_size", "make_job_program", "make_placement",
    "point_cache_key", "register_placement", "run_tenancy",
]
