"""Content-addressed result cache: canonical point hash → BENCH point.

A sweep point is a pure function of its serialized form — ``(config,
build, kind, seed, options, ...)`` in, bit-deterministic metrics out —
so repeated requests for the same point can be served from disk without
re-simulating.  The cache key is the SHA-256 of the point's canonical
JSON (sorted keys) prefixed with the cache and BENCH schema versions, so
any schema bump invalidates every old entry *by construction* — stale
entries are never read, they simply stop being addressed.

What is cached is exactly what BENCH json records per point: metrics,
worker wall time, sim counters and the invariant report.  ``wall_time_s``
is the *original* measurement, not the (near-zero) cache-hit time, which
is what makes a warm re-run's BENCH points byte-identical to the cold
run's.  The live benchmark ``result`` object is not cached (it is not
serializable and only table-assembly inside one process uses it).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

from ..orchestrate.benchjson import SCHEMA_VERSION
from ..orchestrate.points import PointResult, SweepPoint

#: Bump when the cached record's shape (not the BENCH schema) changes.
CACHE_SCHEMA = 1


def point_cache_key(point: SweepPoint) -> str:
    """Canonical content address for one sweep point."""
    payload = {
        "cache_schema": CACHE_SCHEMA,
        "bench_schema": SCHEMA_VERSION,
        "point": point.to_dict(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Directory-backed cache of completed sweep points."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, point: SweepPoint) -> Optional[PointResult]:
        """Served copy of ``point``'s result, or None (counted as a miss).

        Unreadable/corrupt entries count as misses and are overwritten by
        the next :meth:`put`.
        """
        path = self._path(point_cache_key(point))
        try:
            with open(path) as fh:
                record = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return PointResult(
            point=point,
            metrics=dict(record["metrics"]),
            wall_time_s=float(record["wall_time_s"]),
            counters=dict(record["counters"]),
            result=None,
            invariant_report=record.get("invariant_report"),
        )

    def put(self, result: PointResult) -> str:
        """Store a completed point; returns its content address."""
        key = point_cache_key(result.point)
        record = {
            "cache_schema": CACHE_SCHEMA,
            "bench_schema": SCHEMA_VERSION,
            "key": key,
            "point": result.point.to_dict(),
            "metrics": dict(result.metrics),
            "wall_time_s": result.wall_time_s,
            "counters": dict(result.counters),
            "invariant_report": result.invariant_report,
        }
        tmp = self._path(key) + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(record, fh, sort_keys=True, indent=1)
        os.replace(tmp, self._path(key))
        return key

    def stats(self) -> dict:
        """Hit/miss counters plus the on-disk entry count."""
        entries = sum(1 for name in os.listdir(self.directory)
                      if name.endswith(".json"))
        return {"hits": self.hits, "misses": self.misses,
                "entries": entries}
