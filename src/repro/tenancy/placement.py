"""Placement policies: where a job's ranks land on the shared cluster.

A policy maps a :class:`~repro.tenancy.spec.JobSpec` onto concrete host
slots chosen from the currently-free set.  Policies live behind a string
registry mirroring ``repro.topo.TOPOLOGIES`` so specs stay serializable
and new strategies plug in without touching the scheduler.

The contract (property-tested in ``tests/property``):

* ``place()`` is **pure and deterministic** — same (job, free set,
  cluster spec) in, same slot list out; no RNG, no wall clock.
* It returns exactly ``job.nranks`` distinct slots, all drawn from the
  free set, in ascending order (job rank *i* is the *i*-th smallest
  chosen slot, matching the world-rank ordering Communicators use).
* It never builds a :class:`Topology` or :class:`Fabric` — locality is
  computed analytically from the ClusterSpec knobs (simlint SIM013
  enforces that job-level code receives the shared fabric from the
  scheduler instead of constructing its own).
"""

from __future__ import annotations

from typing import Callable, FrozenSet

from ..topo.torus import _auto_width
from .spec import ClusterSpec, JobSpec

#: Registry of placement policies, keyed by the JobSpec.placement name.
PLACEMENTS: dict[str, "PlacementPolicy"] = {}


def register_placement(name: str) -> Callable:
    """Class decorator registering a policy instance under ``name``."""
    def deco(cls):
        cls.name = name
        PLACEMENTS[name] = cls()
        return cls
    return deco


def make_placement(name: str) -> "PlacementPolicy":
    try:
        return PLACEMENTS[name]
    except KeyError:
        raise ValueError(f"unknown placement policy {name!r}; "
                         f"known: {sorted(PLACEMENTS)}") from None


def locality_block_size(spec: ClusterSpec) -> int:
    """Hosts per locality block, computed from the spec's topology knobs.

    Fat-tree: hosts under one edge switch (intra-block traffic never
    crosses an uplink).  Torus: one row of the grid (row neighbours are
    single hops under dimension-order routing).  Crossbar: the whole
    cluster is one switch, so locality is trivial.
    """
    if spec.topology == "fattree":
        return max(1, min(spec.hosts, spec.fattree_hosts_per_switch))
    if spec.topology == "torus":
        width = spec.torus_width or _auto_width(spec.hosts)
        return max(1, min(spec.hosts, width))
    return spec.hosts


def _blocks(free_slots: FrozenSet[int],
            block: int) -> dict[int, list[int]]:
    """Free slots grouped by locality block, each group ascending."""
    groups: dict[int, list[int]] = {}
    for slot in sorted(free_slots):
        groups.setdefault(slot // block, []).append(slot)
    return groups


class PlacementPolicy:
    """Base class; subclasses implement :meth:`place`."""

    name = "base"

    def place(self, job: JobSpec, free_slots: FrozenSet[int],
              spec: ClusterSpec) -> list[int]:
        raise NotImplementedError


@register_placement("packed")
class PackedPlacement(PlacementPolicy):
    """Lowest-numbered free slots: dense prefix packing.

    A solo job on an empty cluster lands on slots ``0..nranks-1`` —
    exactly the legacy single-job world — which is what makes the
    tenancy-vs-legacy bit-identity test meaningful.
    """

    def place(self, job, free_slots, spec):
        return sorted(free_slots)[:job.nranks]


@register_placement("spread")
class SpreadPlacement(PlacementPolicy):
    """Round-robin one slot per locality block, widest dispersion.

    Maximizes the number of blocks a job touches (anti-affinity): useful
    as the adversarial baseline that makes every collective cross
    uplinks and contend with every co-tenant.
    """

    def place(self, job, free_slots, spec):
        groups = _blocks(free_slots, locality_block_size(spec))
        order = sorted(groups)
        chosen: list[int] = []
        cursor = {b: 0 for b in order}
        while len(chosen) < job.nranks:
            took = False
            for b in order:
                if cursor[b] < len(groups[b]):
                    chosen.append(groups[b][cursor[b]])
                    cursor[b] += 1
                    took = True
                    if len(chosen) == job.nranks:
                        break
            if not took:  # fewer free slots than nranks: caller's bug
                break
        return sorted(chosen)


@register_placement("topology_aware")
class TopologyAwarePlacement(PlacementPolicy):
    """Fewest locality blocks that fit the job (affinity).

    Best-fit when a single block has room (the block with the fewest
    free slots that still fits, minimizing fragmentation for later
    jobs); otherwise greedily takes the fullest blocks until satisfied.
    Keeps a job inside one fat-tree pod / torus row whenever possible,
    in the spirit of Bine trees' communication-locality argument.
    """

    def place(self, job, free_slots, spec):
        groups = _blocks(free_slots, locality_block_size(spec))
        fitting = [b for b in sorted(groups)
                   if len(groups[b]) >= job.nranks]
        if fitting:
            best = min(fitting, key=lambda b: (len(groups[b]), b))
            return groups[best][:job.nranks]
        chosen: list[int] = []
        need = job.nranks
        for b in sorted(groups, key=lambda b: (-len(groups[b]), b)):
            take = min(need, len(groups[b]))
            chosen.extend(groups[b][:take])
            need -= take
            if need == 0:
                break
        return sorted(chosen)
