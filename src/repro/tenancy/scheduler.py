"""The job scheduler: admission + slot bookkeeping for one shared cluster.

The :class:`Scheduler` owns the free-slot set of a
:class:`~repro.tenancy.spec.ClusterSpec` and turns submitted
:class:`~repro.tenancy.spec.JobSpec` requests into :class:`Placement`
records — disjoint by construction, because a slot leaves the free set
the moment it is granted.  Placement *strategy* is delegated to the
pluggable policies in :mod:`repro.tenancy.placement`; this module only
enforces the invariants every policy must satisfy (defensively, so a
buggy third-party policy fails loudly at submit time rather than as a
cross-job protocol violation deep inside the simulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .placement import make_placement
from .spec import ClusterSpec, JobSpec


class AdmissionError(RuntimeError):
    """The cluster cannot host this job (not enough free slots, or the
    placement policy returned an invalid slot set)."""


@dataclass(frozen=True)
class Placement:
    """One admitted job pinned to concrete host slots.

    ``slots`` is ascending; job-relative rank *i* runs on world slot
    ``slots[i]`` (the same world-rank ordering Communicator groups use).
    ``job_id`` is the submission index — the key every per-job namespace
    (communicator name, sim-process names, node tags, invariant-report
    entries, BENCH metrics) derives from.
    """

    job: JobSpec
    job_id: int
    slots: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.slots)


@dataclass
class Scheduler:
    """Slot bookkeeping for one shared cluster."""

    spec: ClusterSpec
    _free: set = field(init=False)
    _placements: list = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self.spec.validate()
        self._free = set(range(self.spec.hosts))

    @property
    def free_slots(self) -> tuple[int, ...]:
        return tuple(sorted(self._free))

    @property
    def placements(self) -> tuple[Placement, ...]:
        return tuple(self._placements)

    def submit(self, job: JobSpec) -> Placement:
        """Admit one job: pick slots via its placement policy, mark them
        busy, and return the pinned :class:`Placement`."""
        job.validate()
        policy = make_placement(job.placement)
        if job.nranks > len(self._free):
            raise AdmissionError(
                f"job {job.name!r} needs {job.nranks} slots but only "
                f"{len(self._free)} of {self.spec.hosts} are free")
        slots = list(policy.place(job, frozenset(self._free), self.spec))
        # Defensive validation of the policy contract: exactly nranks
        # distinct free in-range slots (a malformed policy must not be
        # able to alias two jobs onto one host).
        if (len(slots) != job.nranks or len(set(slots)) != len(slots)
                or not set(slots) <= self._free):
            raise AdmissionError(
                f"placement policy {job.placement!r} returned invalid "
                f"slots {slots} for job {job.name!r} "
                f"(free: {self.free_slots})")
        placement = Placement(job=job, job_id=len(self._placements),
                              slots=tuple(sorted(slots)))
        self._free -= set(slots)
        self._placements.append(placement)
        return placement

    def schedule(self, jobs) -> list[Placement]:
        """Admit a batch in submission order (names must be unique —
        they key RNG streams and sim-process names)."""
        jobs = list(jobs)
        names = [j.name for j in jobs]
        if len(set(names)) != len(names):
            raise AdmissionError(f"duplicate job names in batch: {names}")
        return [self.submit(job) for job in jobs]

    def release(self, placement: Placement) -> None:
        """Return a finished job's slots to the free pool."""
        self._free |= set(placement.slots)
