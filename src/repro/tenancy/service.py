"""The multi-tenant run service: N jobs, one fabric, per-job results.

``run_tenancy`` is the tenancy counterpart of
:func:`repro.runtime.program.run_program`: it builds **one** shared
cluster from a :class:`~repro.tenancy.spec.ClusterSpec`, schedules every
:class:`~repro.tenancy.spec.JobSpec` onto disjoint host slots, gives each
job a private :class:`~repro.mpich.communicator.Communicator` over its
slots (fresh matching contexts, so concurrent collectives can never
cross-match), and drives all jobs to completion in a single simulation —
contending for the same links, switch ports and NICs.

Job namespacing contract (DESIGN.md §14):

* **slots** — disjoint by scheduler construction; a world rank belongs
  to at most one job, so every per-node namespace (RNG streams, CPU
  accounting, NIC queues, descriptor instances, unexpected-queue keys —
  all already keyed by world rank) is per-job disjoint for free.
* **contexts** — each job's communicator allocates fresh context ids,
  isolating matching across jobs sharing a switch.
* **tags** — each shared-cluster node carries ``node.job_id`` /
  ``node.job_name``, which the invariant monitor copies into every
  violation so an INV-* report from a co-tenant run names the tenant.

Per-job metrics: makespan (arrival → last rank out of the closing
barrier), mean/max collective latency, NIC signals, and — when the solo
baseline is enabled — slowdown vs. running the same job alone on an
otherwise-idle but otherwise *identical* cluster (same slots, same seed,
same arrival, so the only difference is contention) plus the batch's
min/max fairness ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cluster.cluster import Cluster
from ..mpich.communicator import Communicator
from ..mpich.rank import MpiBuild
from ..runtime.context import MpiContext
from ..sim.trace import Tracer
from .scheduler import Placement, Scheduler
from .spec import ClusterSpec, JobSpec
from .workload import JobRankSample, job_program

_BUILDS = {"nab": MpiBuild.DEFAULT, "ab": MpiBuild.AB}


class TenantContext(MpiContext):
    """One rank's handle inside a tenant job.

    The job's communicator is installed as the context's *default*
    communicator, so rank programs written against the plain
    :class:`MpiContext` API run unchanged — collectives stay inside the
    job, while ``node``/``rank`` keep addressing the shared world.
    """

    def __init__(self, node, comm: Communicator, placement: Placement,
                 ab_params=None):
        super().__init__(node, comm, _BUILDS[placement.job.build],
                         ab_params)
        self.placement = placement

    @property
    def job(self) -> JobSpec:
        return self.placement.job

    @property
    def job_id(self) -> int:
        return self.placement.job_id

    @property
    def job_rank(self) -> int:
        """This rank's position inside the job (0..job.nranks-1)."""
        return self.comm_world.rank_of_world(self.node.id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TenantContext job={self.job.name!r} "
                f"rank={self.job_rank}/{self.size} on node {self.node.id}>")


@dataclass
class JobResult:
    """Per-job outcome of one tenancy run."""

    job_id: int
    name: str
    build: str
    collective: str
    slots: tuple
    arrival_us: float
    #: arrival -> last rank through the job's closing barrier.
    makespan_us: float
    #: Mean/max collective-call latency over measured iterations x ranks.
    avg_latency_us: float
    max_latency_us: float
    #: NIC signals raised on this job's slots (shared run).
    signals: int
    #: Numerically-verified collective results across ranks.
    checks: int
    #: Same job alone on an identical cluster (same slots/seed/arrival).
    solo_makespan_us: Optional[float] = None
    #: makespan / solo_makespan — contention-induced degradation.
    slowdown: Optional[float] = None


@dataclass
class TenancyResult:
    """Everything one multi-tenant run exposes."""

    spec: ClusterSpec
    jobs: list
    cluster: Cluster
    finished_at: float
    sim_counters: dict = field(default_factory=dict)

    def job(self, name: str) -> JobResult:
        for j in self.jobs:
            if j.name == name:
                return j
        raise KeyError(f"no job named {name!r}")

    def metrics(self) -> dict:
        """Flat float metrics for BENCH json (bit-deterministic)."""
        out: dict[str, float] = {"jobs": float(len(self.jobs))}
        slowdowns = []
        for j in self.jobs:
            prefix = f"job{j.job_id}"
            out[f"{prefix}_makespan_us"] = float(j.makespan_us)
            out[f"{prefix}_avg_latency_us"] = float(j.avg_latency_us)
            out[f"{prefix}_max_latency_us"] = float(j.max_latency_us)
            out[f"{prefix}_signals"] = float(j.signals)
            out[f"{prefix}_checks"] = float(j.checks)
            if j.slowdown is not None:
                out[f"{prefix}_slowdown"] = float(j.slowdown)
                slowdowns.append(float(j.slowdown))
        if self.jobs:
            out["max_makespan_us"] = max(float(j.makespan_us)
                                         for j in self.jobs)
        if slowdowns:
            out["mean_slowdown"] = sum(slowdowns) / len(slowdowns)
            out["max_slowdown"] = max(slowdowns)
            # Min-max fairness of degradation: 1.0 = every tenant pays
            # the same contention tax; -> 0 as one tenant starves.
            out["fairness_minmax"] = (min(slowdowns) / max(slowdowns)
                                      if max(slowdowns) > 0.0 else 1.0)
        return out


def _run_jobs_on_cluster(spec: ClusterSpec, placements: list,
                         tracer: Optional[Tracer] = None):
    """One simulation: every placement's job on one shared cluster.

    Returns ``(cluster, {job_id: [JobRankSample, ...]})``.
    """
    config = spec.build_config()
    cluster = Cluster(config, tracer)
    for p in placements:
        for slot in p.slots:
            node = cluster.nodes[slot]
            node.job_id = p.job_id
            node.job_name = p.job.name
    processes: dict[int, list] = {}
    for p in placements:
        comm = Communicator(p.slots, name=f"job{p.job_id}")
        procs = []
        for jrank, slot in enumerate(p.slots):
            ctx = TenantContext(cluster.nodes[slot], comm, p,
                                ab_params=config.ab)
            procs.append(cluster.sim.spawn(
                job_program(ctx, p.job),
                name=f"{p.job.name}.r{jrank}", cpu=ctx.node.cpu))
        processes[p.job_id] = procs
    cluster.sim.run()
    monitor = getattr(cluster, "monitor", None)
    if monitor is not None:
        monitor.finalize()
    samples = {job_id: [proc.result for proc in procs]
               for job_id, procs in processes.items()}
    return cluster, samples


def _job_result(placement: Placement, samples: list,
                cluster: Cluster) -> JobResult:
    job = placement.job
    assert all(isinstance(s, JobRankSample) for s in samples)
    end = max(s.end_us for s in samples)
    latencies = [lat for s in samples for lat in s.latencies]
    signals = sum(cluster.nodes[slot].nic.stats.signals_raised
                  for slot in placement.slots)
    return JobResult(
        job_id=placement.job_id,
        name=job.name,
        build=job.build,
        collective=job.collective,
        slots=placement.slots,
        arrival_us=job.arrival_us,
        makespan_us=end - job.arrival_us,
        avg_latency_us=(sum(latencies) / len(latencies)
                        if latencies else 0.0),
        max_latency_us=max(latencies) if latencies else 0.0,
        signals=signals,
        checks=sum(s.checks for s in samples),
    )


def run_tenancy(spec: ClusterSpec, jobs, *, solo_baseline: bool = True,
                tracer: Optional[Tracer] = None) -> TenancyResult:
    """Schedule ``jobs`` on one shared cluster and run them to completion.

    With ``solo_baseline`` (the default) each job is additionally re-run
    *alone* on a fresh, otherwise-identical cluster pinned to the same
    slots, so every :class:`JobResult` carries its contention slowdown
    and the batch metrics include min-max fairness.  The shared run is
    always simulated first, then the solos in job order — a fixed order,
    so results are bit-deterministic.
    """
    placements = Scheduler(spec).schedule(jobs)
    cluster, samples = _run_jobs_on_cluster(spec, placements, tracer)
    results = [_job_result(p, samples[p.job_id], cluster)
               for p in placements]
    if solo_baseline:
        for placement, shared in zip(placements, results):
            solo_cluster, solo_samples = _run_jobs_on_cluster(
                spec, [placement])
            solo = _job_result(placement, solo_samples[placement.job_id],
                               solo_cluster)
            shared.solo_makespan_us = solo.makespan_us
            shared.slowdown = (shared.makespan_us / solo.makespan_us
                               if solo.makespan_us > 0.0 else 1.0)
    return TenancyResult(
        spec=spec,
        jobs=results,
        cluster=cluster,
        finished_at=cluster.sim.now,
        sim_counters=dict(cluster.sim.counters()),
    )
