"""Declarative job and cluster specifications for the multi-tenant service.

A :class:`JobSpec` describes one tenant's collective job — how many ranks
it needs, which collective it runs, message size, build (ab vs. nab),
iteration count and per-iteration arrival skew — without saying *where* it
runs.  A :class:`ClusterSpec` describes the shared cluster — host count,
config factory, interconnect topology and tree-shape knobs — without
saying *what* runs on it.  The scheduler (:mod:`repro.tenancy.scheduler`)
joins the two by mapping each job's relative ranks onto disjoint host
slots of one shared fabric.

Both specs are frozen, validated, and JSON round-trippable, in the style
of codeflare's ``ClusterConfiguration``: a spec is a request you can
store, hash (the result cache keys on it via the orchestrator's
``SweepPoint``), and resubmit bit-identically.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any

from ..config import ClusterConfig, MpiParams, NetParams

#: Collectives a JobSpec may request (dispatched by repro.tenancy.workload).
COLLECTIVES = ("reduce", "allreduce", "bcast", "barrier")

#: Build tags a JobSpec may request (same vocabulary as SweepPoint.build).
BUILDS = ("nab", "ab")


class SpecError(ValueError):
    """A JobSpec/ClusterSpec failed validation."""


@dataclass(frozen=True)
class JobSpec:
    """One tenant's collective job (placement-free)."""

    #: Human-readable job name; must be unique within one submission batch
    #: (it names the job's RNG streams and sim processes).
    name: str
    #: Number of ranks the job needs (host slots are exclusive: one rank
    #: per slot, no oversubscription of a slot across jobs).
    nranks: int
    #: Which collective the job runs each iteration.
    collective: str = "reduce"
    #: Payload elements (float64 words) per collective call.
    elements: int = 4
    #: "ab" (application-bypass) or "nab" (default MPICH-over-GM).
    build: str = "ab"
    #: Measured iterations (after warmup).
    iterations: int = 10
    #: Warmup iterations excluded from latency samples.
    warmup: int = 2
    #: Per-rank per-iteration injected arrival skew, uniform in
    #: ``[0, max_skew_us]`` (the paper's imbalanced-arrival regime).
    max_skew_us: float = 0.0
    #: Virtual time at which the job arrives at the cluster; its ranks
    #: sleep passively until then (co-tenant jobs may arrive staggered).
    arrival_us: float = 0.0
    #: Placement policy name (see repro.tenancy.placement.PLACEMENTS).
    placement: str = "packed"

    def validate(self) -> None:
        if not self.name:
            raise SpecError("job name must be non-empty")
        if self.nranks < 1:
            raise SpecError(f"job {self.name!r}: nranks must be >= 1")
        if self.collective not in COLLECTIVES:
            raise SpecError(
                f"job {self.name!r}: unknown collective "
                f"{self.collective!r}; known: {list(COLLECTIVES)}")
        if self.build not in BUILDS:
            raise SpecError(f"job {self.name!r}: unknown build "
                            f"{self.build!r}; known: {list(BUILDS)}")
        if self.elements < 1:
            raise SpecError(f"job {self.name!r}: elements must be >= 1")
        if self.iterations < 1:
            raise SpecError(f"job {self.name!r}: iterations must be >= 1")
        if self.warmup < 0:
            raise SpecError(f"job {self.name!r}: warmup must be >= 0")
        if self.max_skew_us < 0.0:
            raise SpecError(f"job {self.name!r}: max_skew_us must be >= 0")
        if self.arrival_us < 0.0:
            raise SpecError(f"job {self.name!r}: arrival_us must be >= 0")
        if not self.placement:
            raise SpecError(f"job {self.name!r}: placement must be named")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "JobSpec":
        spec = cls(
            name=str(d["name"]),
            nranks=int(d["nranks"]),
            collective=str(d.get("collective", "reduce")),
            elements=int(d.get("elements", 4)),
            build=str(d.get("build", "ab")),
            iterations=int(d.get("iterations", 10)),
            warmup=int(d.get("warmup", 2)),
            max_skew_us=float(d.get("max_skew_us", 0.0)),
            arrival_us=float(d.get("arrival_us", 0.0)),
            placement=str(d.get("placement", "packed")),
        )
        spec.validate()
        return spec


@dataclass(frozen=True)
class ClusterSpec:
    """The shared cluster every tenant contends on (job-free)."""

    #: Total host slots (one rank per slot).
    hosts: int
    #: Named ClusterConfig factory (repro.orchestrate.points
    #: CONFIG_FACTORIES): "paper" | "homogeneous" | "extrapolated" |
    #: "quiet".
    factory: str = "quiet"
    #: Cluster RNG seed (skew/noise streams, drop draws, ...).
    seed: int = 1
    #: Interconnect topology (repro.topo registry).
    topology: str = "crossbar"
    #: Fat-tree: hosts per edge switch — also the locality block the
    #: topology_aware placement policy tries to keep a job inside.
    fattree_hosts_per_switch: int = 8
    #: Fat-tree: host-port to uplink bandwidth ratio.
    fattree_oversubscription: float = 1.0
    #: Torus: X extent (0 = auto-factor) — the torus locality block is
    #: one row of the grid.
    torus_width: int = 0
    #: Reduction-tree shape + radix shared by all jobs' collectives.
    tree_shape: str = "binomial"
    tree_radix: int = 2

    def validate(self) -> None:
        from ..orchestrate.points import CONFIG_FACTORIES
        if self.hosts < 1:
            raise SpecError("cluster hosts must be >= 1")
        if self.factory not in CONFIG_FACTORIES:
            raise SpecError(f"unknown config factory {self.factory!r}; "
                            f"known: {sorted(CONFIG_FACTORIES)}")

    def to_config_spec(self):
        """Lower to the orchestrator's serializable ConfigSpec.

        Overrides are attached only when a knob differs from the
        parameter-block default, so a default-knob ClusterSpec lowers to
        the exact same ConfigSpec (same ``variant()`` digest, same BENCH
        keys) a pre-tenancy sweep would have produced.
        """
        from ..orchestrate.points import ConfigSpec
        self.validate()
        net_default = NetParams()
        net = None
        if (self.topology != net_default.topology
                or self.fattree_hosts_per_switch
                != net_default.fattree_hosts_per_switch
                or self.fattree_oversubscription
                != net_default.fattree_oversubscription
                or self.torus_width != net_default.torus_width):
            net = replace(net_default,
                          topology=self.topology,
                          fattree_hosts_per_switch=(
                              self.fattree_hosts_per_switch),
                          fattree_oversubscription=(
                              self.fattree_oversubscription),
                          torus_width=self.torus_width)
        mpi_default = MpiParams()
        mpi = None
        if (self.tree_shape != mpi_default.tree_shape
                or self.tree_radix != mpi_default.tree_radix):
            mpi = replace(mpi_default, tree_shape=self.tree_shape,
                          tree_radix=self.tree_radix)
        return ConfigSpec(self.factory, self.hosts, self.seed,
                          net=net, mpi=mpi)

    def build_config(self) -> ClusterConfig:
        return self.to_config_spec().build()

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "ClusterSpec":
        kwargs: dict[str, Any] = {"hosts": int(d["hosts"])}
        for name, conv in (("factory", str), ("seed", int),
                           ("topology", str),
                           ("fattree_hosts_per_switch", int),
                           ("fattree_oversubscription", float),
                           ("torus_width", int), ("tree_shape", str),
                           ("tree_radix", int)):
            if name in d:
                kwargs[name] = conv(d[name])
        spec = cls(**kwargs)
        spec.validate()
        return spec
