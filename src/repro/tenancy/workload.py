"""The per-rank program every tenant job runs.

One generator body serves both worlds: under the tenancy service each
rank's context is a :class:`~repro.tenancy.service.TenantContext` whose
default communicator *is* the job's communicator, and under the legacy
single-job path (``repro.runtime.run_program``) the default communicator
is the world — the code is identical either way, which is what the
solo-job bit-identity test in ``tests/integration`` leans on.

Protocol per iteration (the cpu_util benchmark's shape, minus the
catch-up subtraction — here we measure the *collective call itself*):

    job barrier
    busy-loop( injected arrival skew + natural noise )   # interruptible
    t0 ... collective ... t1                             # latency sample

Skew and noise draw from the node's named RNG streams keyed by *world*
slot — slots are exclusive to one job, so streams are per-job disjoint
by construction and adding a co-tenant never perturbs another job's
draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bench.skew import SkewModel
from ..mpich.operations import SUM
from ..sim.process import Trigger, WaitFor
from .spec import JobSpec


@dataclass
class JobRankSample:
    """What one rank of one job hands back."""

    job_rank: int
    world_rank: int
    #: Virtual time the rank started its first iteration (post-arrival).
    start_us: float
    #: Virtual time the rank left the job's closing barrier.
    end_us: float
    #: Per-measured-iteration collective latency (us).
    latencies: list = field(default_factory=list)
    #: Collective results that checked out numerically.
    checks: int = 0


def job_program(mpi, job: JobSpec):
    """Generator body for one rank of ``job`` (any context whose default
    communicator is the job's communicator)."""
    comm = mpi.comm_world
    jrank = comm.rank_of_world(mpi.rank)
    if job.arrival_us > 0.0:
        # Passive sleep until the job arrives — no CPU billed, so an
        # early co-tenant never sees phantom contention from jobs that
        # have not arrived yet.
        arrive = Trigger()
        mpi.sim.at(job.arrival_us, arrive.fire)
        yield WaitFor(arrive)
    start = mpi.now

    skew_model = SkewModel(mpi.node.rng, mpi.node.config.noise,
                           job.max_skew_us)
    data = np.full(job.elements, float(jrank + 1), dtype=np.float64)
    n = comm.size
    expected = float(n * (n + 1) / 2)
    sample = JobRankSample(job_rank=jrank, world_rank=mpi.rank,
                           start_us=start, end_us=start)
    total_iters = job.warmup + job.iterations
    for it in range(total_iters):
        yield from mpi.barrier()
        skew = skew_model.skew_delay(mpi.rank, it)
        noise = skew_model.noise_delay(mpi.rank, it)
        yield from mpi.compute(skew + noise)
        t0 = mpi.now
        ok = True
        if job.collective == "reduce":
            result = yield from mpi.reduce(data, op=SUM, root=0)
            if jrank == 0:
                ok = bool(np.allclose(result, expected))
        elif job.collective == "allreduce":
            result = yield from mpi.allreduce(data, op=SUM)
            ok = bool(np.allclose(result, expected))
        elif job.collective == "bcast":
            payload = data if jrank == 0 else None
            result = yield from mpi.bcast(payload, root=0,
                                          count=job.elements,
                                          dtype=np.float64)
            ok = bool(np.allclose(result, 1.0))
        elif job.collective == "barrier":
            yield from mpi.barrier()
        else:  # pragma: no cover - JobSpec.validate rejects this earlier
            raise ValueError(f"unknown collective {job.collective!r}")
        t1 = mpi.now
        if not ok:
            raise AssertionError(
                f"job {job.name!r} rank {jrank} iteration {it}: "
                f"bad {job.collective} result")
        sample.checks += 1
        if it >= job.warmup:
            sample.latencies.append(t1 - t0)
    # Closing barrier: the job's makespan is when its *last* rank is
    # done, observed identically by every rank.
    yield from mpi.barrier()
    sample.end_us = mpi.now
    return sample


def make_job_program(job: JobSpec):
    """Bind ``job`` into a ``program(mpi)`` callable for run_program or
    the tenancy service."""
    def program(mpi):
        result = yield from job_program(mpi, job)
        return result
    return program
