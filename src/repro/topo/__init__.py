"""repro.topo — pluggable interconnect topologies and reduction-tree shapes.

Two registries extend the simulator past the paper's fixed testbed:

* :data:`TOPOLOGIES` / :func:`make_topology` — how packets move between
  hosts (``NetParams.topology``): the paper's single crossbar, a
  two-level fat-tree with configurable oversubscription, a 2D torus with
  dimension-order routing.
* :data:`TREE_SHAPES` / :func:`make_tree_shape` — how collectives and
  the AB engines arrange ranks (``MpiParams.tree_shape`` /
  ``tree_radix``): binomial (default), k-nomial, pipelined chain, bine.

See DESIGN.md ("repro.topo") for the interfaces, the FIFO-across-hops
argument, and the registry extension guide.
"""

from .base import TOPOLOGIES, Topology, make_topology, register_topology
from .crossbar import CrossbarTopology
from .fattree import FatTreeTopology
from .torus import TorusTopology
from .trees import (
    TREE_SHAPES,
    BineTree,
    BinomialTree,
    ChainTree,
    KnomialTree,
    TreeShape,
    make_tree_shape,
)

__all__ = [
    "TOPOLOGIES",
    "Topology",
    "make_topology",
    "register_topology",
    "CrossbarTopology",
    "FatTreeTopology",
    "TorusTopology",
    "TREE_SHAPES",
    "TreeShape",
    "make_tree_shape",
    "BinomialTree",
    "KnomialTree",
    "ChainTree",
    "BineTree",
]
