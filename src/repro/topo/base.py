"""Pluggable interconnect topologies.

A :class:`Topology` owns every switch and link between the hosts' NICs
and describes a packet's path as an ordered list of ``(switch, out_port)``
hops.  The shared :meth:`Topology.transit` method charges the cut-through
timing model along that path:

* the source host's TX link serializes the frame (head leaves at the
  link-grant time ``start``),
* each hop charges the switch's forwarding latency once and serializes
  the frame on the chosen output link; the *head* of the frame advances
  to the next hop as soon as that hop granted its output port
  (cut-through: no store-and-forward of the full frame),
* the frame arrives one cable latency after the final hop finishes
  draining.

For a single-crossbar route this reproduces the original
``Fabric.inject`` arithmetic operation for operation, so the default
configuration stays bit-identical.

Routes must be a *deterministic pure function of (src, dst)* — never of
load or time.  The fabric's per-(src, dst) FIFO guarantee (which the AB
late-message matching depends on, paper Sec. IV-D) relies on consecutive
packets of a pair sharing one path: each shared resource (host TX link,
switch output link) is itself FIFO, and a fixed path composes those into
an end-to-end FIFO order.  Adaptive per-packet routing would break that;
implement it only together with a reorder buffer at the sink.

That purity is also what makes **route caching** sound: :meth:`Topology.route`
memoizes the computed hop list per ``(src, dst)`` pair, so routing is O(1)
per packet after the pair's first packet (the torus walks its whole
dimension-order path per call — dozens of hops at 4096 ranks — and the
per-packet rebuild dominated large-scale profiles).  Subclasses implement
:meth:`Topology._compute_route`; the cache lives behind ``route()`` so
every consumer (the fabric's transit path, diagnostics, tests) shares it.
A topology whose routes depended on load or time would break the cache
*and* the FIFO guarantee — the same contract protects both.
"""

from __future__ import annotations

from typing import Callable

from ..network.link import Link
from ..network.switch import CrossbarSwitch


class Topology:
    """Interconnect between ``nodes`` hosts (see module docstring)."""

    name = "abstract"

    def __init__(self, params, nodes: int):
        self.params = params
        self.nodes = nodes
        #: per-host NIC transmit link (serialization at the source)
        self.host_links = [
            Link(f"host[{n}].tx", params.link_bytes_per_us)
            for n in range(nodes)
        ]
        #: every switch in the fabric, for counters/utilization scans
        self.switches: list[CrossbarSwitch] = []
        #: total switch traversals charged (per-hop counter)
        self.hops = 0
        #: memoized (src, dst) -> hop list (see module docstring); one
        #: entry per pair that ever routed a packet, never invalidated —
        #: routes are pure functions of the pair by contract.
        self._route_cache: dict[tuple[int, int], list] = {}

    def route(self, src: int, dst: int) -> list[tuple[CrossbarSwitch, int]]:
        """Ordered (switch, out_port) hops from ``src``'s NIC to ``dst``
        (memoized; see :meth:`_compute_route` for the actual routing)."""
        key = (src, dst)
        hops = self._route_cache.get(key)
        if hops is None:
            hops = self._route_cache[key] = self._compute_route(src, dst)
        return hops

    def _compute_route(self, src: int,
                       dst: int) -> list[tuple[CrossbarSwitch, int]]:
        """Compute the hop list for one pair (subclass responsibility).
        Must be a deterministic pure function of ``(src, dst)``."""
        raise NotImplementedError

    def transit(self, at: float, src: int, dst: int, wire_bytes: int) -> float:
        """Charge the full path and return the arrival time at ``dst``."""
        start, _ = self.host_links[src].transmit(at, wire_bytes)
        cable = self.params.cable_latency_us
        head = start + cable
        finish = head
        hops = self._route_cache.get((src, dst))
        if hops is None:
            hops = self.route(src, dst)
        for switch, port in hops:
            hop_start, finish = switch.traverse_timed(head, port, wire_bytes)
            head = hop_start + cable
        self.hops += len(hops)
        return finish + cable

    def counters(self) -> dict:
        """Per-hop counters merged into ``Simulator.counters()``."""
        return {
            "net_hops": self.hops,
            "net_switch_forwarded": sum(sw.forwarded for sw in self.switches),
            "net_route_cache_entries": len(self._route_cache),
        }

    def max_port_utilization(self, horizon: float) -> float:
        """Hottest output port across the fabric (network hot spot)."""
        best = 0.0
        for sw in self.switches:
            util = sw.port_utilization(horizon)
            if util:
                best = max(best, max(util))
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Topology {self.name} nodes={self.nodes}>"


#: Registry: ``NetParams.topology`` name -> Topology subclass.
TOPOLOGIES: dict[str, Callable[..., Topology]] = {}


def register_topology(name: str):
    """Class decorator adding a topology to the registry."""
    def deco(cls):
        cls.name = name
        TOPOLOGIES[name] = cls
        return cls
    return deco


def make_topology(params, nodes: int) -> Topology:
    """Instantiate the topology selected by ``params.topology``."""
    name = getattr(params, "topology", "crossbar")
    try:
        cls = TOPOLOGIES[name]
    except KeyError:
        raise ValueError(f"unknown topology {name!r}; "
                         f"known: {sorted(TOPOLOGIES)}") from None
    return cls(params, nodes)
