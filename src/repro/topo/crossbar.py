"""The paper's testbed interconnect: one full-crossbar cut-through switch.

Every host has a dedicated port on a single ``nodes``-port crossbar, so a
packet makes exactly one hop and contention exists only at the output
port feeding the destination.  This is the refactored original fabric;
its timing is bit-identical to the pre-registry code.
"""

from __future__ import annotations

from ..network.switch import CrossbarSwitch
from .base import Topology, register_topology


@register_topology("crossbar")
class CrossbarTopology(Topology):
    """Single full crossbar — one hop, output-port contention only."""

    def __init__(self, params, nodes: int):
        super().__init__(params, nodes)
        self.switch = CrossbarSwitch(
            nodes, params.switch_latency_us, params.link_bytes_per_us
        )
        self.switches = [self.switch]

    def _compute_route(self, src: int, dst: int):
        return [(self.switch, dst)]
