"""Two-level fat-tree (folded Clos) with configurable oversubscription.

Hosts attach to edge switches in blocks of
``NetParams.fattree_hosts_per_switch``; every edge switch has ``up``
uplinks, one to each spine switch, with ``up = round(down /
oversubscription)``.  Oversubscription 1.0 is a full-bisection fat-tree;
2.0 gives edge switches half as many uplinks as host ports, so
cross-edge traffic contends for the thinner spine layer — the knob the
`fig_topo` sweep turns to create network hot spots.

Routing is the standard deterministic up/down: same-edge pairs turn
around at their edge switch (one hop); cross-edge pairs go edge → spine
→ edge (three hops), with the spine chosen by a static hash of
``(src, dst)``.  Static per-pair spine selection keeps every (src, dst)
pair on a single path, preserving the fabric's per-pair FIFO guarantee
(see :mod:`repro.topo.base`).
"""

from __future__ import annotations

from ..network.switch import CrossbarSwitch
from .base import Topology, register_topology


@register_topology("fattree")
class FatTreeTopology(Topology):
    """Two-level folded Clos (see module docstring)."""

    def __init__(self, params, nodes: int):
        super().__init__(params, nodes)
        down = params.fattree_hosts_per_switch
        if down < 1:
            raise ValueError(
                f"fattree_hosts_per_switch must be >= 1, got {down}")
        ratio = params.fattree_oversubscription
        if ratio <= 0:
            raise ValueError(
                f"fattree_oversubscription must be > 0, got {ratio}")
        self.down = down
        self.n_edge = (nodes + down - 1) // down
        self.up = max(1, round(down / ratio))
        latency = params.switch_latency_us
        rate = params.link_bytes_per_us
        # Edge ports: 0..down-1 face hosts, down..down+up-1 face spines.
        self.edge = [
            CrossbarSwitch(down + self.up, latency, rate)
            for _ in range(self.n_edge)
        ]
        # Spine ports: one per edge switch (down-links only).
        self.spine = [
            CrossbarSwitch(self.n_edge, latency, rate)
            for _ in range(self.up)
        ] if self.n_edge > 1 else []
        self.switches = self.edge + self.spine

    def _compute_route(self, src: int, dst: int):
        es, ed = src // self.down, dst // self.down
        if es == ed:
            return [(self.edge[es], dst % self.down)]
        s = (src + dst) % self.up
        return [
            (self.edge[es], self.down + s),
            (self.spine[s], ed),
            (self.edge[ed], dst % self.down),
        ]
