"""2D torus with dimension-order (X-then-Y) routing.

Each host owns a 5-port router (``+X, -X, +Y, -Y, eject``); packets hop
router to router, taking the shorter wrap-around direction per dimension
(ties go to the positive direction) and always finishing X before
starting Y.  Dimension-order routing is deterministic per (src, dst), so
every pair keeps a single path and the fabric's per-pair FIFO guarantee
holds (see :mod:`repro.topo.base`).

``NetParams.torus_width`` picks the X extent; 0 auto-factors the node
count into the most-square W×H grid (falling back toward a ring when the
count is prime).
"""

from __future__ import annotations

from math import isqrt

from ..network.switch import CrossbarSwitch
from .base import Topology, register_topology

_POS_X, _NEG_X, _POS_Y, _NEG_Y, _EJECT = range(5)


def _auto_width(nodes: int) -> int:
    w = isqrt(nodes)
    while w > 1 and nodes % w:
        w -= 1
    return w


def _signed_step(delta: int, dim: int) -> int:
    """Shorter wrap direction for ``delta`` hops around a ``dim`` ring
    (+1/-1 per hop); ties prefer the positive direction."""
    d = delta % dim
    return d if d <= dim - d else d - dim


@register_topology("torus")
class TorusTopology(Topology):
    """W×H torus of per-host routers (see module docstring)."""

    def __init__(self, params, nodes: int):
        super().__init__(params, nodes)
        w = params.torus_width or _auto_width(nodes)
        if w < 1 or nodes % w:
            raise ValueError(
                f"torus_width {w} does not divide node count {nodes}")
        self.width = w
        self.height = nodes // w
        self.routers = [
            CrossbarSwitch(5, params.switch_latency_us,
                           params.link_bytes_per_us)
            for _ in range(nodes)
        ]
        self.switches = list(self.routers)

    def _coords(self, node: int) -> tuple[int, int]:
        return node % self.width, node // self.width

    def _compute_route(self, src: int, dst: int):
        sx, sy = self._coords(src)
        dx, dy = self._coords(dst)
        hops = []
        cur_x, cur_y = sx, sy
        step = _signed_step(dx - sx, self.width)
        while cur_x != dx:
            port = _POS_X if step > 0 else _NEG_X
            hops.append((self.routers[cur_y * self.width + cur_x], port))
            cur_x = (cur_x + (1 if step > 0 else -1)) % self.width
        step = _signed_step(dy - sy, self.height)
        while cur_y != dy:
            port = _POS_Y if step > 0 else _NEG_Y
            hops.append((self.routers[cur_y * self.width + cur_x], port))
            cur_y = (cur_y + (1 if step > 0 else -1)) % self.height
        hops.append((self.routers[dst], _EJECT))
        return hops
