"""Pluggable reduction/broadcast tree shapes.

A :class:`TreeShape` is a strategy over *relative* ranks (``rel =
(rank - root) % size``, exactly the arithmetic of
:mod:`repro.mpich.collectives.tree`): ``parent(rel, size)`` names the node
a contribution is combined into and ``children(rel, size)`` lists the
contributors **in combine order** — the order the default reduction
receives and folds child results, which every implementation must keep
deterministic because the simulator's bit-reproducibility depends on it.

Registered shapes:

``binomial``
    MPICH's default (paper Fig. 1); delegates to
    :mod:`repro.mpich.collectives.tree` so the default configuration is
    bit-identical to the pre-registry code.
``knomial``
    Radix-``k`` generalization: a node's parent clears its lowest nonzero
    base-``k`` digit; radix 2 coincides with ``binomial``.  Shallower
    trees (fewer hop levels) at the cost of more children per node.
``chain``
    Fully pipelined chain (depth ``size - 1``): rank ``i`` combines into
    ``i - 1``.  The degenerate shape that maximizes per-link locality and
    minimizes per-node fan-in.
``bine``
    A locality-optimizing mirrored-binomial construction in the spirit of
    Bine trees (De Sensi et al.): over the next power of two ``p`` the
    root's subtrees of sizes ``1, 2, 4, ...`` are placed alternately at
    ``+1``, ``-1`` and ``+2^j`` (mod ``p``), each covering a *contiguous*
    rank interval, so tree edges span short rank distances.  Non-powers
    of two fold each missing node's subtree onto its nearest surviving
    virtual ancestor (the root, rank 0, always survives).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from ..mpich.collectives import tree


def _check(value: int, size: int) -> None:
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    if not (0 <= value < size):
        raise ValueError(f"rank {value} outside 0..{size - 1}")


class TreeShape:
    """Strategy interface: parent/children on relative ranks.

    Implementations must be pure functions of ``(rel, size)`` — no state,
    no randomness — so every rank computes the same tree independently.
    """

    name = "abstract"

    def parent(self, rel: int, size: int) -> int:
        """Relative rank ``rel`` combines into (raises on ``rel == 0``)."""
        raise NotImplementedError

    def children(self, rel: int, size: int) -> list[int]:
        """Children of ``rel`` in deterministic combine order."""
        raise NotImplementedError

    # -- derived (override when a closed form exists) -------------------
    def depth(self, rel: int, size: int) -> int:
        """Hops from ``rel`` to the root."""
        _check(rel, size)
        d = 0
        while rel != 0:
            rel = self.parent(rel, size)
            d += 1
        return d

    def max_depth(self, size: int) -> int:
        """Deepest level of the tree over ``size`` nodes."""
        return max(self.depth(rel, size) for rel in range(size))

    def deepest_rel(self, size: int) -> int:
        """The relative rank farthest from the root (the paper's "last
        node"); ties broken toward the largest rank, matching
        :func:`repro.mpich.collectives.tree.deepest_relative_rank`."""
        best = 0
        best_depth = 0
        for rel in range(size):
            d = self.depth(rel, size)
            if d >= best_depth:
                best = rel
                best_depth = d
        return best

    def edges(self, size: int) -> list[tuple[int, int]]:
        """All (parent, child) pairs — used by tests and diagrams."""
        return [(self.parent(rel, size), rel) for rel in range(1, size)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TreeShape {self.name}>"


class BinomialTree(TreeShape):
    """MPICH's binomial tree, delegating to the original rank arithmetic
    so existing configurations stay bit-identical."""

    name = "binomial"

    def parent(self, rel: int, size: int) -> int:
        _check(rel, size)
        return tree.parent(rel)

    def children(self, rel: int, size: int) -> list[int]:
        return tree.children(rel, size)

    def depth(self, rel: int, size: int) -> int:
        _check(rel, size)
        return tree.depth(rel)

    def max_depth(self, size: int) -> int:
        return tree.max_depth(size)

    def deepest_rel(self, size: int) -> int:
        return tree.deepest_relative_rank(size)


class KnomialTree(TreeShape):
    """Radix-``k`` generalization of the binomial tree.

    A node's parent clears its lowest nonzero base-``k`` digit; its
    children add ``j * k^i`` (``j`` in ``1..k-1``) at every digit position
    ``i`` below its own lowest nonzero digit, bounded by ``size``, in
    increasing ``(position, j)`` order.
    """

    def __init__(self, radix: int):
        if radix < 2:
            raise ValueError(f"k-nomial radix must be >= 2, got {radix}")
        self.radix = radix
        self.name = f"knomial({radix})"

    def parent(self, rel: int, size: int) -> int:
        _check(rel, size)
        if rel == 0:
            raise ValueError("root has no parent")
        k = self.radix
        mask = 1
        while (rel // mask) % k == 0:
            mask *= k
        return rel - ((rel // mask) % k) * mask

    def children(self, rel: int, size: int) -> list[int]:
        _check(rel, size)
        k = self.radix
        result = []
        mask = 1
        while mask < size:
            if (rel // mask) % k:
                break
            for j in range(1, k):
                child = rel + j * mask
                if child < size:
                    result.append(child)
            mask *= k
        return result


class ChainTree(TreeShape):
    """Fully pipelined chain: rank ``i`` combines into ``i - 1``."""

    name = "chain"

    def parent(self, rel: int, size: int) -> int:
        _check(rel, size)
        if rel == 0:
            raise ValueError("root has no parent")
        return rel - 1

    def children(self, rel: int, size: int) -> list[int]:
        _check(rel, size)
        return [rel + 1] if rel + 1 < size else []

    def depth(self, rel: int, size: int) -> int:
        _check(rel, size)
        return rel

    def max_depth(self, size: int) -> int:
        return size - 1

    def deepest_rel(self, size: int) -> int:
        return size - 1


@lru_cache(maxsize=None)
def _bine_virtual(p: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Virtual bine tree over ``p = 2^h`` ranks: (parent per rank,
    preorder traversal in placement order)."""
    parent = [0] * p
    order: list[int] = []

    def build(root: int, span: int, direction: int) -> None:
        order.append(root)
        s = 1
        while s < span:
            if s == 1:
                child, d = (root + direction) % p, direction
            elif s == 2:
                # The mirrored subtree: placed on the other side of the
                # root and grown in the opposite direction.
                child, d = (root - direction) % p, -direction
            else:
                child, d = (root + s * direction) % p, direction
            parent[child] = root
            build(child, s, d)
            s *= 2

    build(0, p, +1)
    return tuple(parent), tuple(order)


@lru_cache(maxsize=None)
def _bine_folded(size: int) -> tuple[dict[int, int], dict[int, tuple[int, ...]]]:
    """Fold the virtual power-of-two bine tree down to ``size`` ranks:
    a missing node's children are promoted to its nearest surviving
    virtual ancestor.  Child order follows the virtual preorder, keeping
    the combine order deterministic."""
    p = 1
    while p < size:
        p *= 2
    vparent, vorder = _bine_virtual(p)
    parent: dict[int, int] = {}
    for v in range(1, size):
        a = vparent[v]
        while a >= size:
            a = vparent[a]
        parent[v] = a
    children: dict[int, list[int]] = {r: [] for r in range(size)}
    for v in vorder:
        if v != 0 and v < size:
            children[parent[v]].append(v)
    return parent, {r: tuple(c) for r, c in children.items()}


class BineTree(TreeShape):
    """Locality-optimizing mirrored-binomial tree (see module docstring)."""

    name = "bine"

    def parent(self, rel: int, size: int) -> int:
        _check(rel, size)
        if rel == 0:
            raise ValueError("root has no parent")
        return _bine_folded(size)[0][rel]

    def children(self, rel: int, size: int) -> list[int]:
        _check(rel, size)
        return list(_bine_folded(size)[1][rel])


#: Registry: shape name -> factory taking the configured radix (shapes
#: without a radix knob ignore it).
TREE_SHAPES: dict[str, Callable[[int], TreeShape]] = {
    "binomial": lambda radix: BinomialTree(),
    "knomial": KnomialTree,
    "chain": lambda radix: ChainTree(),
    "bine": lambda radix: BineTree(),
}


def make_tree_shape(name: str, radix: int = 2) -> TreeShape:
    """Instantiate a registered tree shape (``MpiParams.tree_shape`` /
    ``MpiParams.tree_radix``)."""
    try:
        factory = TREE_SHAPES[name]
    except KeyError:
        raise ValueError(f"unknown tree shape {name!r}; "
                         f"known: {sorted(TREE_SHAPES)}") from None
    return factory(radix)
