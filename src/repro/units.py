"""Time, size and rate units used throughout the simulation.

The simulator's clock is a ``float`` measured in **microseconds** — the
natural unit for the paper, whose skews, latencies and CPU utilizations are
all reported in microseconds.  These helpers exist so that configuration code
reads unambiguously (``ms(1.5)`` instead of a bare ``1500.0``).

Sizes are **bytes**; bandwidths are **bytes per microsecond** (1 byte/us ==
1 MB/s exactly in this convention: 1e6 bytes / 1e6 us).
"""

from __future__ import annotations

#: One microsecond (the base time unit).
USEC: float = 1.0

#: One millisecond, expressed in microseconds.
MSEC: float = 1_000.0

#: One second, expressed in microseconds.
SEC: float = 1_000_000.0


def us(value: float) -> float:
    """Microseconds (identity; for symmetry with :func:`ms` / :func:`s`)."""
    return float(value)


def ms(value: float) -> float:
    """Milliseconds → microseconds."""
    return float(value) * MSEC


def s(value: float) -> float:
    """Seconds → microseconds."""
    return float(value) * SEC


def gbit_per_s(value: float) -> float:
    """Gigabits per second → bytes per microsecond.

    Myrinet-2000 runs at 2 Gbit/s full duplex, i.e. ``gbit_per_s(2.0) == 250``
    bytes/us.
    """
    return float(value) * 1e9 / 8.0 / 1e6


def mbyte_per_s(value: float) -> float:
    """Megabytes per second → bytes per microsecond."""
    return float(value) * 1e6 / 1e6


def per_byte_us(bandwidth_bytes_per_us: float) -> float:
    """Invert a bandwidth into a per-byte cost in microseconds."""
    if bandwidth_bytes_per_us <= 0.0:
        raise ValueError("bandwidth must be positive")
    return 1.0 / bandwidth_bytes_per_us


#: Size of one "double word" element (the paper reports message sizes in
#: double-word elements, i.e. 8-byte IEEE doubles).
DOUBLE_BYTES: int = 8


def elements_to_bytes(elements: int) -> int:
    """Convert a double-word element count to bytes."""
    if elements < 0:
        raise ValueError("element count must be non-negative")
    return int(elements) * DOUBLE_BYTES
