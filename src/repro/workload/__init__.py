"""repro.workload — process-arrival-pattern generators and metrics.

Real clusters never enter a collective synchronously.  This package
models *process-arrival patterns* (PAPs): deterministic per-rank delays
injected just before each collective entry, configured by the frozen
:class:`repro.config.WorkloadParams` block (disarmed by default — the
default configuration is bit-identical to a build without this
subsystem).  The generated :class:`ArrivalTrace` doubles as the
arrival-order oracle consumed by the PAP-aware allreduce lowerings
(``allreduce.pap_sorted`` / ``allreduce.pap_prereduced`` in
``repro.schedule``) and feeds imbalance metrics (arrival spread, Proficz
kappa) into BENCH json via the standard counter-source hook.
"""

from __future__ import annotations

from . import metrics
from .model import WorkloadModel
from .patterns import PATTERNS, generate_trace, register_pattern
from .trace import ArrivalTrace, WorkloadError

__all__ = [
    "ArrivalTrace",
    "PATTERNS",
    "WorkloadError",
    "WorkloadModel",
    "generate_trace",
    "metrics",
    "register_pattern",
]
