"""Arrival-imbalance metrics.

Quantifies how imbalanced a process-arrival pattern is, following
Proficz (arXiv:1804.05349): the *arrival spread* of one collective entry
is ``max - min`` arrival time across ranks, and the *imbalance factor*
kappa normalises the mean spread by a reference time (here: the
conservative single-collective latency estimate from
:func:`repro.bench.skew.conservative_latency_estimate`).  kappa << 1
means arrivals are effectively synchronous; kappa >> 1 means the
pattern, not the collective, dominates the makespan — the regime where
PAP-aware schedules pay off.
"""

from __future__ import annotations

from .trace import ArrivalTrace


def spread_stats(trace: ArrivalTrace) -> dict:
    """Min/mean/max arrival spread (us) over all iterations of a trace."""
    spreads = [trace.spread(it) for it in range(trace.iterations)]
    return {
        "arrival_spread_min_us": min(spreads),
        "arrival_spread_mean_us": sum(spreads) / len(spreads),
        "arrival_spread_max_us": max(spreads),
    }


def imbalance_kappa(trace: ArrivalTrace, reference_us: float) -> float:
    """Proficz's imbalance factor: mean arrival spread / reference time.

    ``reference_us`` is the time one balanced collective takes; pass the
    conservative latency estimate used elsewhere in the bench layer so
    kappa is comparable across patterns and message sizes.
    """
    if reference_us <= 0.0:
        raise ValueError(f"reference_us must be > 0: {reference_us}")
    mean_spread = sum(
        trace.spread(it) for it in range(trace.iterations)) / trace.iterations
    return mean_spread / reference_us


def describe(trace: ArrivalTrace, reference_us: float) -> dict:
    """One flat dict with the spread stats plus kappa (BENCH-json ready)."""
    stats = spread_stats(trace)
    stats["arrival_kappa"] = imbalance_kappa(trace, reference_us)
    return stats
