"""The per-cluster workload model: trace owner, delay oracle, counters.

:class:`WorkloadModel` is built by :class:`repro.cluster.Cluster` *only
when* ``config.workload.armed`` — the disarmed path constructs nothing,
draws no stream and registers no counter source, which is what makes the
default configuration bit-identical to a build without this subsystem.

One model owns one :class:`~repro.workload.trace.ArrivalTrace` for the
whole run (generated once by :meth:`prepare`), hands out per-(rank,
iteration) delays for the benchmark loop to inject via ``mpi.compute``,
exposes the *arrival-order oracle* (:meth:`order`) the PAP-aware
lowerings consume, and reports imbalance metrics through the standard
``add_counter_source`` hook so they land in every BENCH json.
"""

from __future__ import annotations

from ..config import WorkloadParams
from ..sim.random import RngStreams
from . import metrics
from .patterns import generate_trace
from .trace import ArrivalTrace, WorkloadError


class WorkloadModel:
    """Deterministic arrival-delay oracle for one cluster run."""

    def __init__(self, params: WorkloadParams, nranks: int, rng: RngStreams):
        params.validate()
        self.params = params
        self.nranks = nranks
        self._rng = rng
        self.trace: ArrivalTrace | None = None
        self._reference_us = 0.0
        #: Per-rank injection counts.  Only integers are accumulated at
        #: charge time — the microsecond total is recomputed rank-major
        #: in :meth:`counters`, so the float sum never depends on the
        #: cross-rank order in which same-time processes happened to call
        #: :meth:`charge` (the schedule-perturbation sanitizer checks
        #: this).
        self._charges = [0] * nranks

    # ------------------------------------------------------------------
    # trace lifecycle

    def prepare(self, iterations: int, *,
                reference_us: float = 0.0) -> ArrivalTrace:
        """Generate the run's trace (idempotent for a same-size request).

        ``reference_us`` is the balanced-collective latency used to
        normalise kappa; 0 leaves kappa unreported.  A later call asking
        for *more* iterations than the first is an error — the trace is
        the run's single source of arrival truth.
        """
        if self.trace is not None:
            if iterations > self.trace.iterations:
                raise WorkloadError(
                    f"trace already prepared for {self.trace.iterations} "
                    f"iteration(s); cannot grow to {iterations}")
            return self.trace
        self.trace = generate_trace(self.params, self.nranks, iterations,
                                    self._rng)
        self._reference_us = float(reference_us)
        return self.trace

    def _require_trace(self) -> ArrivalTrace:
        if self.trace is None:
            raise WorkloadError("WorkloadModel.prepare() has not been called")
        return self.trace

    # ------------------------------------------------------------------
    # delay + order oracles

    def delay(self, rank: int, iteration: int) -> float:
        """Pre-collective delay (us) for ``rank`` at ``iteration``."""
        return self._require_trace().delay(rank, iteration)

    def charge(self, rank: int, iteration: int) -> float:
        """Like :meth:`delay`, but counts the injection in the counters.

        The benchmark loop calls this exactly once per (rank, iteration)
        it actually delays, so ``workload_delays`` in the BENCH json is
        the number of injections actually performed.
        """
        d = self.delay(rank, iteration)
        self._charges[rank] += 1
        return d

    def order(self, iteration: int) -> tuple:
        """Arrival order (earliest rank first) — the PAP schedule oracle."""
        return self._require_trace().order(iteration)

    # ------------------------------------------------------------------
    # counters (registered via Simulator.add_counter_source)

    def counters(self) -> dict:
        # Each rank's charges arrive in iteration order, so replaying
        # range(charges[rank]) against the trace reproduces exactly the
        # delays handed out — in a fixed rank-major fold order.
        injected_us = 0.0
        if self.trace is not None:
            for rank in range(self.nranks):
                for it in range(self._charges[rank]):
                    injected_us += self.trace.delay(rank, it)
        out = {
            "workload_pattern": self.params.pattern,
            "workload_delays": sum(self._charges),
            "workload_delay_us": injected_us,
        }
        if self.trace is not None:
            out.update(metrics.spread_stats(self.trace))
            if self._reference_us > 0.0:
                out["arrival_kappa"] = metrics.imbalance_kappa(
                    self.trace, self._reference_us)
        return out
