"""Deterministic per-rank arrival-pattern generators.

Each generator maps ``(WorkloadParams, nranks, iterations, RngStreams)``
to an :class:`~repro.workload.trace.ArrivalTrace` — the full matrix of
pre-collective delays, produced once per run.  Generators draw only from
per-rank named streams (``workload/<rank>`` via
:meth:`RngStreams.node_stream`, plus ``workload/groups`` for bursty
membership), so arming a workload never perturbs the skew/noise streams
the rest of the simulation consumes.

The registry keys mirror :data:`repro.config.WORKLOAD_PATTERNS` (minus
the disarming ``"none"``); a module-import assertion keeps the two in
sync without making config validation import this package.
"""

from __future__ import annotations

from ..config import WORKLOAD_PATTERNS, WorkloadParams
from ..sim.random import RngStreams
from .trace import ArrivalTrace, WorkloadError

STREAM = "workload"

PATTERNS: dict = {}


def register_pattern(name: str):
    """Decorator registering an arrival-pattern generator under ``name``."""

    def deco(fn):
        if name in PATTERNS:
            raise ValueError(f"duplicate workload pattern {name!r}")
        PATTERNS[name] = fn
        return fn

    return deco


def generate_trace(params: WorkloadParams, nranks: int, iterations: int,
                   rng: RngStreams) -> ArrivalTrace:
    """Generate the arrival trace for ``params`` (all-zeros when disarmed).

    Deterministic: the same ``(params, nranks, iterations, seed)`` always
    yields the identical trace, independent of what other streams the
    simulation has consumed.
    """
    if nranks < 1:
        raise WorkloadError(f"nranks must be >= 1: {nranks}")
    if iterations < 1:
        raise WorkloadError(f"iterations must be >= 1: {iterations}")
    params.validate()
    if not params.armed:
        return ArrivalTrace(
            delays=tuple((0.0,) * nranks for _ in range(iterations)))
    return PATTERNS[params.pattern](params, nranks, iterations, rng)


def _rank_draws(rng: RngStreams, rank: int, iterations: int, lo: float,
                hi: float) -> list:
    if hi <= lo:
        return [lo] * iterations
    gen = rng.node_stream(STREAM, rank)
    return [float(x) for x in gen.uniform(lo, hi, size=iterations)]


@register_pattern("constant")
def _constant(params: WorkloadParams, nranks: int, iterations: int,
              rng: RngStreams) -> ArrivalTrace:
    """Every rank arrives ``scale_us`` late: maximal delay, zero spread."""
    return ArrivalTrace(
        delays=tuple((params.scale_us,) * nranks for _ in range(iterations)))


@register_pattern("uniform_random")
def _uniform_random(params: WorkloadParams, nranks: int, iterations: int,
                    rng: RngStreams) -> ArrivalTrace:
    """Independent per-rank delay drawn uniformly from [0, scale_us]."""
    cols = [_rank_draws(rng, r, iterations, 0.0, params.scale_us)
            for r in range(nranks)]
    return ArrivalTrace(
        delays=tuple(tuple(cols[r][it] for r in range(nranks))
                     for it in range(iterations)))


@register_pattern("bursty")
def _bursty(params: WorkloadParams, nranks: int, iterations: int,
            rng: RngStreams) -> ArrivalTrace:
    """Correlated straggler groups: most ranks jitter, a fixed set lags.

    A deterministic ``straggler_frac`` slice of the ranks is partitioned
    into ``straggler_groups`` groups; each group shares *one* extra delay
    draw ~ U[0.5, 1.5] * scale_us per iteration, so its members arrive
    late *together* — the correlated burst PAP-aware schedules exploit.
    """
    group_gen = rng.stream(f"{STREAM}/groups")
    nstrag = max(1, round(params.straggler_frac * nranks))
    members = [int(r) for r in
               group_gen.permutation(nranks)[:nstrag]]
    ngroups = min(params.straggler_groups, nstrag)
    group_of = {rank: i % ngroups for i, rank in enumerate(sorted(members))}
    # One correlated draw per (group, iteration).
    group_delays = [
        [0.5 * params.scale_us + float(x)
         for x in rng.stream(f"{STREAM}/group-{g}").uniform(
             0.0, params.scale_us, size=iterations)]
        for g in range(ngroups)]
    base = [_rank_draws(rng, r, iterations, 0.0, params.jitter_us)
            for r in range(nranks)]
    rows = []
    for it in range(iterations):
        row = []
        for r in range(nranks):
            d = base[r][it]
            g = group_of.get(r)
            if g is not None:
                d += group_delays[g][it]
            row.append(d)
        rows.append(tuple(row))
    return ArrivalTrace(delays=tuple(rows))


@register_pattern("compute_coupled")
def _compute_coupled(params: WorkloadParams, nranks: int, iterations: int,
                     rng: RngStreams) -> ArrivalTrace:
    """Arrival = length of a skewed per-rank compute phase.

    Each rank's phase is ``scale_us * lognormal(0, compute_sigma)`` —
    median ``scale_us`` with a heavy right tail, the classic shape of
    data-dependent compute imbalance.
    """
    cols = []
    for r in range(nranks):
        gen = rng.node_stream(STREAM, r)
        cols.append([params.scale_us * float(x)
                     for x in gen.lognormal(0.0, params.compute_sigma,
                                            size=iterations)])
    return ArrivalTrace(
        delays=tuple(tuple(cols[r][it] for r in range(nranks))
                     for it in range(iterations)))


@register_pattern("trace_replay")
def _trace_replay(params: WorkloadParams, nranks: int, iterations: int,
                  rng: RngStreams) -> ArrivalTrace:
    """Replay ``params.trace`` verbatim, cycling rows to ``iterations``."""
    src = ArrivalTrace(delays=params.trace)
    if src.nranks != nranks:
        raise WorkloadError(
            f"trace has {src.nranks} rank(s) but the cluster has {nranks}")
    return ArrivalTrace(
        delays=tuple(src.delays[it % src.iterations]
                     for it in range(iterations)))


# Registry and config enum must agree; fail loudly at import otherwise.
assert set(PATTERNS) == set(WORKLOAD_PATTERNS) - {"none"}, (
    sorted(PATTERNS), WORKLOAD_PATTERNS)
